#!/usr/bin/env python
"""Drifting sensors: tracking a changing environment epoch by epoch.

Extends the sensor-fusion scenario with the introduction's *dynamic*
twist ("various time-variable factors … may create diversity as a side
effect"): the environment drifts between epochs — a bounded number of
cells flip — and the sensor fleet re-runs the collaborative mapper each
epoch against the moved target.

Shows three library features together:

* :class:`repro.workloads.dynamic.DynamicInstance` — bounded drift that
  preserves the community's diameter (so every epoch keeps the paper's
  guarantee);
* per-epoch cost attribution via the oracle's phase ledger and
  :func:`repro.analysis.cost_profile.phase_breakdown`;
* a terminal sparkline of error-vs-epoch
  (:func:`repro.utils.ascii_plot.sparkline`).

Run:  python examples/drifting_sensors.py
"""

import repro
from repro.analysis.cost_profile import summarize
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import Table
from repro.workloads.dynamic import DynamicInstance, track_preferences


def main() -> None:
    n_sensors = 256
    drift = 12
    epochs = 6

    print(f"{n_sensors} sensors, environment drifts {drift} cells per epoch, {epochs} epochs")
    dyn = DynamicInstance.planted(n_sensors, n_sensors, alpha=1.0, D=0, drift=drift, rng=77)
    history = track_preferences(dyn, alpha=1.0, D=0, epochs=epochs, rng=78)

    table = Table(
        title="\nPer-epoch tracking (fresh run per epoch; stale grades discarded)",
        columns=["epoch", "worst_err", "rounds", "total_probes", "imbalance"],
    )
    errors = []
    for epoch, (inst, res) in enumerate(history):
        comm = inst.main_community()
        rep = repro.evaluate(res.outputs, inst.prefs, comm.members)
        cost = summarize(res.stats)
        errors.append(rep.discrepancy)
        table.add(
            epoch=epoch,
            worst_err=rep.discrepancy,
            rounds=cost.rounds,
            total_probes=cost.total,
            imbalance=round(cost.imbalance, 2),
        )
    print(table.render())

    print(f"\nerror per epoch: {sparkline([e + 1 for e in errors])}  (flat = perfect tracking)")
    total = sum(res.total_probes for _, res in history)
    solo = epochs * n_sensors * n_sensors
    print(
        f"total fleet work over {epochs} epochs: {total} probes "
        f"({100 * total / solo:.0f}% of re-probing everything every epoch)"
    )


if __name__ == "__main__":
    main()
