#!/usr/bin/env python
"""The α ↔ D trade-off profile: how much community does a budget buy?

Section 6 of the paper: "for any given α and a player p, there exists a
minimal D = D_p(α) such that at least an α fraction of the players are
within distance D from p" — and the probing budget determines which
(α, D) point a player can exploit ("the probing budget defines the size
of the community").

This example charts the ground-truth ``D_p(α)`` profile of three very
different preference matrices (a tight planted community, nested rings,
and a 16-type population), then shows the §6 budget inversion: which α
a given round budget affords, and the error the main algorithm actually
achieves there.

Run:  python examples/who_am_i_profile.py
"""

import numpy as np

import repro
from repro.core.estimators import alpha_for_budget, empirical_d_of_alpha
from repro.utils.ascii_plot import line_plot
from repro.utils.tables import Table


def main() -> None:
    n = 256
    alphas = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0]

    instances = {
        "planted(0.5, D=4)": repro.planted_instance(n, n, 0.5, 4, rng=5),
        "nested rings": repro.nested_instance(n, n, [2, 16], [0.3, 0.7], rng=6),
        "16 types": repro.mixture_instance(n, n, 16, noise=0.0, rng=7),
    }

    series = {}
    for label, inst in instances.items():
        member = int(inst.main_community().members[0])
        profile = empirical_d_of_alpha(inst.prefs, member, alphas)
        series[label] = (alphas, [profile[a] for a in alphas])

    print("Ground-truth D_p(alpha) of one community member, per matrix family:\n")
    print(line_plot(series, width=56, height=14, x_label="alpha", y_label="D_p(alpha)"))

    # The §6 budget inversion (on a D = 0 matrix: the inversion targets
    # the Zero Radius cost formula, which is also where it is sharp).
    inst = repro.planted_instance(n, n, 0.4, 0, rng=8)
    comm = inst.main_community()
    print("\nBudget -> affordable alpha -> achieved error (planted D=0, community at 40%):")
    table = Table(title="", columns=["budget (rounds)", "alpha affordable", "worst_err", "rounds_used"])
    for budget in (24, 48, 96):
        alpha = alpha_for_budget(budget, n)
        oracle = repro.ProbeOracle(inst, budget=budget + 8)  # hard cap, small slack
        res = repro.find_preferences(oracle, alpha, 0, rng=9)
        rep = repro.evaluate(res.outputs, inst.prefs, comm.members)
        table.add(**{"budget (rounds)": budget}, **{"alpha affordable": round(alpha, 3)},
                  worst_err=rep.discrepancy, rounds_used=res.rounds)
    print(table.render())
    print(
        "\nSteeper profiles (tight communities) keep D_p small until alpha passes the\n"
        "community size; diffuse populations pay distance for every extra member —\n"
        "the trade-off the anytime algorithm walks automatically."
    )


if __name__ == "__main__":
    main()
