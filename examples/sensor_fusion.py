#!/usr/bin/env python
"""Sensor fusion: unreliable sensors mapping a large environment.

The introduction's second scenario: "tracking dynamic environment by
unreliable sensors ... fall[s] under this interactive framework".
``n`` sensors must each map ``m`` binary environment cells (occupied /
free), with ``m > n`` — a large environment.  Sensors in the same region
see almost the same world (a low-diameter community: up to ``D`` cells
legitimately differ per sensor, e.g. local obstructions), but each
reading ("probe") costs energy.

Small Radius (Fig. 4) lets every sensor output a full map with error at
most ``5D`` while spending roughly *half* the energy of mapping alone —
and a hard per-sensor energy budget set below the solo cost never trips.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

import repro
from repro.core import small_radius


def main() -> None:
    n_sensors, n_cells = 256, 1024
    local_variation = 4  # cells that legitimately differ between sensors

    print(
        f"{n_sensors} sensors mapping {n_cells} cells; "
        f"local variation <= {local_variation} cells per sensor"
    )
    inst = repro.planted_instance(
        n_sensors,
        n_cells,
        alpha=1.0,  # every sensor is in the region
        D=local_variation,
        rng=99,
        name="sensor-region",
    )
    region = inst.main_community()
    print(f"  true map diameter across sensors: {region.diameter}")

    oracle = repro.ProbeOracle(inst)
    with oracle.phase("mapping"):
        out = small_radius(
            oracle,
            np.arange(n_sensors),
            np.arange(n_cells),
            alpha=1.0,
            D=local_variation,
            rng=5,
            K=2,
        )
    phase = oracle.ledger.get("mapping")

    report = repro.evaluate(out.astype(np.int8), inst.prefs, region.members, diam=region.diameter)
    print(f"\n  energy (probing rounds): {phase.rounds}  (solo mapping costs {n_cells})")
    print(f"  energy saved vs solo   : {100 * (1 - phase.rounds / n_cells):.0f}%")
    print(f"  mean probes per sensor : {phase.mean:.1f}")
    print(f"  worst sensor map error : {report.discrepancy} cells (5D bound = {5 * local_variation})")
    assert report.discrepancy <= 5 * local_variation

    # A hard energy budget below the solo cost: collaboration fits inside it.
    budget = int(n_cells * 0.75)
    oracle2 = repro.ProbeOracle(inst, budget=budget)
    out2 = small_radius(
        oracle2, np.arange(n_sensors), np.arange(n_cells), 1.0, local_variation, rng=6, K=2
    )
    rep2 = repro.evaluate(out2.astype(np.int8), inst.prefs, region.members, diam=region.diameter)
    print(
        f"\nWith a hard per-sensor budget of {budget} probes (75% of solo), the "
        f"collaborative map completes at {oracle2.stats().rounds} rounds with "
        f"worst error {rep2.discrepancy} — the budget never trips."
    )


if __name__ == "__main__":
    main()
