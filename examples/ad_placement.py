#!/usr/bin/env python
"""Ad placement: the anytime algorithm under a hard probing budget.

The paper's advertiser example: "Probing takes place each time the
advertiser provides a user with an ad ... if the user clicks, the entry
is set to 1".  Impressions cost money, so the advertiser caps the number
of ad impressions per user and wants the best achievable reconstruction
of every user's click-preference vector *for that spend* — exactly the
Section 6 anytime setting (``α`` and ``D`` both unknown).

We sweep the impression budget and plot (as a text series) how quality
improves with spend — the anytime property: stopping at any budget gives
close-to-the-best-possible output for that budget.

Run:  python examples/ad_placement.py
"""

import repro
from repro.utils.tables import Table


def main() -> None:
    n_users, n_products = 128, 128
    inst = repro.nested_instance(
        n_users,
        n_products,
        radii=[2, 10],
        fractions=[0.4, 0.8],
        rng=17,
        name="ad-audience",
    )
    print(f"{n_users} users, {n_products} products")
    for c in inst.communities:
        print(f"  segment {c.label}: {c.size} users within taste radius {c.diameter}")

    table = Table(
        title="\nQuality vs impression budget (anytime algorithm)",
        columns=["budget/user", "phases done", "segment", "worst_err", "stretch"],
    )
    for budget in (2000, 4000, 7000):
        oracle = repro.ProbeOracle(inst, budget=budget)
        result = repro.anytime_find_preferences(oracle, rng=23, d_max=8)
        for c in inst.communities:
            rep = repro.evaluate(result.outputs, inst.prefs, c.members, diam=c.diameter)
            table.add(
                **{"budget/user": budget},
                **{"phases done": len(result.meta["phases"])},
                segment=c.label,
                worst_err=rep.discrepancy,
                stretch=round(rep.stretch, 2),
            )
    print(table.render())
    print(
        "\nMore spend -> more completed phases -> smaller per-segment error;\n"
        "any interim budget still yields a usable reconstruction (the anytime property)."
    )


if __name__ == "__main__":
    main()
