#!/usr/bin/env python
"""Baseline showdown: why assumption-free collaboration matters.

Reproduces the paper's Section 2 argument as a runnable comparison.  On
two matrices — one satisfying the spectral methods' "few canonical
types" assumption and one with 16 well-separated communities — we give
every method the *same* per-user probe budget and compare reconstruction
errors:

* masked-SVD completion (the Drineas et al. family) is excellent in its
  comfort zone and collapses outside it;
* the naive global majority vote only ever serves the biggest crowd;
* kNN collaborative filtering sits in between, with no guarantee;
* Zero Radius handles both regimes with the same code and the same
  bound.

Run:  python examples/baseline_showdown.py
"""

import numpy as np

import repro
from repro.baselines import knn_baseline, majority_baseline, solo_baseline, svd_baseline
from repro.utils.tables import Table


def run_family(name: str, inst, alpha: float, table: Table) -> None:
    n, m = inst.shape

    oracle = repro.ProbeOracle(inst)
    ours = repro.find_preferences(oracle, alpha, 0, rng=5)
    budget = max(ours.rounds, 8)

    def score(label: str, outputs: np.ndarray, rounds: int) -> None:
        errs = (np.where(outputs == -1, 0, outputs) != inst.prefs).sum(axis=1)
        table.add(family=name, method=label, **{"probes/user": rounds},
                  mean_err=float(errs.mean()), worst_err=int(errs.max()))

    score("zero_radius (ours)", ours.outputs, ours.rounds)
    score("svd", svd_baseline(repro.ProbeOracle(inst), budget, rank=4, rng=1).outputs, budget)
    score("majority", majority_baseline(repro.ProbeOracle(inst), budget, rng=2).outputs, budget)
    score("knn", knn_baseline(repro.ProbeOracle(inst), budget // 2, budget - budget // 2, rng=3).outputs, budget)
    score("solo(full)", solo_baseline(repro.ProbeOracle(inst)).outputs, m)


def main() -> None:
    n = 256
    table = Table(
        title="Same probe budget, two regimes (errors over the whole population)",
        columns=["family", "method", "probes/user", "mean_err", "worst_err"],
    )

    friendly = repro.mixture_instance(n, n, 4, noise=0.0, rng=8, name="4-types")
    run_family("4-types (low-rank)", friendly, min(c.size for c in friendly.communities) / n, table)

    hostile = repro.mixture_instance(n, n, 16, noise=0.0, rng=9, name="16-types")
    run_family("16-types (full-rank)", hostile, min(c.size for c in hostile.communities) / n, table)

    print(table.render())
    print(
        "\nThe SVD baseline is strong exactly where its generative assumption holds\n"
        "and collapses on 16 types; Zero Radius reconstructs both regimes with the\n"
        "same assumption-free guarantee (Theorem 3.1)."
    )


if __name__ == "__main__":
    main()
