#!/usr/bin/env python
"""A marketplace with dishonest participants.

The introduction motivates the model with online marketplaces where
"some eBay users may be dishonest".  Probe results (what a buyer
actually experienced) are ground truth, but the intermediate vectors
players post for others to vote over are self-reported — a shill can
post anything.

This example runs the *distributed* Zero Radius protocol with a growing
fraction of liars (who follow the public coins, so their posts land in
exactly the channels honest voters read, and post maximally-misleading
vectors) and charts honest buyers' reconstruction quality:

* below the vote threshold's tolerance (``f* = 1 − vote_frac = 1/2``,
  independent of the community size!) the liars only add garbage
  candidates, which honest Selects discard after a probe or two;
* past ``f*`` the truthful candidate can no longer reach the vote
  threshold and recovery collapses.

Run:  python examples/dishonest_marketplace.py
"""

import numpy as np

import repro
from repro.billboard.oracle import ProbeOracle
from repro.extensions.byzantine import run_zero_radius_with_byzantine
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import Table


def main() -> None:
    n = 128
    alpha = 0.5
    inst = repro.planted_instance(n, n, alpha, 0, rng=13)
    comm = inst.main_community()
    print(f"{n} buyers, {n} products; {comm.size} honest-taste community; vote rule: alpha/2")
    print("Sweeping the fraction of dishonest posters...\n")

    table = Table(
        title="Honest community members' reconstruction vs dishonest fraction",
        columns=["dishonest", "worst_err", "mean_err", "rounds"],
    )
    means = []
    for f in (0.0, 0.1, 0.2, 0.3, 0.5, 0.6, 0.7):
        oracle = ProbeOracle(inst)
        out, bad, result = run_zero_radius_with_byzantine(
            oracle, alpha, f, params=repro.Params.robust(), rng=29
        )
        honest = np.asarray([p for p in comm.members if not bad[p]])
        errs = (out[honest] != inst.prefs[honest]).sum(axis=1)
        means.append(float(errs.mean()))
        table.add(dishonest=f, worst_err=int(errs.max()), mean_err=float(errs.mean()),
                  rounds=result.probe_rounds)
    print(table.render())
    print(f"\nmean error vs dishonest fraction: {sparkline([m + 1 for m in means])}")
    print(
        "\nThe protocol shrugs off liars below f* = 1/2 — they can add garbage\n"
        "candidates but cannot suppress the truthful one — and collapses once\n"
        "liars can outvote honest players inside the recursion's halves."
    )


if __name__ == "__main__":
    main()
