#!/usr/bin/env python
"""Quickstart: recover every player's preferences from O(log n) probes.

The paper's headline scenario, end to end:

1. build a hidden preference matrix with a planted community — half the
   players share identical taste, the rest are arbitrary;
2. wrap it in a :class:`~repro.ProbeOracle` (the only gate to the hidden
   grades: one probe, one unit of cost, result posted on the billboard);
3. run the main algorithm (Fig. 1 — here the ``D = 0`` Zero Radius
   branch);
4. score the output: community members recover their *entire* preference
   vector from a few dozen probes instead of the ``m`` probes of
   go-it-alone.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    n = m = 512
    alpha, D = 0.5, 0

    print(f"Building a {n}x{m} instance with a planted ({alpha}, {D}) community...")
    inst = repro.planted_instance(n=n, m=m, alpha=alpha, D=D, rng=7)
    community = inst.main_community()
    print(f"  community: {community.size} players, diameter {community.diameter}")

    oracle = repro.ProbeOracle(inst)
    print("Running the main algorithm (known alpha, D)...")
    result = repro.find_preferences(oracle, alpha=alpha, D=D, rng=11)

    report = repro.evaluate(result.outputs, inst.prefs, community.members)
    print(f"  branch taken     : {result.algorithm}")
    print(f"  probing rounds   : {result.rounds}  (go-it-alone needs {m})")
    print(f"  speedup vs solo  : {m / result.rounds:.1f}x")
    print(f"  member discrepancy Δ(P*): {report.discrepancy}")
    print(f"  member stretch  ρ(P*)  : {report.stretch:.2f}")

    assert report.discrepancy == 0, "community members should recover exactly"
    print("\nEvery community member recovered its full preference vector exactly.")


if __name__ == "__main__":
    main()
