#!/usr/bin/env python
"""The distributed model, executed literally.

Everything else in this library simulates the player population with
fast vectorized code.  This example runs the paper's model *as written*:
every player is an independent program, the scheduler advances them in
lockstep rounds ("each player reads the shared billboard, probes one
object, and writes the result"), and players wait for each other's
billboard posts at the recursion's synchronization points.

It then shows the library's strongest internal validation: with the same
public-coin seed, the literal distributed execution and the fast global
simulation produce **bitwise identical outputs and probe counts** — for
Zero, Small, *and* Large Radius.

Run:  python examples/distributed_engine.py
"""

import numpy as np

import repro
from repro.billboard.oracle import ProbeOracle
from repro.core.large_radius import large_radius
from repro.core.small_radius import small_radius
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.engine import (
    run_large_radius_engine,
    run_small_radius_engine,
    run_zero_radius_engine,
)
from repro.utils.tables import Table


def main() -> None:
    n = 96
    seed = 2026
    table = Table(
        title=f"Literal lockstep execution vs fast simulation (n = m = {n}, same coins)",
        columns=["algorithm", "bitwise_equal", "probe_rounds", "lockstep_rounds", "waits"],
    )

    inst0 = repro.planted_instance(n, n, 0.5, 0, rng=seed)
    o1 = ProbeOracle(inst0)
    g = zero_radius(PrimitiveSpace(o1, np.arange(n)), np.arange(n), 0.5, n_global=n, rng=seed + 1)
    o2 = ProbeOracle(inst0)
    e, res = run_zero_radius_engine(o2, np.arange(n), 0.5, rng=seed + 1)
    table.add(algorithm="zero_radius", bitwise_equal=bool(np.array_equal(g, e)),
              probe_rounds=res.probe_rounds, lockstep_rounds=res.rounds,
              waits=res.rounds - res.probe_rounds)

    inst1 = repro.planted_instance(n, n, 0.5, 2, rng=seed + 2)
    o3 = ProbeOracle(inst1)
    g2 = small_radius(o3, np.arange(n), np.arange(n), 0.5, 2, rng=seed + 3, K=2)
    o4 = ProbeOracle(inst1)
    e2, res2 = run_small_radius_engine(o4, np.arange(n), np.arange(n), 0.5, 2, rng=seed + 3, K=2)
    table.add(algorithm="small_radius", bitwise_equal=bool(np.array_equal(g2, e2)),
              probe_rounds=res2.probe_rounds, lockstep_rounds=res2.rounds,
              waits=res2.rounds - res2.probe_rounds)

    inst2 = repro.planted_instance(n, n, 0.5, 24, rng=seed + 4)
    o5 = ProbeOracle(inst2)
    g3 = large_radius(o5, 0.5, 24, rng=seed + 5)
    o6 = ProbeOracle(inst2)
    e3, res3 = run_large_radius_engine(o6, 0.5, 24, rng=seed + 5)
    table.add(algorithm="large_radius", bitwise_equal=bool(np.array_equal(g3, e3)),
              probe_rounds=res3.probe_rounds, lockstep_rounds=res3.rounds,
              waits=res3.rounds - res3.probe_rounds)

    print(table.render())
    print(
        "\nEvery algorithm's distributed execution (coroutine players, one probe\n"
        "per round, billboard-post synchronization) reproduces the fast global\n"
        "simulation bit for bit; lockstep rounds exceed probe rounds only by the\n"
        "waits at the recursion's barriers."
    )


if __name__ == "__main__":
    main()
