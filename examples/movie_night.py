#!/usr/bin/env python
"""Movie night: "tell me who I am" across several taste communities.

The introduction's motivating scenario — "people may have different
taste (for books, movies, food)" — with three taste communities of
different sizes sharing one billboard.  Nobody knows which community
they belong to; each viewer only knows that *some* fifth of the
population shares their taste (the frequency ``α``).

Everyone runs the same Zero Radius algorithm.  Two payoffs:

1. every viewer reconstructs its **full** preference vector from a few
   dozen probes (instead of rating all ``m`` movies), and
2. the outputs *identify the communities*: clustering the (now public)
   output vectors recovers exactly who shares taste with whom — the
   "tell me who I am" answer.

Run:  python examples/movie_night.py
"""

import numpy as np

import repro


def main() -> None:
    n_viewers, n_movies = 512, 512
    print(f"{n_viewers} viewers, {n_movies} movies, 3 taste communities (50%/30%/20%)...")
    inst = repro.mixture_instance(
        n_viewers,
        n_movies,
        k=3,
        noise=0.0,
        weights=[0.5, 0.3, 0.2],
        rng=42,
        name="movie-night",
    )
    for c in inst.communities:
        print(f"  {c.label}: {c.size} viewers")

    # Every viewer can rely on the smallest community's frequency.  With
    # alpha this tight and *structured* competing communities, use the
    # robust constants (bigger Zero Radius leaves — see Params.robust).
    alpha = min(c.size for c in inst.communities) / n_viewers
    oracle = repro.ProbeOracle(inst)
    print(f"\nRunning Zero Radius with alpha={alpha:.2f} (membership unknown to everyone)...")
    result = repro.find_preferences(oracle, alpha=alpha, D=0, params=repro.Params.robust(), rng=3)

    print(f"  probing rounds per viewer: {result.rounds} (rating everything costs {n_movies})")
    print(f"  speedup vs solo          : {n_movies / result.rounds:.1f}x")

    print("\nPer-community reconstruction quality:")
    for c in inst.communities:
        rep = repro.evaluate(result.outputs, inst.prefs, c.members)
        print(f"  {c.label}: worst member error {rep.discrepancy}, mean {rep.mean_error:.2f}")

    # "Tell me who I am": identical output vectors identify communities.
    _, inverse = np.unique(result.outputs, axis=0, return_inverse=True)
    correct = 0
    for c in inst.communities:
        labels, counts = np.unique(inverse[c.members], return_counts=True)
        correct += counts.max()
    accuracy = correct / n_viewers
    print(f"\nClustering the output vectors identifies {accuracy:.1%} of viewers'"
          " community membership.")

    # What a viewer actually gains: predictions for movies never probed.
    viewer = int(inst.communities[2].members[0])
    probed = oracle.billboard.revealed_mask()[viewer]
    unprobed_likes = np.flatnonzero((result.outputs[viewer] == 1) & ~probed)
    true_likes = np.flatnonzero(inst.prefs[viewer] == 1)
    precision = np.isin(unprobed_likes, true_likes).mean() if unprobed_likes.size else 1.0
    print(
        f"Viewer {viewer} probed only {int(probed.sum())} movies; of "
        f"{unprobed_likes.size} never-probed movies predicted as likes, "
        f"{precision:.0%} are true likes."
    )


if __name__ == "__main__":
    main()
