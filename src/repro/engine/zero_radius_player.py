"""Algorithm Zero Radius as a *player-local* program (Fig. 2, literally).

Each player independently executes:

1. descend its halving-tree path (public coins) to its leaf and probe
   every leaf object — one per round;
2. post its leaf vector on the billboard;
3. ascend: at each level, wait until every player of the *sibling* half
   has posted its vector for the sibling subtree, compute the vote
   candidates (≥ α/2 support, same rule as the global implementation),
   adopt the closest via the Select coroutine (bound 0), post the merged
   vector for the current node, and continue to the root.

Given the same seed, the candidates, Select decisions, and outputs are
**bitwise identical** to :func:`repro.core.zero_radius.zero_radius` —
the engine tests assert exactly that.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.select import select_coroutine
from repro.core.zero_radius import NO_OUTPUT, _vote_candidates
from repro.engine.actions import Post, Probe, Wait
from repro.engine.coins import PublicCoins
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.utils.rng import as_generator
from repro.utils.rowset import popular_rows_packed

__all__ = ["zero_radius_player", "run_zero_radius_engine"]


def _channel(prefix: str, node_id: str, player: int) -> str:
    return f"{prefix}zr/{node_id or 'root'}/{player}"


def zero_radius_player(
    player: int,
    coins: PublicCoins,
    billboard: Billboard,
    alpha: float,
    n_objects: int,
    *,
    params: Params | None = None,
    channel_prefix: str = "",
    object_map: np.ndarray | None = None,
    probe_subprogram: Any = None,
) -> Generator[Any, Any, np.ndarray]:
    """Build the Fig. 2 program for one player (read access to *billboard*).

    Parameters
    ----------
    channel_prefix:
        Namespace for billboard channels (Small Radius runs many Zero
        Radius instances; each gets its own prefix).
    object_map:
        Optional local→global object index map: ``Probe`` actions carry
        ``object_map[local]`` (Small Radius runs over object parts).
    probe_subprogram:
        Optional abstract-Probe factory ``(local_obj) -> generator``:
        probing local object *j* delegates (``yield from``) to the
        sub-generator, whose return value is the object's value — the
        engine form of §3.1's abstract ``Probe`` (Large Radius probes a
        super-object by running Select over its group's candidates).
        Mutually exclusive with *object_map*.
    """
    p = params or Params.practical()
    if probe_subprogram is not None and object_map is not None:
        raise ValueError("object_map and probe_subprogram are mutually exclusive")
    omap = np.arange(n_objects, dtype=np.intp) if object_map is None else np.asarray(object_map)
    if omap.shape != (n_objects,):
        raise ValueError(f"object_map must have shape ({n_objects},), got {omap.shape}")

    def probe_object(obj: int) -> Generator[Any, Any, int]:
        if probe_subprogram is not None:
            value = yield from probe_subprogram(obj)
            return value
        value = yield Probe(int(omap[obj]))
        return value

    values = np.full(n_objects, NO_OUTPUT, dtype=np.int16)
    path = coins.path_of(player)
    leaf = path[-1]

    # Step 1 (base case): probe every leaf object.
    for obj in leaf.objects:
        values[obj] = yield from probe_object(int(obj))
    yield Post(_channel(channel_prefix, leaf.node_id, player), values[leaf.objects])

    # Steps 2-4, ascending: adopt the sibling subtree's objects by voting.
    for depth in range(len(path) - 2, -1, -1):
        node = path[depth]
        my_child = path[depth + 1]
        sibling = coins.sibling(my_child.node_id)

        needed = [_channel(channel_prefix, sibling.node_id, int(q)) for q in sibling.players]
        while not billboard.has_channels(needed):
            yield Wait()

        min_votes = p.zr_vote_threshold(alpha, sibling.players.size)
        gathered = billboard.read_first_rows_packed(needed)
        if gathered is not None:
            candidates = popular_rows_packed(gathered[0], gathered[1], min_votes)
        else:
            candidates = _vote_candidates(billboard.read_first_rows(needed), min_votes)
        if candidates.shape[0] == 1:
            chosen = candidates[0]
        else:
            sel = select_coroutine(candidates, 0)
            try:
                coord = next(sel)
                while True:
                    value = yield from probe_object(int(sibling.objects[coord]))
                    coord = sel.send(value)
            except StopIteration as stop:
                chosen = stop.value.vector
        values[sibling.objects] = chosen
        yield Post(_channel(channel_prefix, node.node_id, player), values[node.objects])

    return values


def run_zero_radius_engine(
    oracle: ProbeOracle,
    players: np.ndarray,
    alpha: float,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
) -> tuple[np.ndarray, EngineResult]:
    """Run the distributed Zero Radius end to end.

    Returns the ``(n_global, m)`` output matrix (NO_OUTPUT for
    non-participants) plus the :class:`EngineResult` with the true
    lockstep round count.
    """
    players = np.asarray(players, dtype=np.intp)
    p = params or Params.practical()
    coins = PublicCoins.draw(
        players,
        oracle.n_objects,
        alpha,
        n_global=oracle.n_players,
        params=p,
        rng=as_generator(rng),
    )
    programs = {
        int(pl): zero_radius_player(
            int(pl), coins, oracle.billboard, alpha, oracle.n_objects, params=p
        )
        for pl in players
    }
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
    out = np.full((oracle.n_players, oracle.n_objects), NO_OUTPUT, dtype=np.int16)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, result
