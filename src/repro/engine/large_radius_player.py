"""Algorithm Large Radius as a *player-local* program (Fig. 5, literally).

Completes the distributed-engine validation of the whole tower:

1. the player runs the Small Radius sub-program (``yield from``) for
   every object group it was assigned to and posts the group output;
2. for *every* group it waits until all that group's members posted,
   then computes Coalesce locally — deterministic on identical billboard
   state, so every player derives the same candidate sets ``B_ℓ``
   (exactly the paper's "all players apply procedure Coalesce");
3. it runs the Zero Radius program over super-objects, where probing
   super-object ``ℓ`` delegates to a Select coroutine over ``B_ℓ``
   (the §3.1 abstract Probe, engine form);
4. it stitches the chosen candidates into its final output vector.

:class:`LargeRadiusCoins` replicates the global implementation's random
draws call for call, so outputs and per-player probe counts are
**bitwise identical** to :func:`repro.core.large_radius.large_radius`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.coalesce import coalesce
from repro.core.large_radius import _fallback_candidates
from repro.core.params import Params
from repro.core.partition import partition_parts, partition_players, random_partition
from repro.core.select import select_coroutine
from repro.engine.actions import Post, Probe, Wait
from repro.engine.coins import PublicCoins
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.engine.small_radius_player import SmallRadiusCoins, small_radius_player
from repro.engine.zero_radius_player import zero_radius_player
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import WILDCARD

__all__ = ["LargeRadiusCoins", "large_radius_player", "run_large_radius_engine"]


@dataclass
class LargeRadiusCoins:
    """Shared randomness of one Large Radius execution."""

    groups: list[np.ndarray]
    player_groups: list[np.ndarray]
    sr_coins: list[SmallRadiusCoins]
    super_tree: PublicCoins
    lam: int
    K: int
    sr_alpha: float
    coalesce_D: int
    select_bound: int

    @classmethod
    def draw(
        cls,
        n: int,
        m: int,
        alpha: float,
        D: int,
        *,
        params: Params | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> "LargeRadiusCoins":
        """Replicate :func:`repro.core.large_radius.large_radius`'s draws."""
        p = params or Params.practical()
        gen = as_generator(rng)
        n_groups = min(p.lr_num_groups(D, n), m)
        labels = random_partition(m, n_groups, gen)
        groups = [g for g in partition_parts(labels, n_groups) if g.size > 0]
        n_groups = len(groups)
        copies = p.lr_player_copies(D, alpha, n)
        player_groups = partition_players(n, n_groups, copies, spawn(gen))

        lam = p.lr_lambda(D, n)
        sr_alpha = min(1.0, alpha / p.lr_alpha_div)
        K = p.sr_confidence(n)
        sr_coins = [
            SmallRadiusCoins.draw(
                members, group.size, sr_alpha, lam, n_global=n, params=p, rng=spawn(gen), K=K
            )
            for group, members in zip(groups, player_groups)
        ]
        super_tree = PublicCoins.draw(
            np.arange(n, dtype=np.intp), n_groups, alpha, n_global=n, params=p, rng=spawn(gen)
        )
        return cls(
            groups=groups,
            player_groups=player_groups,
            sr_coins=sr_coins,
            super_tree=super_tree,
            lam=lam,
            K=K,
            sr_alpha=sr_alpha,
            coalesce_D=math.ceil(p.lr_coalesce_mult * lam),
            select_bound=math.ceil(p.lr_select_bound_mult * lam),
        )


def large_radius_player(
    player: int,
    coins: LargeRadiusCoins,
    billboard: Billboard,
    n_objects: int,
    alpha: float,
    *,
    params: Params | None = None,
    channel_prefix: str = "",
) -> Generator[Any, Any, np.ndarray]:
    """Build the Fig. 5 program for one player (*channel_prefix*
    namespaces billboard channels so multiple instances can coexist)."""
    p = params or Params.practical()

    # Steps 1-2: run Small Radius for every group this player belongs to.
    for l, (group, members) in enumerate(zip(coins.groups, coins.player_groups)):
        idx = np.searchsorted(members, player)
        if idx >= members.size or members[idx] != player:
            continue
        sr_out = yield from small_radius_player(
            player,
            coins.sr_coins[l],
            billboard,
            members,
            group,
            coins.sr_alpha,
            coins.lam,
            params=p,
            channel_prefix=f"{channel_prefix}lr/{l}/",
        )
        yield Post(f"{channel_prefix}lr/{l}/out/{player}", sr_out)

    # Step 3: Coalesce every group's posted outputs (locally; deterministic).
    candidate_sets: list[np.ndarray] = []
    for l, members in enumerate(coins.player_groups):
        needed = [f"{channel_prefix}lr/{l}/out/{int(q)}" for q in members]
        while not billboard.has_channels(needed):
            yield Wait()
        posted = billboard.read_first_rows(needed).astype(np.int8)
        result = coalesce(posted, coins.coalesce_D, coins.sr_alpha)
        cands = result.vectors
        if cands.shape[0] == 0:
            cands = _fallback_candidates(posted)
        candidate_sets.append(cands)

    # Step 4: Zero Radius over super-objects; probing super-object l is a
    # Select coroutine over B_l (the abstract Probe of §3.1).
    def probe_super(l: int) -> Generator[Any, Any, int]:
        group = coins.groups[l]
        cands = candidate_sets[l]
        sel = select_coroutine(cands, coins.select_bound)
        try:
            coord = next(sel)
            while True:
                value = yield Probe(int(group[coord]))
                coord = sel.send(value)
        except StopIteration as stop:
            return stop.value.index

    chosen = yield from zero_radius_player(
        player,
        coins.super_tree,
        billboard,
        alpha,
        len(coins.groups),
        params=p,
        channel_prefix=f"{channel_prefix}lr/super/",
        probe_subprogram=probe_super,
    )

    out = np.full(n_objects, WILDCARD, dtype=np.int8)
    for l, group in enumerate(coins.groups):
        out[group] = candidate_sets[l][int(chosen[l])]
    return out


def run_large_radius_engine(
    oracle: ProbeOracle,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, EngineResult]:
    """Run the distributed Large Radius end to end (cf. the global twin)."""
    p = params or Params.practical()
    n, m = oracle.n_players, oracle.n_objects
    coins = LargeRadiusCoins.draw(n, m, alpha, D, params=p, rng=rng)
    programs = {
        pl: large_radius_player(pl, coins, oracle.billboard, m, alpha, params=p)
        for pl in range(n)
    }
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
    out = np.full((n, m), WILDCARD, dtype=np.int8)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, result
