"""Public coins: the pre-drawn Zero Radius halving tree.

The paper's random partitions are common knowledge — every player
observes the same coin flips.  For the round engine we realise this as
a :class:`PublicCoins` object each player derives *identically* from the
shared seed: the full recursion tree of Fig. 2's step 2, with each
node's player half / object half.

Crucially, the tree is drawn with **exactly the same generator calls as
the global implementation** (`random_halves` on a child stream spawned
the same way), so an engine run and a global run given the same seed use
identical partitions — the precondition for the bitwise cross-validation
test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import Params
from repro.core.partition import random_halves
from repro.utils.rng import as_generator, spawn

__all__ = ["HalvingNode", "PublicCoins"]


@dataclass
class HalvingNode:
    """One node of the halving tree.

    Attributes
    ----------
    node_id:
        Path label: ``""`` for the root, then ``"0"``/``"1"`` appended
        per level (half 0 / half 1).
    players, objects:
        The node's player and (local) object index sets, sorted.
    children:
        ``(half0, half1)`` or ``None`` at leaves.
    """

    node_id: str
    players: np.ndarray
    objects: np.ndarray
    children: tuple["HalvingNode", "HalvingNode"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


@dataclass
class PublicCoins:
    """The shared halving tree for one Zero Radius execution."""

    root: HalvingNode
    threshold: int
    _by_player: dict[int, list[HalvingNode]] = field(default_factory=dict, repr=False)

    @classmethod
    def draw(
        cls,
        players: np.ndarray,
        n_objects: int,
        alpha: float,
        *,
        n_global: int,
        params: Params | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> "PublicCoins":
        """Draw the halving tree exactly as the global implementation does.

        Mirrors :func:`repro.core.zero_radius.zero_radius`: spawn a child
        stream from the caller's generator, then recursively call
        ``random_halves`` on players and objects (same order of calls →
        identical partitions for identical seeds).
        """
        p = params or Params.practical()
        gen = spawn(as_generator(rng))
        threshold = p.zr_leaf_threshold(n_global, alpha)
        players = np.sort(np.asarray(players, dtype=np.intp))
        objects = np.arange(n_objects, dtype=np.intp)

        def build(node_id: str, P: np.ndarray, O: np.ndarray) -> HalvingNode:
            if min(P.size, O.size) < threshold:
                return HalvingNode(node_id=node_id, players=P, objects=O)
            P1, P2 = random_halves(P, gen)
            O1, O2 = random_halves(O, gen)
            left = build(node_id + "0", P1, O1)
            right = build(node_id + "1", P2, O2)
            return HalvingNode(node_id=node_id, players=P, objects=O, children=(left, right))

        coins = cls(root=build("", players, objects), threshold=threshold)
        coins._index(coins.root)
        return coins

    # ------------------------------------------------------------------
    # player-side queries
    # ------------------------------------------------------------------
    def _index(self, node: HalvingNode) -> None:
        for pl in node.players:
            self._by_player.setdefault(int(pl), []).append(node)
        if node.children:
            self._index(node.children[0])
            self._index(node.children[1])

    def path_of(self, player: int) -> list[HalvingNode]:
        """The root→leaf chain of nodes containing *player*."""
        if player not in self._by_player:
            raise KeyError(f"player {player} is not in the tree")
        return self._by_player[player]

    def leaf_of(self, player: int) -> HalvingNode:
        """The leaf node containing *player*."""
        return self.path_of(player)[-1]

    def sibling(self, node_id: str) -> HalvingNode:
        """The sibling of the node with *node_id* (its vote counterpart)."""
        if not node_id:
            raise ValueError("the root has no sibling")
        sibling_id = node_id[:-1] + ("1" if node_id[-1] == "0" else "0")
        return self.node(sibling_id)

    def node(self, node_id: str) -> HalvingNode:
        """Fetch a node by path id."""
        cur = self.root
        for bit in node_id:
            if cur.children is None:
                raise KeyError(f"no node {node_id!r}")
            cur = cur.children[int(bit)]
        return cur
