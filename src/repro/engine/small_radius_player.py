"""Algorithm Small Radius as a *player-local* program (Fig. 4, literally).

Composes the Zero Radius player program via ``yield from``: per
iteration ``t ≤ K`` the player runs Fig. 2 on each object part (public
partition), posts its per-part outputs, waits for everyone else's,
computes the popular vectors (same ``αn/5`` rule as the global
implementation), adopts the closest with the Select coroutine at bound
``D``, stitches, and finally selects among its ``K`` stitched candidates
at bound ``5D``.

The public coins (:class:`SmallRadiusCoins`) replicate the global
implementation's random draws *call for call*, so a run with the same
seed is **bitwise identical** to
:func:`repro.core.small_radius.small_radius` — asserted by the engine
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.partition import partition_parts, random_partition
from repro.core.select import select_coroutine
from repro.core.small_radius import _popular_rows
from repro.core.zero_radius import NO_OUTPUT
from repro.engine.actions import Post, Probe, Wait
from repro.engine.coins import PublicCoins
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.engine.zero_radius_player import zero_radius_player
from repro.utils.rng import as_generator, spawn
from repro.utils.rowset import popular_rows_packed

__all__ = ["SmallRadiusCoins", "small_radius_player", "run_small_radius_engine"]


@dataclass
class SmallRadiusCoins:
    """Shared randomness of one Small Radius execution.

    ``parts[t]`` is iteration *t*'s list of non-empty object parts
    (LOCAL indices into the invocation's object array) and
    ``trees[t][i]`` the Zero Radius halving tree of part *i*.
    """

    parts: list[list[np.ndarray]]
    trees: list[list[PublicCoins]]
    K: int
    s: int

    @classmethod
    def draw(
        cls,
        players: np.ndarray,
        n_objects: int,
        alpha: float,
        D: int,
        *,
        n_global: int,
        params: Params | None = None,
        rng: int | np.random.Generator | None = None,
        K: int | None = None,
    ) -> "SmallRadiusCoins":
        """Replicate the global implementation's draw sequence exactly."""
        p = params or Params.practical()
        gen = as_generator(rng)
        K = p.sr_confidence(n_global) if K is None else int(K)
        s = min(p.sr_num_parts(D), n_objects)
        zr_alpha = min(1.0, alpha / p.sr_alpha_div)
        all_parts: list[list[np.ndarray]] = []
        all_trees: list[list[PublicCoins]] = []
        for _t in range(K):
            iter_rng = spawn(gen)
            labels = random_partition(n_objects, s, iter_rng)
            parts = [part for part in partition_parts(labels, s) if part.size > 0]
            trees = [
                PublicCoins.draw(
                    players, part.size, zr_alpha, n_global=n_global, params=p, rng=spawn(iter_rng)
                )
                for part in parts
            ]
            all_parts.append(parts)
            all_trees.append(trees)
        return cls(parts=all_parts, trees=all_trees, K=K, s=s)


def small_radius_player(
    player: int,
    coins: SmallRadiusCoins,
    billboard: Billboard,
    players: np.ndarray,
    objects: np.ndarray,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    channel_prefix: str = "",
) -> Generator[Any, Any, np.ndarray]:
    """Build the Fig. 4 program for one player.

    *objects* are global indices; the returned vector is in local object
    order (column ``j`` ↔ ``objects[j]``), matching the global function.
    *channel_prefix* namespaces the billboard channels (Large Radius runs
    one Small Radius instance per object group).
    """
    p = params or Params.practical()
    L = objects.size
    pop_threshold = p.sr_popularity_threshold(alpha, players.size)
    stitched = np.full((coins.K, L), NO_OUTPUT, dtype=np.int16)

    for t in range(coins.K):
        for i, part in enumerate(coins.parts[t]):
            part_objects = objects[part]
            tree = coins.trees[t][i]

            # Step 1b: Zero Radius on this part (delegated sub-program;
            # its Probe actions carry part-local coordinates, remapped to
            # global objects here).
            sub = zero_radius_player(
                player,
                tree,
                billboard,
                min(1.0, alpha / p.sr_alpha_div),
                part.size,
                params=p,
                channel_prefix=f"{channel_prefix}sr/{t}/{i}/",
                object_map=part_objects,
            )
            my_zr = yield from sub
            yield Post(f"{channel_prefix}sr/{t}/{i}/out/{player}", my_zr)

            # Step 1b (votes): wait for every participant's part output.
            needed = [f"{channel_prefix}sr/{t}/{i}/out/{int(q)}" for q in players]
            while not billboard.has_channels(needed):
                yield Wait()
            gathered = billboard.read_first_rows_packed(needed)
            if gathered is not None:
                candidates = popular_rows_packed(gathered[0], gathered[1], pop_threshold)
            else:
                candidates = _popular_rows(billboard.read_first_rows(needed), pop_threshold)

            # Step 1c: adopt the closest popular vector at bound D.
            if candidates.shape[0] == 1:
                stitched[t, part] = candidates[0]
            else:
                sel = select_coroutine(candidates, D)
                try:
                    coord = next(sel)
                    while True:
                        value = yield Probe(int(part_objects[coord]))
                        coord = sel.send(value)
                except StopIteration as stop:
                    stitched[t, part] = stop.value.vector

    # Step 2: select among the K stitched candidates at bound 5D.
    final_bound = int(np.ceil(p.sr_final_bound_mult * max(D, 1)))
    if coins.K == 1:
        return stitched[0]
    sel = select_coroutine(np.ascontiguousarray(stitched), final_bound)
    try:
        coord = next(sel)
        while True:
            value = yield Probe(int(objects[coord]))
            coord = sel.send(value)
    except StopIteration as stop:
        return stop.value.vector


def run_small_radius_engine(
    oracle: ProbeOracle,
    players: np.ndarray,
    objects: np.ndarray,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    K: int | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, EngineResult]:
    """Run the distributed Small Radius end to end (cf. the global twin)."""
    players = np.sort(np.asarray(players, dtype=np.intp))
    objects = np.asarray(objects, dtype=np.intp)
    p = params or Params.practical()
    coins = SmallRadiusCoins.draw(
        players, objects.size, alpha, D, n_global=oracle.n_players, params=p, rng=rng, K=K
    )
    programs = {
        int(pl): small_radius_player(
            int(pl), coins, oracle.billboard, players, objects, alpha, D, params=p
        )
        for pl in players
    }
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
    out = np.full((oracle.n_players, objects.size), NO_OUTPUT, dtype=np.int16)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, result
