"""The lockstep round scheduler.

Runs a set of player programs (generators yielding
:class:`~repro.engine.actions.Probe` / ``Post`` / ``Wait``) in
synchronous rounds against a shared
:class:`~repro.billboard.oracle.ProbeOracle`:

* per round, every live player is advanced until it performs one
  round-consuming action (a probe or a wait) — posts are free and
  processed inline, matching "reads the billboard, probes one object,
  and writes the result";
* the iteration order within a round is by player id, but within one
  round every player sees the billboard as of the *start* of its own
  step — the model's players act concurrently, and the algorithms are
  insensitive to intra-round interleaving (the test suite checks this by
  cross-validating against the global implementation);
* a player's ``return`` value is its output vector.

The engine measures *true* lockstep rounds (including waits), which
upper-bounds the probe-count-based round metric of the fast simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping

import numpy as np

from repro import obs
from repro.billboard.oracle import ProbeOracle
from repro.engine.actions import Post, Probe, Wait

__all__ = ["EngineResult", "RoundScheduler"]

PlayerProgram = Generator[Any, Any, np.ndarray]


@dataclass
class EngineResult:
    """Outcome of one scheduled execution.

    Attributes
    ----------
    outputs:
        Player → returned output vector.
    rounds:
        Lockstep rounds executed (probes *and* waits count).
    probe_rounds:
        Max charged probes over players (the fast simulation's metric).
    """

    outputs: dict[int, np.ndarray]
    rounds: int
    probe_rounds: int


class RoundScheduler:
    """Advance player programs in lockstep rounds."""

    def __init__(self, oracle: ProbeOracle, programs: Mapping[int, PlayerProgram]) -> None:
        if not programs:
            raise ValueError("need at least one player program")
        for player in programs:
            if not (0 <= player < oracle.n_players):
                raise ValueError(f"player {player} out of range [0, {oracle.n_players})")
        self.oracle = oracle
        self._programs = dict(programs)

    def run(self, max_rounds: int = 1_000_000) -> EngineResult:
        """Run all programs to completion (or *max_rounds*)."""
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        with obs.span("engine/run", oracle=self.oracle, players=len(self._programs)) as sp:
            result = self._run(max_rounds)
            sp.set(rounds=result.rounds)
        return result

    def _run(self, max_rounds: int) -> EngineResult:
        live: dict[int, PlayerProgram] = dict(self._programs)
        pending: dict[int, Any] = {p: None for p in live}  # value to send next
        outputs: dict[int, np.ndarray] = {}
        before = self.oracle.stats()

        rounds = 0
        while live and rounds < max_rounds:
            consumed = False
            for player in sorted(live):
                program = live[player]
                send_value = pending[player]
                # Advance until a round-consuming action (or completion).
                while True:
                    try:
                        action = program.send(send_value)
                    except StopIteration as stop:
                        outputs[player] = np.asarray(stop.value)
                        del live[player]
                        break
                    if isinstance(action, Post):
                        obs.incr("engine.posts")
                        self.oracle.billboard.post_vectors(action.channel, np.atleast_2d(action.vector))
                        send_value = None
                        continue
                    if isinstance(action, Probe):
                        pending[player] = self.oracle.probe(player, action.obj)
                        consumed = True
                        break
                    if isinstance(action, Wait):
                        obs.incr("engine.waits")
                        pending[player] = None
                        consumed = True
                        break
                    raise TypeError(f"player {player} yielded unknown action {action!r}")
            if consumed:
                rounds += 1
            elif live:  # pragma: no cover - defensive: nobody acted but players remain
                raise RuntimeError("deadlock: live players performed no action this round")

        if live:
            raise RuntimeError(f"{len(live)} players still running after {max_rounds} rounds")
        obs.incr("engine.rounds", rounds)
        probe_rounds = (self.oracle.stats() - before).rounds
        return EngineResult(outputs=outputs, rounds=rounds, probe_rounds=probe_rounds)
