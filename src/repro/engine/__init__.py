"""A literal round-synchronous execution engine.

The library's main implementations simulate the player population
*globally* (vectorized over players — fast, and information-flow
faithful).  This package provides the complementary artifact: the
paper's execution model taken literally.

* every player is an independent coroutine
  (:mod:`~repro.engine.actions` defines its action vocabulary: probe
  one object, post a vector, wait a round);
* a :class:`~repro.engine.scheduler.RoundScheduler` advances all players
  in lockstep — per round each player performs at most one probe,
  exactly Definition 1.1's "in each round, each player reads the shared
  billboard, probes one object, and writes the result";
* public coins (:mod:`~repro.engine.coins`) are a pre-drawn halving
  tree every player derives identically from the shared seed.

:mod:`~repro.engine.zero_radius_player` implements Algorithm Zero Radius
as a *player-local* program; the test suite cross-validates it **bitwise**
against the global implementation — same coins, same candidates, same
Select decisions, same outputs — which is the strongest evidence that
the fast global simulation respects the distributed model.
"""

from repro.engine.actions import Post, Probe, Wait
from repro.engine.coins import HalvingNode, PublicCoins
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.engine.zero_radius_player import run_zero_radius_engine, zero_radius_player
from repro.engine.small_radius_player import (
    SmallRadiusCoins,
    run_small_radius_engine,
    small_radius_player,
)
from repro.engine.large_radius_player import (
    LargeRadiusCoins,
    large_radius_player,
    run_large_radius_engine,
)
from repro.engine.anytime_player import run_anytime_engine
from repro.engine.main_player import (
    MainCoins,
    UnknownDCoins,
    find_preferences_player,
    find_preferences_unknown_d_player,
    run_find_preferences_engine,
    run_find_preferences_unknown_d_engine,
)

__all__ = [
    "run_anytime_engine",
    "MainCoins",
    "UnknownDCoins",
    "find_preferences_player",
    "find_preferences_unknown_d_player",
    "run_find_preferences_engine",
    "run_find_preferences_unknown_d_engine",
    "LargeRadiusCoins",
    "large_radius_player",
    "run_large_radius_engine",
    "SmallRadiusCoins",
    "small_radius_player",
    "run_small_radius_engine",
    "Probe",
    "Post",
    "Wait",
    "PublicCoins",
    "HalvingNode",
    "RoundScheduler",
    "EngineResult",
    "zero_radius_player",
    "run_zero_radius_engine",
]
