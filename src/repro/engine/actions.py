"""Player-action vocabulary for the round engine.

A player program is a generator that yields actions:

* :class:`Probe` — probe one object; the scheduler sends back the 0/1
  grade.  **Consumes the player's round.**
* :class:`Post` — publish a vector on a billboard channel.  Free (the
  model's "writes the result on the billboard" happens within the same
  round); the scheduler sends back ``None`` and immediately continues
  the same player.
* :class:`Wait` — do nothing this round (used to wait for other
  players' posts).  Consumes the round.

The program's ``return`` value is the player's output vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Probe", "Post", "Wait"]


@dataclass(frozen=True)
class Probe:
    """Probe one object (consumes the round; scheduler replies with the grade)."""

    obj: int

    def __post_init__(self) -> None:
        if self.obj < 0:
            raise ValueError(f"object index must be non-negative, got {self.obj}")


@dataclass(frozen=True)
class Post:
    """Publish *vector* under *channel* (free; scheduler replies ``None``)."""

    channel: str
    vector: np.ndarray


@dataclass(frozen=True)
class Wait:
    """Idle this round (consumes the round; scheduler replies ``None``)."""
