"""Fig. 1's dispatcher and §6's unknown-``D`` search as player programs.

With the three algorithm programs in place, the *whole pipeline* runs
distributed:

* :func:`find_preferences_player` — the Fig. 1 branch (``D = 0`` →
  Zero Radius; small ``D`` → Small Radius; else Large Radius), chosen
  identically by every player from the shared parameters;
* :func:`find_preferences_unknown_d_player` — §6: run a version per
  ``D`` in the doubling schedule (each namespaced on the billboard),
  then pick among the candidate outputs with the RSelect coroutine,
  seeded from the player's own pre-drawn stream.

Both are bitwise-equal to their global twins
(:func:`repro.core.main.find_preferences` /
:func:`repro.core.main.find_preferences_unknown_d`) given the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.main import _doubling_schedule
from repro.core.params import Params
from repro.core.rselect import rselect_coroutine
from repro.engine.actions import Probe
from repro.engine.coins import PublicCoins
from repro.engine.large_radius_player import LargeRadiusCoins, large_radius_player
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.engine.small_radius_player import SmallRadiusCoins, small_radius_player
from repro.engine.zero_radius_player import zero_radius_player
from repro.utils.rng import as_generator, spawn, spawn_many
from repro.utils.validation import WILDCARD

__all__ = [
    "MainCoins",
    "UnknownDCoins",
    "find_preferences_player",
    "find_preferences_unknown_d_player",
    "run_find_preferences_engine",
    "run_find_preferences_unknown_d_engine",
]


@dataclass
class MainCoins:
    """Shared randomness + branch decision of one Fig. 1 execution."""

    branch: str
    alpha: float
    D: int
    zr_tree: PublicCoins | None = None
    sr_coins: SmallRadiusCoins | None = None
    lr_coins: LargeRadiusCoins | None = None

    @classmethod
    def draw(
        cls,
        n: int,
        m: int,
        alpha: float,
        D: int,
        *,
        params: Params | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> "MainCoins":
        """Replicate :func:`repro.core.main.find_preferences`'s dispatch + draws."""
        p = params or Params.practical()
        if not (0 < alpha <= 1):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if D < 0:
            raise ValueError(f"D must be non-negative, got {D}")
        gen = as_generator(rng)
        players = np.arange(n, dtype=np.intp)
        if D == 0:
            tree = PublicCoins.draw(players, m, alpha, n_global=n, params=p, rng=gen)
            return cls(branch="zero_radius", alpha=alpha, D=D, zr_tree=tree)
        if D <= p.small_d_threshold(n):
            sr = SmallRadiusCoins.draw(players, m, alpha, D, n_global=n, params=p, rng=gen)
            return cls(branch="small_radius", alpha=alpha, D=D, sr_coins=sr)
        lr = LargeRadiusCoins.draw(n, m, alpha, D, params=p, rng=gen)
        return cls(branch="large_radius", alpha=alpha, D=D, lr_coins=lr)


def find_preferences_player(
    player: int,
    coins: MainCoins,
    billboard: Billboard,
    n: int,
    m: int,
    *,
    params: Params | None = None,
    channel_prefix: str = "",
) -> Generator[Any, Any, np.ndarray]:
    """Build the Fig. 1 program for one player (dispatch on the shared coins)."""
    p = params or Params.practical()
    if coins.branch == "zero_radius":
        out = yield from zero_radius_player(
            player, coins.zr_tree, billboard, coins.alpha, m,
            params=p, channel_prefix=channel_prefix,
        )
        return out.astype(np.int8)
    if coins.branch == "small_radius":
        players = np.arange(n, dtype=np.intp)
        out = yield from small_radius_player(
            player, coins.sr_coins, billboard, players, np.arange(m, dtype=np.intp),
            coins.alpha, coins.D, params=p, channel_prefix=channel_prefix,
        )
        return out.astype(np.int8)
    out = yield from large_radius_player(
        player, coins.lr_coins, billboard, m, coins.alpha,
        params=p, channel_prefix=channel_prefix,
    )
    return out


@dataclass
class UnknownDCoins:
    """Shared randomness of one §6 unknown-``D`` execution."""

    schedule: list[int]
    versions: list[MainCoins]
    player_rngs: list[np.random.Generator]

    @classmethod
    def draw(
        cls,
        n: int,
        m: int,
        alpha: float,
        *,
        params: Params | None = None,
        rng: int | np.random.Generator | None = None,
        d_max: int | None = None,
    ) -> "UnknownDCoins":
        """Replicate :func:`repro.core.main.find_preferences_unknown_d`'s draws."""
        p = params or Params.practical()
        gen = as_generator(rng)
        schedule = _doubling_schedule(m, p.unknown_d_base, d_max)
        versions = [
            MainCoins.draw(n, m, alpha, D, params=p, rng=spawn(gen)) for D in schedule
        ]
        player_rngs = spawn_many(spawn(gen), n)
        return cls(schedule=schedule, versions=versions, player_rngs=player_rngs)


def find_preferences_unknown_d_player(
    player: int,
    coins: UnknownDCoins,
    billboard: Billboard,
    n: int,
    m: int,
    *,
    params: Params | None = None,
    channel_prefix: str = "",
) -> Generator[Any, Any, np.ndarray]:
    """Build the §6 unknown-``D`` program for one player."""
    p = params or Params.practical()
    candidates = np.empty((len(coins.schedule), m), dtype=np.int8)
    for i, version in enumerate(coins.versions):
        out = yield from find_preferences_player(
            player, version, billboard, n, m, params=p,
            channel_prefix=f"{channel_prefix}v{i}/",
        )
        candidates[i] = out

    sel = rselect_coroutine(
        np.ascontiguousarray(candidates), n, params=p, rng=coins.player_rngs[player]
    )
    try:
        coord = next(sel)
        while True:
            value = yield Probe(int(coord))
            coord = sel.send(value)
    except StopIteration as stop:
        return stop.value.vector.astype(np.int8)


def run_find_preferences_engine(
    oracle: ProbeOracle,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, EngineResult]:
    """Distributed Fig. 1 run (cf. :func:`repro.core.main.find_preferences`)."""
    p = params or Params.practical()
    n, m = oracle.n_players, oracle.n_objects
    coins = MainCoins.draw(n, m, alpha, D, params=p, rng=rng)
    programs = {
        pl: find_preferences_player(pl, coins, oracle.billboard, n, m, params=p)
        for pl in range(n)
    }
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
    out = np.full((n, m), WILDCARD, dtype=np.int8)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, result


def run_find_preferences_unknown_d_engine(
    oracle: ProbeOracle,
    alpha: float,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    d_max: int | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, EngineResult]:
    """Distributed §6 unknown-``D`` run (cf. the global twin)."""
    p = params or Params.practical()
    n, m = oracle.n_players, oracle.n_objects
    coins = UnknownDCoins.draw(n, m, alpha, params=p, rng=rng, d_max=d_max)
    programs = {
        pl: find_preferences_unknown_d_player(pl, coins, oracle.billboard, n, m, params=p)
        for pl in range(n)
    }
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
    out = np.full((n, m), WILDCARD, dtype=np.int8)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, result
