"""The §6 anytime loop, distributed.

Phases ``α = 2⁻ʲ`` of the unknown-``D`` search run as engine executions
against the *same* oracle (cumulative budget); after each phase every
player merges the new output into its running best with an RSelect
coroutine.  Budget exhaustion anywhere inside a phase aborts that phase
(the model's "time is up"), and the best *completed* output stands — the
same semantics as :func:`repro.core.main.anytime_find_preferences`, and
bitwise-equal to it for the same seed while the budget lasts.
"""

from __future__ import annotations

import math
from typing import Any, Generator

import numpy as np

from repro.billboard.exceptions import BudgetExceededError
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.rselect import rselect_coroutine
from repro.engine.actions import Probe
from repro.engine.main_player import UnknownDCoins, find_preferences_unknown_d_player
from repro.engine.scheduler import RoundScheduler
from repro.utils.rng import as_generator, spawn, spawn_many
from repro.utils.validation import WILDCARD

__all__ = ["merge_program", "run_anytime_engine"]


def merge_program(
    player: int,
    best: np.ndarray,
    new: np.ndarray,
    n: int,
    rng: np.random.Generator,
    params: Params,
) -> Generator[Any, Any, np.ndarray]:
    """One player's phase-merge program: RSelect between old and new.

    Exported so :mod:`repro.serve` can run the same merge stage the
    engine runs — the serving runtime stays bitwise-equal to the offline
    anytime loop by construction, not by reimplementation.
    """
    cands = np.ascontiguousarray(np.stack([best, new]))
    sel = rselect_coroutine(cands, n, params=params, rng=rng)
    try:
        coord = next(sel)
        while True:
            value = yield Probe(int(coord))
            coord = sel.send(value)
    except StopIteration as stop:
        return stop.value.vector.astype(np.int8)


def run_anytime_engine(
    oracle: ProbeOracle,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_phases: int | None = None,
    d_max: int | None = None,
    max_rounds: int = 10_000_000,
) -> tuple[np.ndarray, dict]:
    """Distributed §6 anytime run (cf. the global twin).

    Returns ``(outputs, meta)`` with ``meta["phases"]`` the completed
    ``α`` values and ``meta["budget_exhausted"]`` the abort flag.
    """
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects

    max_j = int(math.floor(math.log2(max(2.0, n / max(1.0, math.log(max(n, 2)))))))
    if max_phases is not None:
        max_j = min(max_j, max_phases - 1)

    best: np.ndarray | None = None
    completed: list[float] = []
    exhausted = False
    for j in range(max_j + 1):
        alpha_j = 2.0 ** (-j)
        try:
            coins = UnknownDCoins.draw(n, m, alpha_j, params=p, rng=spawn(gen), d_max=d_max)
            programs = {
                pl: find_preferences_unknown_d_player(
                    pl, coins, oracle.billboard, n, m, params=p,
                    channel_prefix=f"phase{j}/",
                )
                for pl in range(n)
            }
            result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)
            new = np.full((n, m), WILDCARD, dtype=np.int8)
            for pl, vec in result.outputs.items():
                new[pl] = vec
            if best is None:
                merged = new
            else:
                merge_rngs = spawn_many(spawn(gen), n)
                merge_programs = {
                    pl: merge_program(pl, best[pl], new[pl], n, merge_rngs[pl], p)
                    for pl in range(n)
                }
                merge_result = RoundScheduler(oracle, merge_programs).run(max_rounds=max_rounds)
                merged = np.empty_like(new)
                for pl, vec in merge_result.outputs.items():
                    merged[pl] = vec
            best = merged
        except BudgetExceededError:
            exhausted = True
            break
        completed.append(alpha_j)

    if best is None:
        mask = oracle.billboard.revealed_mask()
        values = oracle.billboard.revealed_values()
        best = np.where(mask, values, 0).astype(np.int8)

    return best, {"phases": completed, "budget_exhausted": exhausted}
