"""Append-only shared-memory post log: the billboard's cross-shard spine.

The billboard is the one piece of state the sharded serving runtime
(:mod:`repro.serve.sharded`) must share between worker processes, and
its in-process write path — a mutable dict of channels — does not
survive that move.  This module replaces it for cross-shard visibility
with a classic single-log design:

* **Append-only log.**  Every post is appended to one fixed-capacity
  ``multiprocessing.shared_memory`` segment as a self-delimiting record
  (packed 0/1 rows whenever the packed substrate would store them
  packed, dense ``int16`` otherwise).  Appends serialise on one lock;
  channels are single-writer (names embed the posting player id), so
  the log order is an interleaving of every shard's program order.

* **Epoch-stamped commits.**  The header carries a *committed*
  watermark (bytes of fully written records).  An append writes its
  record body first and advances the watermark last, so a record is
  either invisible or complete — a writer killed mid-append leaves
  torn bytes *past* the watermark that the next append simply
  overwrites.  The watermark is the epoch: one aligned 8-byte read.

* **Lock-free reads.**  :meth:`PostLog.read` snapshots the watermark
  once and parses records up to it — no lock, no waiting on writers.
  :class:`SharedBillboard` applies those records to its private
  in-process :class:`~repro.billboard.board.Billboard` on
  :meth:`~SharedBillboard.sync`, so ``read_vectors`` /
  ``read_first_rows`` / ``read_first_rows_packed`` between two syncs
  all observe one consistent epoch, and every shard's view equals a
  prefix of the same serial order (the log order).

Barrier markers and the budget-exhausted marker ride the same log
(kinds 3/4): because a shard appends all its stage posts *before* its
barrier marker, seeing the marker implies seeing the posts — the
property the sharded phase barriers rest on.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.billboard.board import Billboard, _Channel
from repro.metrics.bitpack import pack_rows, packed_width, unpack_rows

__all__ = [
    "KIND_BARRIER",
    "KIND_DENSE",
    "KIND_EXHAUSTED",
    "KIND_PACKED",
    "PostLog",
    "PostRecord",
    "SharedBillboard",
    "default_log_capacity",
]

_MAGIC = 0x52504C4F47763401  # "RPLOGv4" + format nibble
_HEADER = struct.Struct("<QQQQ")  # magic, capacity, committed, reserved
_REC = struct.Struct("<IHHIIQI4x")  # size, kind, shard, rows, m, seq, name_len

#: Record kinds.
KIND_PACKED = 1  # bit-packed 0/1 rows (uint8 payload, packed_width(m) per row)
KIND_DENSE = 2  # dense int16 rows
KIND_BARRIER = 3  # stage-barrier marker; channel field holds the tag
KIND_EXHAUSTED = 4  # probe budget tripped somewhere in the shard set


def _align8(size: int) -> int:
    return (size + 7) & ~7


def _log_class(cls: type["PostLog"]) -> type["PostLog"]:
    """The class :meth:`PostLog.create`/:meth:`PostLog.attach` build.

    ``REPRO_SANITIZE=1`` swaps in the watermark-protocol-checking
    subclass (:class:`repro.sanitize.postlog.SanitizedPostLog`) for
    every log in the process — the sharded runtime then runs all its
    appends and epoch reads under assertion, with zero import cost (and
    zero hot-path branching beyond the subclass dispatch) when off.  An
    explicit subclass call (``SanitizedPostLog.create(...)``) always
    wins over the environment.
    """
    if cls is not PostLog:
        return cls
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        return cls
    from repro.sanitize.postlog import SanitizedPostLog

    return SanitizedPostLog


# Logs created by THIS process (and, under fork, inherited from the
# parent).  Attachers that find the name here reuse the creator's own
# mapping — same rationale as ``repro.parallel.shared._LOCAL_SEGMENTS``:
# on Python < 3.13 a same-process attach registers the segment with the
# resource tracker, so attach + unregister would strip the creator's
# registration and make the eventual unlink double-unregister.
_LOCAL_LOGS: dict[str, shared_memory.SharedMemory] = {}


def default_log_capacity(n_players: int, n_objects: int) -> int:
    """Generous static bound on one run's post-log bytes.

    Sized from the anytime loop's posting profile — a handful of
    single-row channels per player per phase, ≈ ``log2 n`` phases —
    with a wide margin; an overflowing run raises (posts are never
    dropped) and can pass an explicit ``ServeConfig.log_capacity``.
    """
    phases = max(4, int(np.log2(max(2, n_players))) + 2)
    per_row = packed_width(n_objects) + 192
    return max(1 << 22, 32 * n_players * per_row * phases)


@dataclass(frozen=True)
class PostRecord:
    """One committed log record, decoded."""

    kind: int
    shard: int
    channel: str
    seq: int
    rows: int
    m: int
    payload: bytes


class PostLog:
    """Fixed-capacity append-only record log in shared memory.

    ``lock`` (a ``multiprocessing.Lock`` shared by all writers) guards
    appends; reads never take it.  Single-process use may omit it.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
        lock: Any = None,
        borrowed: bool = False,
    ) -> None:
        magic, capacity, _, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            if not borrowed:
                shm.close()
            raise ValueError(f"shared segment {shm.name!r} is not a post log")
        self._shm = shm
        self._owner = owner
        self._borrowed = borrowed
        self._lock = lock
        self._capacity = int(capacity)

    @classmethod
    def create(cls, capacity: int, *, lock: Any = None) -> "PostLog":
        """Allocate a fresh log able to hold *capacity* record bytes."""
        if capacity <= 0:
            raise ValueError(f"log capacity must be positive, got {capacity}")
        capacity = _align8(capacity)
        shm = shared_memory.SharedMemory(create=True, size=_HEADER.size + capacity)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, capacity, 0, 0)
        _LOCAL_LOGS[shm.name] = shm
        return _log_class(cls)(shm, owner=True, lock=lock)

    @classmethod
    def attach(cls, name: str, *, lock: Any = None) -> "PostLog":
        """Attach to an existing log by segment name (workers).

        A log created by this process (or inherited through fork) is
        read through the creator's existing mapping; only a foreign
        process actually re-attaches.
        """
        local = _LOCAL_LOGS.get(name)
        if local is not None:
            return _log_class(cls)(local, owner=False, lock=lock, borrowed=True)
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:  # Python < 3.13: no track kwarg
            shm = shared_memory.SharedMemory(name=name)
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:  # pragma: no cover - best-effort on exotic platforms
                pass
        return _log_class(cls)(shm, owner=False, lock=lock)

    @property
    def name(self) -> str:
        """Shared-memory segment name (pass to :meth:`attach`)."""
        return str(self._shm.name)

    @property
    def capacity(self) -> int:
        """Record-region size in bytes."""
        return self._capacity

    @property
    def committed(self) -> int:
        """The epoch: bytes of fully committed records (one atomic read)."""
        return int(struct.unpack_from("<Q", self._shm.buf, 16)[0])

    def append(
        self,
        kind: int,
        shard: int,
        channel: str,
        seq: int,
        payload: bytes = b"",
        *,
        rows: int = 0,
        m: int = 0,
    ) -> None:
        """Append one record: body first, watermark last (crash-safe)."""
        if self._lock is not None:
            with self._lock:
                self._append(kind, shard, channel, seq, payload, rows, m)
        else:
            self._append(kind, shard, channel, seq, payload, rows, m)

    def _append(
        self, kind: int, shard: int, channel: str, seq: int, payload: bytes, rows: int, m: int
    ) -> None:
        name_b = channel.encode("utf-8")
        size = _align8(_REC.size + len(name_b) + len(payload))
        committed = self.committed
        if committed + size > self._capacity:
            raise RuntimeError(
                f"post log full: {committed + size} bytes needed, capacity {self._capacity} "
                f"(raise ServeConfig.log_capacity)"
            )
        self._write_body(committed, size, kind, shard, seq, name_b, payload, rows, m)
        self._publish(committed, committed + size)

    # The two halves of the commit protocol, split so the sanitizer
    # (and its interleaving harness) can override / step between them.
    # Protocol order is load-bearing: _write_body lands every record
    # byte past the watermark, _publish's aligned 8-byte store is the
    # one and only commit point.

    def _write_body(
        self,
        committed: int,
        size: int,
        kind: int,
        shard: int,
        seq: int,
        name_b: bytes,
        payload: bytes,
        rows: int,
        m: int,
    ) -> None:
        offset = _HEADER.size + committed
        buf = self._shm.buf
        _REC.pack_into(buf, offset, size, kind, shard, rows, m, seq, len(name_b))
        start = offset + _REC.size
        buf[start : start + len(name_b)] = name_b
        start += len(name_b)
        buf[start : start + len(payload)] = payload

    def _publish(self, old: int, new: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 16, new)

    def read(self, start: int) -> tuple[int, list[PostRecord]]:
        """Parse the committed records in ``[start, epoch)``; lock-free.

        Returns ``(epoch, records)``; pass the returned epoch as the
        next call's *start* to read incrementally.
        """
        epoch = self.committed
        self._observe_epoch(epoch)
        records: list[PostRecord] = []
        buf = self._shm.buf
        pos = start
        while pos < epoch:
            offset = _HEADER.size + pos
            size, kind, shard, rows, m, seq, name_len = _REC.unpack_from(buf, offset)
            self._check_record(pos, epoch, size, kind, rows, m, name_len)
            name_start = offset + _REC.size
            channel = bytes(buf[name_start : name_start + name_len]).decode("utf-8")
            payload_start = name_start + name_len
            if kind == KIND_PACKED:
                payload_len = rows * packed_width(m)
            elif kind == KIND_DENSE:
                payload_len = rows * m * 2
            else:
                payload_len = 0
            payload = bytes(buf[payload_start : payload_start + payload_len])
            records.append(
                PostRecord(
                    kind=int(kind),
                    shard=int(shard),
                    channel=channel,
                    seq=int(seq),
                    rows=int(rows),
                    m=int(m),
                    payload=payload,
                )
            )
            pos += size
        return epoch, records

    # Read-side sanitizer hooks: no-ops here, overridden by
    # repro.sanitize.postlog.SanitizedPostLog under REPRO_SANITIZE=1.

    def _observe_epoch(self, epoch: int) -> None:
        """Called with each snapshot of the watermark before parsing."""

    def _check_record(
        self, pos: int, epoch: int, size: int, kind: int, rows: int, m: int, name_len: int
    ) -> None:
        """Called per record header before its bytes are interpreted."""

    def close(self) -> None:
        """Detach; the owner also unlinks the segment.

        Borrowed handles (same-process attaches) leave the creator's
        mapping alone — the creator's own :meth:`close` reaps it.
        """
        if self._borrowed:
            return
        try:
            self._shm.close()
        finally:
            if self._owner:
                _LOCAL_LOGS.pop(self._shm.name, None)
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"PostLog(name={self.name!r}, committed={self.committed}, capacity={self._capacity})"


class SharedBillboard(Billboard):
    """A per-shard billboard whose posts replicate through a :class:`PostLog`.

    Each worker holds one instance: local posts are appended to the log
    *and* installed locally; :meth:`sync` pulls foreign records up to
    the current epoch and installs them, so all read methods inherited
    from :class:`Billboard` observe a consistent prefix of the log's
    serial order.  Revealed grades need no replication — the oracle
    only reveals entries of players the local shard owns, and programs
    only read their own grades.
    """

    def __init__(
        self, n_players: int, n_objects: int, *, log: PostLog, shard: int, n_shards: int
    ) -> None:
        super().__init__(n_players, n_objects)
        self._log = log
        self._shard = int(shard)
        self._n_shards = int(n_shards)
        self._cursor = 0
        self._chan_seq: dict[str, int] = {}
        self._barriers: dict[str, set[int]] = {}
        self._exhausted_seen = False

    # ------------------------------------------------------------------
    # write path: log first, then install locally
    # ------------------------------------------------------------------
    def post_vectors(self, channel: str, matrix: np.ndarray) -> None:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise ValueError(f"posted vectors must be 2-D, got shape {arr.shape}")
        seq = self._chan_seq.get(channel, 0) + 1
        self._chan_seq[channel] = seq
        staged = _Channel(arr)
        if staged.packed is not None:
            self._log.append(
                KIND_PACKED,
                self._shard,
                channel,
                seq,
                staged.packed.tobytes(),
                rows=staged.packed.shape[0],
                m=staged.m,
            )
        else:
            assert staged.dense is not None
            self._log.append(
                KIND_DENSE,
                self._shard,
                channel,
                seq,
                np.ascontiguousarray(staged.dense).tobytes(),
                rows=staged.dense.shape[0],
                m=staged.m,
            )
        super().post_vectors(channel, matrix)

    def post_barrier(self, tag: str) -> None:
        """Announce this shard reached stage barrier *tag* (idempotent)."""
        if self._shard in self._barriers.get(tag, ()):
            return
        self._barriers.setdefault(tag, set()).add(self._shard)
        self._log.append(KIND_BARRIER, self._shard, tag, 0)

    def post_exhausted(self) -> None:
        """Announce the probe budget tripped (freezes every shard)."""
        self._exhausted_seen = True
        self._log.append(KIND_EXHAUSTED, self._shard, "", 0)

    # ------------------------------------------------------------------
    # read path: pull one epoch, install foreign records
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Install all records committed since the last sync.

        Returns the number of records processed (foreign posts plus any
        markers).  Reads are lock-free; between two syncs every
        billboard read observes the same epoch.
        """
        epoch, records = self._log.read(self._cursor)
        self._cursor = epoch
        processed = 0
        for rec in records:
            if rec.kind in (KIND_PACKED, KIND_DENSE):
                if rec.shard == self._shard:
                    continue  # already installed on the local write path
                self._install(rec)
                processed += 1
            elif rec.kind == KIND_BARRIER:
                self._barriers.setdefault(rec.channel, set()).add(rec.shard)
                processed += 1
            elif rec.kind == KIND_EXHAUSTED:
                self._exhausted_seen = True
                processed += 1
            else:  # pragma: no cover - format corruption
                raise ValueError(f"unknown post-log record kind {rec.kind}")
        return processed

    def _install(self, rec: PostRecord) -> None:
        """Install one foreign post exactly as the poster stored it."""
        if rec.kind == KIND_PACKED:
            packed = np.frombuffer(rec.payload, dtype=np.uint8)
            packed = packed.reshape(rec.rows, packed_width(rec.m))
            matrix = unpack_rows(packed, rec.m, dtype=np.int16)
        else:
            matrix = np.frombuffer(rec.payload, dtype=np.int16).reshape(rec.rows, rec.m)
        self._channels[rec.channel] = _Channel(matrix)

    def barrier_complete(self, tag: str) -> bool:
        """Whether every shard has announced barrier *tag*."""
        return len(self._barriers.get(tag, ())) >= self._n_shards

    @property
    def exhausted_seen(self) -> bool:
        """Whether any shard announced budget exhaustion."""
        return self._exhausted_seen

    @property
    def shard(self) -> int:
        """This shard's id."""
        return self._shard

    def restore_state(
        self,
        revealed: np.ndarray,
        values: np.ndarray,
        channels: dict[str, np.ndarray],
    ) -> None:
        """Install a checkpoint's board state without logging it.

        Used on restore: every worker installs the same global channel
        dict locally, so nothing needs replicating.
        """
        revealed_arr = np.asarray(revealed, dtype=bool)
        values_arr = np.asarray(values, dtype=np.int8)
        if revealed_arr.shape != (self.n_players, self.n_objects):
            raise ValueError(
                f"revealed shape {revealed_arr.shape} != ({self.n_players}, {self.n_objects})"
            )
        self._install_grades(revealed_arr, values_arr)
        for name, arr in channels.items():
            self._channels[name] = _Channel(np.asarray(arr))
