"""The shared billboard.

The model (Section 1.1) lets every player read everything ever posted:
probe results ("the eBay ranking matrix") and other players' output
vectors (``w(p)`` "is accessible to all players").  The billboard stores

* **revealed grades**: a dense value matrix (entries only the owning
  player could have revealed, enforced by the oracle) — under the packed
  substrate the revealed mask is *derived* (``values != WILDCARD``;
  grades are 0/1, so the wildcard fill marks exactly the hidden
  entries), halving both the memory and the per-batch scatter cost —
  and :meth:`Billboard.grade_sink` lets the oracle extract and post a
  probe batch in one kernel pass
  (:func:`repro.metrics.kernels.fused_extract_post`); the dense
  reference substrate keeps the explicit mask + value pair, and
* **posted vector channels**: named matrices of intermediate outputs
  (e.g. the per-part Zero Radius results that Small Radius votes over,
  or the Small Radius outputs that Coalesce clusters).

Wildcards ("?" = -1) are allowed in posted vectors but not in revealed
grades.

Storage: under the default packed substrate, 0/1 posts (the vote
channels — by far the most numerous) are stored bit-packed and unpacked
only at the read boundary; posts carrying wildcards, ``NO_OUTPUT``
fills, or super-object values stay dense ``int16``.  Readers see
identical matrices either way (:func:`repro.metrics.bitpack.dense_substrate`
forces the dense reference storage for A/B runs), and the packed vote
pipeline — :meth:`Billboard.read_first_rows_packed` feeding
:func:`repro.utils.rowset.popular_rows_packed` — never materialises the
``int16`` vote stack at all.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro import obs
from repro.obs import metrics
from repro.metrics import kernels
from repro.metrics.bitpack import pack_rows, packed_substrate_enabled, unpack_rows
from repro.utils.validation import WILDCARD

__all__ = ["Billboard"]


class _Channel:
    """One posted-vector channel: bit-packed 0/1 rows or dense ``int16``.

    The packed form is chosen at post time (integer dtype, every entry
    0/1, packed substrate enabled); everything observable — read copies,
    first-row gathers, checkpoints — unpacks back to the exact ``int16``
    matrix the dense form stores.
    """

    __slots__ = ("dense", "packed", "m")

    def __init__(self, arr: np.ndarray) -> None:
        self.m = int(arr.shape[1])
        if (
            packed_substrate_enabled()
            and arr.size > 0
            and arr.dtype.kind in "iub"
            and int(arr.min()) >= 0
            and int(arr.max()) <= 1
        ):
            self.packed: np.ndarray | None = pack_rows(arr)
            self.dense: np.ndarray | None = None
        else:
            self.packed = None
            self.dense = np.array(arr, dtype=np.int16, copy=True)

    def matrix(self) -> np.ndarray:
        """Fresh dense ``int16`` copy of the posted matrix."""
        if self.dense is not None:
            return self.dense.copy()
        assert self.packed is not None
        return unpack_rows(self.packed, self.m, dtype=np.int16)

    def first_row(self) -> np.ndarray:
        """Dense ``int16`` first row (raises ``IndexError`` when empty)."""
        if self.dense is not None:
            return self.dense[0]
        assert self.packed is not None
        return unpack_rows(self.packed[:1], self.m, dtype=np.int16)[0]


class Billboard:
    """Public shared state for one algorithm run over an ``n × m`` instance."""

    def __init__(self, n_players: int, n_objects: int) -> None:
        if n_players <= 0 or n_objects <= 0:
            raise ValueError(f"population must be positive, got n={n_players}, m={n_objects}")
        self.n_players = int(n_players)
        self.n_objects = int(n_objects)
        # Packed substrate: the revealed mask is derived from the value
        # matrix (grades are 0/1, WILDCARD marks hidden), so one int8
        # scatter per probe batch instead of two.  Dense substrate keeps
        # the explicit mask — the A/B reference representation.
        if packed_substrate_enabled():
            self._revealed: np.ndarray | None = None
        else:
            self._revealed = np.zeros((n_players, n_objects), dtype=bool)
        self._values = np.full((n_players, n_objects), WILDCARD, dtype=np.int8)
        self._channels: dict[str, _Channel] = {}

    # ------------------------------------------------------------------
    # revealed grades
    # ------------------------------------------------------------------
    def post_grades(self, players: np.ndarray, objects: np.ndarray, values: np.ndarray) -> None:
        """Record revealed grades (called by the oracle after each probe batch).

        *values* are 0/1 grades — never :data:`WILDCARD`, which is what
        lets the derived-mask mode equate "revealed" with "non-wildcard".
        """
        if self._revealed is not None:
            self._revealed[players, objects] = True
            self._values[players, objects] = values
        else:
            kernels.scatter_values(
                self._values, players, objects, np.asarray(values, dtype=np.int8)
            )

    def grade_sink(self) -> np.ndarray | None:
        """The writable grade matrix for the oracle's fused probe path.

        In derived-mask mode a probe batch *is* one scatter of 0/1
        values into this matrix, so the oracle fuses extraction and
        posting into a single kernel pass
        (:func:`repro.metrics.kernels.fused_extract_post`) instead of
        calling :meth:`post_grades`.  Returns ``None`` under the dense
        reference substrate, where the explicit mask must be updated too
        and the oracle takes the :meth:`post_grades` path.
        """
        if self._revealed is not None:
            return None
        return self._values

    def is_revealed(self, player: int, obj: int) -> bool:
        """Whether ``(player, obj)`` has ever been probed."""
        if self._revealed is not None:
            return bool(self._revealed[player, obj])
        return bool(self._values[player, obj] != WILDCARD)

    def is_revealed_many(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Per-pair revealed flags for a probe batch (fresh bool array).

        The batch twin of :meth:`is_revealed` — a k-element gather, so
        the oracle's ``charge_repeats=False`` path never materialises
        the full ``(n, m)`` mask.
        """
        if self._revealed is not None:
            return self._revealed[players, objects]
        return np.not_equal(self._values[players, objects], WILDCARD)

    def grade(self, player: int, obj: int) -> int:
        """The revealed grade of ``(player, obj)``; raises ``KeyError`` if hidden."""
        if not self.is_revealed(player, obj):
            raise KeyError(f"grade ({player}, {obj}) has not been revealed")
        return int(self._values[player, obj])

    def revealed_mask(self) -> np.ndarray:
        """Read-only ``(n, m)`` revealed-entry mask.

        A view in dense mode; a fresh (also read-only) array computed as
        ``values != WILDCARD`` in derived-mask mode.  Per-player hot
        paths should prefer :meth:`revealed_row` /
        :meth:`is_revealed_many`, which never build the full mask.
        """
        if self._revealed is not None:
            view = self._revealed.view()
            view.flags.writeable = False
            return view
        mask = np.not_equal(self._values, WILDCARD)
        mask.flags.writeable = False
        return mask

    def revealed_row(self, player: int) -> np.ndarray:
        """Read-only revealed flags of one player's row."""
        if self._revealed is not None:
            row = self._revealed[player].view()
        else:
            row = np.not_equal(self._values[player], WILDCARD)
        row.flags.writeable = False
        return row

    def revealed_values(self) -> np.ndarray:
        """Read-only ``(n, m)`` matrix of revealed grades (hidden entries = -1)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def n_revealed(self) -> int:
        """Total number of revealed entries."""
        if self._revealed is not None:
            return int(self._revealed.sum())
        return int(np.count_nonzero(self._values != WILDCARD))

    # ------------------------------------------------------------------
    # posted vector channels
    # ------------------------------------------------------------------
    def post_vectors(self, channel: str, matrix: np.ndarray) -> None:
        """Publish a matrix of vectors under *channel* (overwrites)."""
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise ValueError(f"posted vectors must be 2-D, got shape {arr.shape}")
        obs.incr("billboard.vector_posts")
        metrics.incr("board.vector_posts_total")
        self._channels[channel] = _Channel(arr)

    def read_vectors(self, channel: str) -> np.ndarray:
        """Read the matrix posted under *channel* (copy, so readers can't mutate)."""
        if channel not in self._channels:
            raise KeyError(f"no vectors posted under channel {channel!r}")
        obs.incr("billboard.vector_reads")
        metrics.incr("board.vector_reads_total")
        return self._channels[channel].matrix()

    def has_channel(self, channel: str) -> bool:
        """Whether *channel* has been posted."""
        return channel in self._channels

    def has_channels(self, channels: Iterable[str]) -> bool:
        """Whether every named channel has been posted."""
        store = self._channels
        return all(channel in store for channel in channels)

    def read_first_rows(self, channels: Sequence[str]) -> np.ndarray:
        """Stack the first row of each named channel into one fresh matrix.

        The batched form of the ``read_vectors(ch)[0]`` gather loop the
        player programs vote over: one counter bump and one allocation
        for the whole wavefront instead of a full-matrix copy per
        channel.  Values are bitwise identical to the scalar loop, and
        ``np.stack`` allocates the result, so callers still cannot
        mutate board state.
        """
        chans = self._gather_channels(channels)
        first = chans[0]
        if first.packed is not None and all(
            ch.packed is not None and ch.m == first.m for ch in chans
        ):
            packed = np.empty((len(chans), first.packed.shape[1]), dtype=np.uint8)
            for i, ch in enumerate(chans):
                assert ch.packed is not None
                packed[i] = ch.packed[0]
            out = unpack_rows(packed, first.m, dtype=np.int16)
        else:
            out = np.stack([ch.first_row() for ch in chans])
        obs.incr("billboard.vector_reads", len(chans))
        metrics.incr("board.vector_reads_total", len(chans))
        return out

    def read_first_rows_packed(self, channels: Sequence[str]) -> tuple[np.ndarray, int] | None:
        """Packed twin of :meth:`read_first_rows`: ``(packed rows, m)``.

        Returns the gathered first rows still bit-packed — the input
        :func:`repro.utils.rowset.popular_rows_packed` dedups without
        ever materialising the ``int16`` vote stack — or ``None`` when
        any requested channel is stored dense or widths differ, in which
        case the caller falls back to :meth:`read_first_rows` (no
        counter was bumped yet).  On the packed path the
        ``billboard.vector_reads`` counter advances exactly as the dense
        gather would.
        """
        chans = self._gather_channels(channels)
        first = chans[0]
        if first.packed is None or any(
            ch.packed is None or ch.m != first.m for ch in chans
        ):
            return None
        packed = np.empty((len(chans), first.packed.shape[1]), dtype=np.uint8)
        for i, ch in enumerate(chans):
            assert ch.packed is not None
            packed[i] = ch.packed[0]
        obs.incr("billboard.vector_reads", len(chans))
        metrics.incr("board.vector_reads_total", len(chans))
        return packed, first.m

    def _gather_channels(self, channels: Sequence[str]) -> list[_Channel]:
        store = self._channels
        try:
            chans = [store[channel] for channel in channels]
        except KeyError:
            missing = next(ch for ch in channels if ch not in store)
            raise KeyError(f"no vectors posted under channel {missing!r}") from None
        if not chans:
            raise ValueError("read_first_rows needs at least one channel")
        return chans

    def channels(self) -> list[str]:
        """All posted channel names."""
        return sorted(self._channels)

    # ------------------------------------------------------------------
    # checkpoint / restore (service snapshots)
    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple[np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """Copies of the full board state: ``(revealed, values, channels)``.

        The sanctioned export for :mod:`repro.serve.snapshot` — copies,
        so a snapshot taken now is unaffected by later posts.  The mask
        is exported explicitly either way, so snapshots written by a
        derived-mask board restore onto a dense-mode board and back.
        """
        if self._revealed is not None:
            revealed = self._revealed.copy()
        else:
            revealed = np.not_equal(self._values, WILDCARD)
        return (
            revealed,
            self._values.copy(),
            {name: ch.matrix() for name, ch in self._channels.items()},
        )

    def _install_grades(self, revealed: np.ndarray, values: np.ndarray) -> None:
        """Install checkpointed grade state, preserving the derived mode.

        Any state this class can produce satisfies ``revealed ==
        (values != WILDCARD)`` (grades are 0/1 and hidden entries are
        wildcard-filled), so a derived-mask board installs the values
        alone.  A hand-crafted inconsistent checkpoint falls back to the
        explicit dual-store representation rather than silently dropping
        the mask.
        """
        if self._revealed is None:
            if bool(np.array_equal(np.not_equal(values, WILDCARD), revealed)):
                self._values[:] = values
                return
            self._revealed = np.zeros((self.n_players, self.n_objects), dtype=bool)
        self._revealed[:] = revealed
        self._values[:] = values

    @classmethod
    def restore(
        cls,
        revealed: np.ndarray,
        values: np.ndarray,
        channels: dict[str, np.ndarray],
    ) -> "Billboard":
        """Rebuild a board from :meth:`checkpoint` output (arrays are copied)."""
        revealed_arr = np.asarray(revealed, dtype=bool)
        values_arr = np.asarray(values, dtype=np.int8)
        if revealed_arr.ndim != 2 or revealed_arr.shape != values_arr.shape:
            raise ValueError(
                f"revealed/values must be equal-shape 2-D, got {revealed_arr.shape} and {values_arr.shape}"
            )
        board = cls(revealed_arr.shape[0], revealed_arr.shape[1])
        board._install_grades(revealed_arr, values_arr)
        for name, arr in channels.items():
            board._channels[name] = _Channel(np.asarray(arr))
        return board

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"Billboard(n={self.n_players}, m={self.n_objects}, "
            f"revealed={self.n_revealed}, channels={len(self._channels)})"
        )
