"""Probe-event tracing.

A :class:`ProbeTrace` records every probe as an event
``(sequence, player, object, value, charged)`` in invocation order.
Attach one to a :class:`~repro.billboard.oracle.ProbeOracle` via
``oracle.attach_trace(trace)`` to get

* a complete audit log of a run's information flow (what the analysis
  sections of the paper reason about),
* per-phase / per-player slicing for debugging cost regressions,
* deterministic replay: feeding the same events into
  :meth:`ProbeTrace.replay_mask` reconstructs exactly which entries a
  run revealed — useful for verifying that two implementations consumed
  the same information.

Tracing is strictly observational: it never alters values, charging, or
randomness.

Storage is chunked-columnar NumPy: :meth:`record_batch` appends each
batch's columns as-is (no per-element Python loop), and readers
concatenate the chunks once, on demand, into cached contiguous columns.
Appending invalidates the cache; consolidation also *replaces* the chunk
list with the merged columns, so alternating append/read workloads stay
amortised O(1) per event.  The analysis paths are pure NumPy:
:meth:`charged_counts` is one ``np.bincount``, :meth:`events_for_player`
a boolean-mask slice (see ``benchmarks/bench_micro_substrate.py`` for
the throughput targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ProbeEvent", "ProbeTrace"]


@dataclass(frozen=True)
class ProbeEvent:
    """One probe invocation.

    Attributes
    ----------
    seq:
        0-based global sequence number (invocation order).
    player, obj:
        Who probed what.
    value:
        The revealed 0/1 grade.
    charged:
        Whether the probe was charged (False only for re-probes under
        ``charge_repeats=False``).
    """

    seq: int
    player: int
    obj: int
    value: int
    charged: bool


class ProbeTrace:
    """Append-only log of probe events (chunked columnar storage)."""

    def __init__(self) -> None:
        # Chunks of (players, objects, values, charged) column arrays.
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._columns: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._n = 0

    # ------------------------------------------------------------------
    # recording (called by the oracle)
    # ------------------------------------------------------------------
    def record_batch(
        self,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        charged: np.ndarray,
    ) -> None:
        """Append a batch of probe events in order."""
        players = np.array(players, dtype=np.intp, copy=True).ravel()
        objects = np.array(objects, dtype=np.intp, copy=True).ravel()
        values = np.array(values, dtype=np.int8, copy=True).ravel()
        charged = np.array(charged, dtype=bool, copy=True).ravel()
        if not (players.size == objects.size == values.size == charged.size):
            raise ValueError("record_batch columns must be equal length")
        if players.size == 0:
            return
        self._chunks.append((players, objects, values, charged))
        self._columns = None
        self._n += players.size

    def _consolidated(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Contiguous columns over all events (cached until next append)."""
        if self._columns is None:
            if not self._chunks:
                self._columns = (
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.int8),
                    np.empty(0, dtype=bool),
                )
            elif len(self._chunks) == 1:
                self._columns = self._chunks[0]
            else:
                merged = tuple(
                    np.concatenate([chunk[i] for chunk in self._chunks]) for i in range(4)
                )
                # Future appends extend *past* the merged prefix instead
                # of re-concatenating it from scratch.
                self._chunks = [merged]
                self._columns = merged
        return self._columns

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, seq: int) -> ProbeEvent:
        players, objects, values, charged = self._consolidated()
        idx = seq if seq >= 0 else self._n + seq
        if not (0 <= idx < self._n):
            raise IndexError(f"event {seq} out of range for trace of {self._n} events")
        return ProbeEvent(
            seq=idx,
            player=int(players[idx]),
            obj=int(objects[idx]),
            value=int(values[idx]),
            charged=bool(charged[idx]),
        )

    def __iter__(self) -> Iterator[ProbeEvent]:
        players, objects, values, charged = self._consolidated()
        for i in range(self._n):
            yield ProbeEvent(i, int(players[i]), int(objects[i]), int(values[i]), bool(charged[i]))

    @property
    def n_batches(self) -> int:
        """Number of ``record_batch`` calls recorded (before consolidation).

        Consolidation merges chunks for read efficiency, so this is the
        count of *recorded* batches only until the first read; use it
        immediately after a run to audit the batched path's batch count.
        """
        return len(self._chunks)

    def player_sequence(self, player: int) -> np.ndarray:
        """Objects probed by *player*, in the player's own probe order.

        The per-player observation stream — the quantity the batched
        drivers must preserve exactly: batches land in issue order and a
        batch lists each player's probes in that player's own order, so
        this subsequence is invariant under batching.
        """
        players, objects, _, _ = self._consolidated()
        return objects[players == player].copy()

    def events_for_player(self, player: int) -> list[ProbeEvent]:
        """All events of one player, in order (mask slice, not a full scan)."""
        players, objects, values, charged = self._consolidated()
        idx = np.flatnonzero(players == player)
        return [
            ProbeEvent(int(i), player, int(objects[i]), int(values[i]), bool(charged[i]))
            for i in idx
        ]

    def charged_counts(self, n_players: int) -> np.ndarray:
        """Per-player charged-probe counts (must equal the oracle's stats)."""
        players, _, _, charged = self._consolidated()
        return np.bincount(players[charged], minlength=n_players).astype(np.int64)

    def replay_mask(self, n_players: int, n_objects: int) -> np.ndarray:
        """Reconstruct the revealed-entry mask from the event log."""
        players, objects, _, _ = self._consolidated()
        mask = np.zeros((n_players, n_objects), dtype=bool)
        if players.size:
            mask[players, objects] = True
        return mask

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columnar dump (players, objects, values, charged)."""
        players, objects, values, charged = self._consolidated()
        return {
            "players": players.copy(),
            "objects": objects.copy(),
            "values": values.copy(),
            "charged": charged.copy(),
        }

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"ProbeTrace(events={len(self)})"
