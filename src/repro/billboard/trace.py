"""Probe-event tracing.

A :class:`ProbeTrace` records every probe as an event
``(sequence, player, object, value, charged)`` in invocation order.
Attach one to a :class:`~repro.billboard.oracle.ProbeOracle` via
``oracle.attach_trace(trace)`` to get

* a complete audit log of a run's information flow (what the analysis
  sections of the paper reason about),
* per-phase / per-player slicing for debugging cost regressions,
* deterministic replay: feeding the same events into
  :meth:`ProbeTrace.replay_mask` reconstructs exactly which entries a
  run revealed — useful for verifying that two implementations consumed
  the same information.

Tracing is strictly observational: it never alters values, charging, or
randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ProbeEvent", "ProbeTrace"]


@dataclass(frozen=True)
class ProbeEvent:
    """One probe invocation.

    Attributes
    ----------
    seq:
        0-based global sequence number (invocation order).
    player, obj:
        Who probed what.
    value:
        The revealed 0/1 grade.
    charged:
        Whether the probe was charged (False only for re-probes under
        ``charge_repeats=False``).
    """

    seq: int
    player: int
    obj: int
    value: int
    charged: bool


class ProbeTrace:
    """Append-only log of probe events (columnar storage for cheap slicing)."""

    def __init__(self) -> None:
        self._players: list[int] = []
        self._objects: list[int] = []
        self._values: list[int] = []
        self._charged: list[bool] = []

    # ------------------------------------------------------------------
    # recording (called by the oracle)
    # ------------------------------------------------------------------
    def record_batch(
        self,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        charged: np.ndarray,
    ) -> None:
        """Append a batch of probe events in order."""
        self._players.extend(int(p) for p in players)
        self._objects.extend(int(o) for o in objects)
        self._values.extend(int(v) for v in values)
        self._charged.extend(bool(c) for c in charged)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._players)

    def __getitem__(self, seq: int) -> ProbeEvent:
        return ProbeEvent(
            seq=seq if seq >= 0 else len(self) + seq,
            player=self._players[seq],
            obj=self._objects[seq],
            value=self._values[seq],
            charged=self._charged[seq],
        )

    def __iter__(self) -> Iterator[ProbeEvent]:
        for i in range(len(self)):
            yield self[i]

    def events_for_player(self, player: int) -> list[ProbeEvent]:
        """All events of one player, in order."""
        return [e for e in self if e.player == player]

    def charged_counts(self, n_players: int) -> np.ndarray:
        """Per-player charged-probe counts (must equal the oracle's stats)."""
        counts = np.zeros(n_players, dtype=np.int64)
        for p, c in zip(self._players, self._charged):
            if c:
                counts[p] += 1
        return counts

    def replay_mask(self, n_players: int, n_objects: int) -> np.ndarray:
        """Reconstruct the revealed-entry mask from the event log."""
        mask = np.zeros((n_players, n_objects), dtype=bool)
        if self._players:
            mask[np.asarray(self._players), np.asarray(self._objects)] = True
        return mask

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columnar dump (players, objects, values, charged)."""
        return {
            "players": np.asarray(self._players, dtype=np.intp),
            "objects": np.asarray(self._objects, dtype=np.intp),
            "values": np.asarray(self._values, dtype=np.int8),
            "charged": np.asarray(self._charged, dtype=bool),
        }

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"ProbeTrace(events={len(self)})"
