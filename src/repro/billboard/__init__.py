"""The paper's communication substrate: billboard + probe oracle.

The interactive model (Section 1) gives players exactly two capabilities:

1. **Probe** an object — learn their own hidden grade at unit cost
   (:class:`~repro.billboard.oracle.ProbeOracle`, which also enforces
   budgets and charges every invocation to the invoking player);
2. **Read/write the shared billboard** — all revealed grades and all
   posted output vectors are public
   (:class:`~repro.billboard.board.Billboard`).

All algorithm implementations communicate *only* through these objects,
so the simulated information flow matches the model.
"""

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.billboard.accounting import PhaseLedger, ProbeStats
from repro.billboard.exceptions import BudgetExceededError, ProbeError
from repro.billboard.postlog import PostLog, PostRecord, SharedBillboard
from repro.billboard.trace import ProbeEvent, ProbeTrace

__all__ = [
    "Billboard",
    "PostLog",
    "PostRecord",
    "ProbeOracle",
    "ProbeStats",
    "PhaseLedger",
    "BudgetExceededError",
    "ProbeError",
    "ProbeTrace",
    "ProbeEvent",
    "SharedBillboard",
]
