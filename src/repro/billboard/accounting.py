"""Probe-cost accounting.

The paper measures algorithms in *probing rounds*: computation proceeds in
parallel rounds, each player probing (at most) one object per round.  For
a population simulated in-process, the number of rounds a phase takes is
the **maximum per-player probe count** in that phase — players probe in
parallel, so the busiest player sets the clock.

:class:`ProbeStats` tracks per-player counts; :class:`PhaseLedger` slices
them per named algorithm phase so experiments can report where the budget
went (Zero Radius recursion vs Select calls vs the final stitch, etc.).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (oracle imports us)
    from repro.billboard.oracle import ProbeOracle

__all__ = ["ProbeStats", "PhaseLedger"]


@dataclass
class ProbeStats:
    """Immutable snapshot of probe counts.

    Attributes
    ----------
    per_player:
        ``(n,)`` array of probe counts.
    """

    per_player: np.ndarray

    @property
    def total(self) -> int:
        """Total probes across all players."""
        return int(self.per_player.sum())

    @property
    def rounds(self) -> int:
        """Parallel probing rounds = max per-player probes."""
        return int(self.per_player.max(initial=0))

    @property
    def mean(self) -> float:
        """Mean probes per player."""
        return float(self.per_player.mean()) if self.per_player.size else 0.0

    def __sub__(self, other: "ProbeStats") -> "ProbeStats":
        if self.per_player.shape != other.per_player.shape:
            raise ValueError("cannot subtract stats over different populations")
        return ProbeStats(self.per_player - other.per_player)

    def __add__(self, other: "ProbeStats") -> "ProbeStats":
        """Elementwise sum over the same population.

        The aggregation the parallel trial runner needs: per-trial
        deltas returned by workers add up to the sweep's combined
        per-player cost (each trial runs on its own oracle, so sums —
        not maxima — are the meaningful combination).
        """
        if self.per_player.shape != other.per_player.shape:
            raise ValueError("cannot add stats over different populations")
        return ProbeStats(self.per_player + other.per_player)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"ProbeStats(total={self.total}, rounds={self.rounds}, mean={self.mean:.1f})"


class PhaseLedger:
    """Attribution of probe counts to named algorithm phases.

    Usage::

        ledger.start("zero_radius", snapshot)
        ...
        ledger.finish("zero_radius", snapshot)

    or, exception-safe (the phase closes even if the body raises)::

        with ledger.phase("zero_radius", oracle):
            ...

    Repeated phases with the same name accumulate.
    """

    def __init__(self) -> None:
        self._open: dict[str, np.ndarray] = {}
        self._closed: dict[str, np.ndarray] = {}
        self._order: list[str] = []

    def start(self, phase: str, snapshot: ProbeStats) -> None:
        """Mark the start of *phase* with the current probe snapshot."""
        if phase in self._open:
            raise ValueError(f"phase {phase!r} is already open")
        self._open[phase] = snapshot.per_player.copy()

    def finish(self, phase: str, snapshot: ProbeStats) -> ProbeStats:
        """Close *phase*, returning (and accumulating) its probe delta."""
        if phase not in self._open:
            raise ValueError(f"phase {phase!r} was never started")
        delta = snapshot.per_player - self._open.pop(phase)
        if phase in self._closed:
            self._closed[phase] = self._closed[phase] + delta
        else:
            self._closed[phase] = delta
            self._order.append(phase)
        return ProbeStats(delta)

    @contextmanager
    def phase(self, name: str, oracle: "ProbeOracle") -> Iterator[None]:
        """Attribute all probes charged inside the block to phase *name*.

        Snapshots *oracle* on entry and exit; the phase is closed via
        ``finally``, so an exception in the body (a budget trip, a
        validation error) can never leak an open phase — the probes
        spent before the raise still land in the ledger.
        """
        self.start(name, oracle.stats())
        try:
            yield
        finally:
            self.finish(name, oracle.stats())

    def phases(self) -> Iterator[tuple[str, ProbeStats]]:
        """Iterate closed phases in first-start order."""
        for name in self._order:
            yield name, ProbeStats(self._closed[name])

    def get(self, phase: str) -> ProbeStats:
        """Accumulated stats for a closed *phase*."""
        if phase not in self._closed:
            raise KeyError(phase)
        return ProbeStats(self._closed[phase])

    def __contains__(self, phase: str) -> bool:
        return phase in self._closed
