"""The probe oracle: the only gate between algorithms and hidden preferences.

Every ``Probe`` invocation of the paper maps to :meth:`ProbeOracle.probe`
(scalar) or :meth:`ProbeOracle.probe_many` (vectorized batch — the HPC
guides' idiom of lifting the per-player loop into NumPy; semantically it
is still one probe per listed player, each individually charged).

Cost model fidelity:

* every invocation is charged to the invoking player, *including*
  re-probes of already-revealed entries — the paper's Select explicitly
  "disregards probes done before its execution", i.e. the upper bounds
  charge repeats, and so do we (set ``charge_repeats=False`` to model a
  cleverer client that reuses its own billboard posts);
* optional per-player budgets raise
  :class:`~repro.billboard.exceptions.BudgetExceededError`, used by the
  anytime experiments;
* results are mirrored onto the billboard, as the model requires
  ("probes one object, and writes the result on the billboard").

Storage: under the default packed substrate the hidden matrix lives
bit-packed (:class:`~repro.metrics.bitpack.BitMatrix`, 8× smaller than
``int8``) and probes answer by word-indexed bit extraction — observably
identical to the dense path, which :func:`repro.metrics.bitpack.dense_substrate`
restores for A/B runs (pinned by ``tests/test_substrate_equivalence.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro import obs
from repro.billboard.accounting import PhaseLedger, ProbeStats
from repro.billboard.board import Billboard
from repro.billboard.exceptions import BudgetExceededError, ProbeError
from repro.metrics import kernels
from repro.metrics.bitpack import BitMatrix, packed_substrate_enabled
from repro.model.instance import Instance
from repro.utils.validation import check_binary_matrix

if TYPE_CHECKING:  # observational layer; imported for annotations only
    from repro.billboard.trace import ProbeTrace

__all__ = ["ProbeOracle"]


class ProbeOracle:
    """Gatekeeper over a hidden preference matrix.

    Parameters
    ----------
    prefs:
        Hidden ``(n, m)`` 0/1 matrix, an :class:`~repro.model.Instance`,
        or an already-packed :class:`~repro.metrics.bitpack.BitMatrix`
        (e.g. a shared-memory attach) — a ``BitMatrix`` is adopted as-is,
        never densified.
    billboard:
        Billboard to mirror reveals onto; a fresh one is created if omitted.
    budget:
        Optional per-player probe cap.
    charge_repeats:
        Charge probes of already-revealed entries (paper-faithful default
        ``True``).
    """

    def __init__(
        self,
        prefs: np.ndarray | Instance | BitMatrix,
        *,
        billboard: Billboard | None = None,
        budget: int | None = None,
        charge_repeats: bool = True,
    ) -> None:
        if isinstance(prefs, Instance):
            prefs = prefs.prefs
        if isinstance(prefs, BitMatrix):
            self._prefs: BitMatrix | np.ndarray = prefs
        elif packed_substrate_enabled():
            self._prefs = BitMatrix(prefs, name="prefs")
        else:
            self._prefs = check_binary_matrix(prefs, "prefs")
        # The two storage modes, pre-narrowed for the probe hot paths:
        # exactly one of (_packed, _dense) is set.
        if isinstance(self._prefs, BitMatrix):
            self._packed: np.ndarray | None = self._prefs.packed
            self._dense: np.ndarray | None = None
        else:
            self._packed = None
            self._dense = self._prefs
        n, m = self._prefs.shape
        self.billboard = billboard if billboard is not None else Billboard(n, m)
        if (self.billboard.n_players, self.billboard.n_objects) != (n, m):
            raise ValueError("billboard shape does not match preference matrix")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.budget = budget
        self.charge_repeats = bool(charge_repeats)
        self._counts = np.zeros(n, dtype=np.int64)
        self._batches = 0
        self.ledger = PhaseLedger()
        self._trace: ProbeTrace | None = None

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        """Population size ``n``."""
        return self._prefs.shape[0]

    @property
    def n_objects(self) -> int:
        """Object count ``m``."""
        return self._prefs.shape[1]

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, player: int, obj: int) -> int:
        """Player *player* probes object *obj*; returns the 0/1 grade."""
        if not (0 <= player < self.n_players):
            raise ProbeError(f"player index {player} out of range [0, {self.n_players})")
        if not (0 <= obj < self.n_objects):
            raise ProbeError(f"object index {obj} out of range [0, {self.n_objects})")
        charged = self.charge_repeats or not self.billboard.is_revealed(player, obj)
        if charged:
            if self.budget is not None and self._counts[player] + 1 > self.budget:
                raise BudgetExceededError(player, self.budget)
            self._counts[player] += 1
        if self._dense is not None:
            value = int(self._dense[player, obj])
        else:
            assert self._packed is not None
            value = int(kernels.extract_bits(self._packed, np.asarray(player), np.asarray(obj)))
        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counters.incr(
                "oracle.probes_charged" if charged else "oracle.reprobes_uncharged"
            )
        self.billboard.post_grades(np.asarray([player]), np.asarray([obj]), np.asarray([value], dtype=np.int8))
        if self._trace is not None:
            self._trace.record_batch(
                np.asarray([player]), np.asarray([obj]),
                np.asarray([value]), np.asarray([charged]),
            )
        return value

    def probe_many(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Batch probe: ``players[i]`` probes ``objects[i]`` for all i.

        Each pair is charged exactly as under :meth:`probe`; duplicates in
        the batch are each charged (they are distinct probe actions).
        """
        players = np.asarray(players, dtype=np.intp)
        objects = np.asarray(objects, dtype=np.intp)
        if players.shape != objects.shape or players.ndim != 1:
            raise ProbeError(f"players/objects must be equal-length 1-D, got {players.shape} and {objects.shape}")
        if players.size == 0:
            return np.empty(0, dtype=np.int8)
        if players.min() < 0 or players.max() >= self.n_players:
            raise ProbeError("player index out of range in batch probe")
        if objects.min() < 0 or objects.max() >= self.n_objects:
            raise ProbeError("object index out of range in batch probe")

        # The fused path needs the billboard's grade sink up front: when
        # every probe is charged and no budget can trip mid-batch, the
        # accounting bincount folds into the same kernel pass.
        sink = self.billboard.grade_sink() if self._packed is not None else None
        fold_counts = self.charge_repeats and self.budget is None and sink is not None

        if self.charge_repeats:
            # Every listed pair is charged: skip materialising the mask
            # and the `players[charged]` gather entirely (the all-ones
            # boolean pass was a measurable share of the batch cost).
            charged: np.ndarray | None = None
            n_charged = players.size
            add = None if fold_counts else np.bincount(players, minlength=self.n_players)
        else:
            charged = ~self.billboard.is_revealed_many(players, objects)
            # Duplicates inside the batch: only the first reveal of an
            # unrevealed entry is free of a prior post, so charge the first
            # occurrence only (subsequent ones hit the just-posted entry).
            if charged.any():
                pair_ids = players * self.n_objects + objects
                _, first_idx = np.unique(pair_ids, return_index=True)
                first_mask = np.zeros(players.size, dtype=bool)
                first_mask[first_idx] = True
                charged &= first_mask
            n_charged = int(charged.sum())
            add = np.bincount(players[charged], minlength=self.n_players)

        if self.budget is not None:
            assert add is not None  # fold_counts requires budget is None
            new_counts = self._counts + add
            over = np.flatnonzero(new_counts > self.budget)
            if over.size:
                raise BudgetExceededError(int(over[0]), self.budget)
        if add is not None:
            self._counts += add
        self._batches += 1

        recorder = obs.get_recorder()
        if recorder is not None:
            recorder.counters.incr("oracle.probes_charged", n_charged)
            if n_charged < players.size:
                recorder.counters.incr("oracle.reprobes_uncharged", players.size - n_charged)
            recorder.counters.incr("oracle.probe_batches")

        if self._dense is not None:
            values = self._dense[players, objects]
            self.billboard.post_grades(players, objects, values)
        elif sink is not None:
            # Derived-mask billboard: extraction, posting, and (on the
            # all-charged unbudgeted path) accounting are one fused
            # kernel pass over the batch.
            assert self._packed is not None
            values = kernels.fused_extract_post(
                self._packed, sink, players, objects,
                self._counts if fold_counts else None,
            )
        else:
            assert self._packed is not None
            values = kernels.extract_bits(self._packed, players, objects)
            self.billboard.post_grades(players, objects, values)
        if self._trace is not None:
            if charged is None:
                charged = np.ones(players.size, dtype=bool)
            self._trace.record_batch(players, objects, values, charged)
        return values.astype(np.int8, copy=False)

    def probe_all(self, player: int, objects: np.ndarray) -> np.ndarray:
        """Player probes every object in *objects* (Zero Radius base case)."""
        objects = np.asarray(objects, dtype=np.intp)
        players = np.full(objects.shape, player, dtype=np.intp)
        return self.probe_many(players, objects)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> ProbeStats:
        """Snapshot of per-player probe counts."""
        return ProbeStats(self._counts.copy())

    @property
    def batch_count(self) -> int:
        """Number of :meth:`probe_many` batches issued so far.

        A probe-count-preserving diagnostic for the batched fast path:
        total charged probes are identical between the sequential and
        batched drivers, but the batched path amortises them over a few
        large batches (``total / batch_count`` is the mean batch width).
        """
        return self._batches

    def remaining(self, player: int) -> int | float:
        """Remaining budget of *player* (``inf`` when unbudgeted)."""
        if self.budget is None:
            return float("inf")
        return int(self.budget - self._counts[player])

    # ------------------------------------------------------------------
    # checkpoint / restore (service snapshots)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict[str, np.ndarray]:
        """Copies of the oracle's persistent state for service snapshots.

        Returns ``{"prefs": hidden matrix, "counts": per-player charged
        counts}`` — the sanctioned export for
        :mod:`repro.serve.snapshot`, so serving code never reaches into
        the hidden matrix itself.  The matrix is exported *dense* (the
        packed substrate unpacks here, at the boundary); the billboard
        is checkpointed separately via :meth:`Billboard.checkpoint`.
        """
        if isinstance(self._prefs, BitMatrix):
            return {"prefs": self._prefs.unpack(), "counts": self._counts.copy()}
        return {"prefs": self._prefs.copy(), "counts": self._counts.copy()}

    @classmethod
    def restore(
        cls,
        prefs: np.ndarray,
        counts: np.ndarray,
        *,
        billboard: Billboard | None = None,
        budget: int | None = None,
        charge_repeats: bool = True,
    ) -> "ProbeOracle":
        """Rebuild an oracle from :meth:`checkpoint` arrays, counts included."""
        oracle = cls(prefs, billboard=billboard, budget=budget, charge_repeats=charge_repeats)
        counts_arr = np.asarray(counts, dtype=np.int64)
        if counts_arr.shape != (oracle.n_players,):
            raise ValueError(
                f"counts must have shape ({oracle.n_players},), got {counts_arr.shape}"
            )
        if counts_arr.size and (int(counts_arr.min()) < 0 or (budget is not None and int(counts_arr.max()) > budget)):
            raise ValueError("restored counts are negative or exceed the budget")
        oracle._counts = counts_arr.copy()
        return oracle

    def attach_trace(self, trace: ProbeTrace) -> None:
        """Attach a :class:`~repro.billboard.trace.ProbeTrace` (observational)."""
        self._trace = trace

    def start_phase(self, name: str) -> None:
        """Open a named accounting phase (prefer :meth:`phase`)."""
        self.ledger.start(name, self.stats())

    def finish_phase(self, name: str) -> ProbeStats:
        """Close a named accounting phase, returning its probe delta."""
        return self.ledger.finish(name, self.stats())

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Exception-safe phase accounting, unified with run telemetry.

        One ``with oracle.phase("small_radius/final_select"):`` block
        both attributes the probes charged inside to the ledger phase
        *name* (exactly like a ``start_phase``/``finish_phase`` pair,
        but closed via ``finally`` so an exception cannot leak an open
        phase) *and* emits an :mod:`repro.obs` span of the same name —
        wall-clock timing plus probe deltas — when a recorder is active.
        """
        with obs.span(name, oracle=self):
            with self.ledger.phase(name, self):
                yield

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"ProbeOracle(n={self.n_players}, m={self.n_objects}, total_probes={int(self._counts.sum())})"
