"""Exceptions raised by the billboard/probe substrate."""

from __future__ import annotations

__all__ = ["ProbeError", "BudgetExceededError"]


class ProbeError(RuntimeError):
    """Base class for probe-substrate failures (bad indices, misuse)."""


class BudgetExceededError(ProbeError):
    """A player attempted to probe beyond its per-player budget.

    The paper's cost model charges one unit per probe; experiments that
    cap the probing budget (anytime curves, baseline comparisons at fixed
    budget) use this to stop an algorithm mid-flight.
    """

    def __init__(self, player: int, budget: int) -> None:
        self.player = int(player)
        self.budget = int(budget)
        super().__init__(f"player {player} exceeded probe budget of {budget}")
