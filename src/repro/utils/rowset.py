"""Fast row-set operations: unique rows, vote counting, plurality.

The voting steps of Zero/Small Radius and the Coalesce fallbacks all
reduce to one primitive — "deduplicate the rows of a small-int matrix
and count supporters" — which NumPy spells ``np.unique(axis=0)``.  That
spelling is the profiled hot spot of population-scale runs: it sorts
rows as full-width structured scalars, so each comparison touches every
byte of both rows (at ``n = m = 2048``, ~85% of a Small Radius trial's
wall-clock goes into these sorts).

:func:`unique_rows` is a drop-in replacement that first compresses each
row into a *lexicographic-order-preserving* byte key — ``np.packbits``
for 0/1 rows (8 entries per byte), an offset ``uint8`` cast for general
small-int rows — and deduplicates the keys instead.  The key order
equals the row order, so outputs (values, ordering, counts) are
bit-for-bit identical to ``np.unique(rows, axis=0)``; matrices whose
value range does not fit a byte fall back to NumPy's path unchanged.

Set :data:`FAST` to ``False`` (or use :func:`legacy_unique`) to force
the reference path — the benchmark suite uses this to measure the
pre-optimization baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.metrics.bitpack import unpack_rows

__all__ = [
    "unique_rows",
    "popular_rows",
    "popular_rows_packed",
    "plurality_row",
    "legacy_unique",
]

#: When False every call routes through ``np.unique(axis=0)`` (reference
#: path; toggled by benchmarks to measure the speedup).
FAST = True


@contextmanager
def legacy_unique() -> Iterator[None]:
    """Force the ``np.unique(axis=0)`` reference path within the block."""
    global FAST
    prev = FAST
    FAST = False
    try:
        yield
    finally:
        FAST = prev


def _order_preserving_keys(rows: np.ndarray) -> np.ndarray | None:
    """Compress rows to byte keys whose memcmp order equals row lex order.

    Returns ``None`` when no compact order-preserving encoding applies
    (value range wider than one byte).
    """
    lo = int(rows.min())
    hi = int(rows.max())
    if lo >= 0 and hi <= 1:
        # 0/1 rows: packbits is big-endian, so bit order == column order
        # and the zero-padded tail is shared by all rows.
        return np.packbits(rows.astype(np.uint8, copy=False), axis=1)
    if hi - lo <= 255:
        # Small-int rows (super-object indices, wildcard -1): a common
        # offset preserves all pairwise comparisons.
        return (rows - lo).astype(np.uint8)
    return None


def unique_rows(
    rows: np.ndarray, *, return_counts: bool = False
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Lexicographically sorted unique rows, exactly like ``np.unique(axis=0)``.

    Parameters
    ----------
    rows:
        2-D integer matrix.
    return_counts:
        Also return the per-row multiplicities (aligned with the output).
    """
    rows = np.ascontiguousarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    keys = None
    if FAST and rows.shape[0] > 1 and rows.shape[1] > 0:
        keys = _order_preserving_keys(rows)
    if keys is None:
        return np.unique(rows, axis=0, return_counts=return_counts)

    keys = np.ascontiguousarray(keys)
    void = keys.view(np.dtype((np.void, keys.shape[1]))).ravel()
    if return_counts:
        _, first, counts = np.unique(void, return_index=True, return_counts=True)
        return rows[first], counts
    _, first = np.unique(void, return_index=True)
    return rows[first]


def popular_rows(rows: np.ndarray, min_votes: int) -> np.ndarray:
    """Unique rows supported by at least *min_votes* voters.

    Off-nominal fallback (the paper's w.h.p. analysis excludes it): when
    no row reaches the threshold, the plurality rows stand — capped at
    ``|rows| // min_votes`` candidates (the same cap the threshold
    implies), so a degenerate all-distinct vote cannot explode the
    downstream ``Select`` probe cost.
    """
    uniq, counts = unique_rows(rows, return_counts=True)
    popular = uniq[counts >= min_votes]
    if popular.shape[0] == 0:
        cap = max(1, rows.shape[0] // max(min_votes, 1))
        order = np.argsort(-counts, kind="stable")
        popular = uniq[order[:cap]]
    return popular


def popular_rows_packed(packed: np.ndarray, m: int, min_votes: int) -> np.ndarray:
    """:func:`popular_rows` over rows that are already bit-packed.

    The packed bytes *are* the order-preserving keys the fast path of
    :func:`unique_rows` would compute for 0/1 rows, so the vote pipeline
    fed by :meth:`Billboard.read_first_rows_packed` dedups directly on
    them — no ``int16`` vote stack, no re-``packbits``.  Output
    (values, order, the off-nominal plurality fallback) is bit-identical
    to ``popular_rows(dense rows, min_votes)``; candidates come back
    dense ``int16``, exactly what the dense gather hands Select.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"packed rows must be 2-D, got shape {packed.shape}")
    if not FAST or packed.shape[0] <= 1 or packed.shape[1] == 0:
        # Reference path (and the degenerate shapes it already handles).
        return popular_rows(unpack_rows(packed, m, dtype=np.int16), min_votes)
    void = packed.view(np.dtype((np.void, packed.shape[1]))).ravel()
    _, first, counts = np.unique(void, return_index=True, return_counts=True)
    uniq = packed[first]
    popular = uniq[counts >= min_votes]
    if popular.shape[0] == 0:
        cap = max(1, packed.shape[0] // max(min_votes, 1))
        order = np.argsort(-counts, kind="stable")
        popular = uniq[order[:cap]]
    return unpack_rows(popular, m, dtype=np.int16)


def plurality_row(rows: np.ndarray) -> np.ndarray:
    """The single most-supported row as a 1-row matrix (ties: lex-first)."""
    uniq, counts = unique_rows(rows, return_counts=True)
    return uniq[counts == counts.max()][:1]
