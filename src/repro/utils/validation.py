"""Argument validation helpers.

All validators raise ``ValueError``/``TypeError`` with precise messages;
they are used at the public API boundary so that deep algorithm code can
assume well-formed inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_alpha",
    "check_binary_matrix",
    "check_fraction",
    "check_nonneg_int",
    "check_pos_int",
    "check_value_matrix",
]

#: Sentinel value used throughout the library for the paper's "?" (don't
#: care / wildcard) entries in vectors over ``{0, 1, ?}``.
WILDCARD = -1


def check_pos_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonneg_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive_low: bool = False) -> float:
    """Validate that *value* lies in ``(0, 1]`` (or ``[0, 1]`` if *inclusive_low*)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_alpha(alpha: float, n: int | None = None) -> float:
    """Validate a community-frequency parameter ``alpha in (0, 1]``.

    If *n* is given, additionally require ``alpha * n >= 1`` — an
    ``(alpha, D)``-typical set must contain at least one player.
    """
    alpha = check_fraction(alpha, "alpha")
    if n is not None and alpha * n < 1.0:
        raise ValueError(f"alpha={alpha} is too small for n={n}: alpha*n must be >= 1")
    return alpha


def check_binary_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate a 2-D 0/1 integer matrix; return it as a C-contiguous ``int8`` array."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 entries")
    return np.ascontiguousarray(arr, dtype=np.int8)


def check_value_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate a 2-D matrix over ``{0, 1, WILDCARD}``; return ``int8`` array.

    This is the representation of the paper's vectors over ``{0, 1, ?}``:
    the wildcard "?" is stored as :data:`WILDCARD` (= -1).
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size and not np.isin(arr, (0, 1, WILDCARD)).all():
        raise ValueError(f"{name} must contain only 0/1/{WILDCARD} entries")
    return np.ascontiguousarray(arr, dtype=np.int8)
