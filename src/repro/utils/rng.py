"""Deterministic random-number-generator plumbing.

Every public entry point of :mod:`repro` accepts either a seed or a
:class:`numpy.random.Generator`.  Internally we always normalise to a
``Generator`` via :func:`as_generator` and derive *independent* child
streams via :func:`spawn` / :func:`spawn_many` so that

* experiments are reproducible given a single integer seed, and
* sub-phases (e.g. the ``K`` iterations of Small Radius) consume
  independent randomness regardless of how much entropy earlier phases
  used.

The paper's algorithms assume *public coins* — random partitions that all
players observe identically.  Simulating the whole population in one
process makes this trivial: one ``Generator`` drawn per phase *is* the
public coin.
"""

from __future__ import annotations

import copy
from typing import Any, Mapping, Sequence, TypeAlias

import numpy as np

__all__ = ["RngLike", "as_generator", "as_seed", "from_state", "spawn", "spawn_many", "state_of"]

#: The uniform rng-parameter contract every public entry point accepts.
#: (Was previously a plain string constant, unusable in annotations;
#: a real ``TypeAlias`` type-checks under ``mypy --strict``.)
RngLike: TypeAlias = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(rng: int | np.random.Generator | np.random.SeedSequence | None) -> np.random.Generator:
    """Normalise *rng* to a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as a random generator")


def as_seed(rng: int | np.random.Generator | None) -> int:
    """Normalise *rng* to a plain integer seed.

    The inverse convenience of :func:`as_generator`, for call sites that
    must *record* the seed (report headers, telemetry metadata) or fan
    it out as an integer.  An integer passes through unchanged — callers
    that already hold a seed keep bit-for-bit compatible behaviour — a
    ``Generator`` (or ``None``) has one integer drawn from it.
    """
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return int(rng)
    return int(as_generator(rng).integers(0, 2**31 - 1))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one independent child generator from *rng*.

    Uses the generator's own bit stream to seed a child; successive calls
    yield independent streams.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)


def spawn_many(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *rng*."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds: Sequence[int] = rng.integers(0, 2**63 - 1, size=count).tolist()
    return [np.random.default_rng(int(s)) for s in seeds]


def state_of(rng: np.random.Generator) -> dict[str, Any]:
    """The JSON-serialisable bit-generator state of *rng*.

    The returned dict (a deep copy — later draws from *rng* do not
    mutate it) round-trips through :func:`from_state` to a generator
    that continues the *exact* stream, which is what service
    checkpointing needs: a restored run must consume the same coins the
    killed run would have.
    """
    state = copy.deepcopy(rng.bit_generator.state)
    return dict(state)


def from_state(state: Mapping[str, Any]) -> np.random.Generator:
    """Rebuild a :class:`numpy.random.Generator` from :func:`state_of` output.

    The ``"bit_generator"`` entry names the BitGenerator class
    (``"PCG64"`` for every generator this package constructs); an
    unknown name raises ``ValueError`` rather than silently resuming a
    different stream.
    """
    name = state.get("bit_generator")
    bit_gen_cls = getattr(np.random, str(name), None)
    if not isinstance(name, str) or bit_gen_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in rng state")
    bit_gen = bit_gen_cls()
    bit_gen.state = copy.deepcopy(dict(state))
    return np.random.Generator(bit_gen)
