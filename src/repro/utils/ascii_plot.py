"""Terminal series plots.

The E8 "figure" (stretch vs rounds) and the anytime examples want a
visual without a plotting dependency: :func:`line_plot` renders one or
more ``(x, y)`` series as a fixed-size ASCII grid with axis labels, and
:func:`sparkline` compresses one series into a single line of block
characters for table cells.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_plot", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character rendering of a series."""
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return ""
    lo, hi = float(vals.min()), float(vals.max())
    if hi == lo:
        return _BLOCKS[0] * vals.size
    idx = np.rint((vals - lo) / (hi - lo) * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[i] for i in idx)


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series on one ASCII grid.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Axes are linear; returns a multi-line string.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError(f"grid too small: {width}x{height}")
    pts = []
    for name, (xs, ys) in series.items():
        xs = np.asarray(list(xs), dtype=np.float64)
        ys = np.asarray(list(ys), dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1 or xs.size == 0:
            raise ValueError(f"series {name!r}: xs/ys must be equal-length non-empty 1-D")
        pts.append((name, xs, ys))

    all_x = np.concatenate([x for _, x, _ in pts])
    all_y = np.concatenate([y for _, _, y in pts])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, xs, ys) in enumerate(pts):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        cols = np.rint((xs - x_lo) / x_span * (width - 1)).astype(int)
        rows = np.rint((ys - y_lo) / y_span * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = []
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, (name, _, _) in enumerate(pts)
    )
    lines.append(f"{y_label} (top={y_hi:g}, bottom={y_lo:g})   {legend}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}")
    return "\n".join(lines)
