"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's theorems predict;
:class:`Table` gives those printouts one consistent, dependency-free look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table", "format_table"]


def _fmt_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(columns: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None) -> str:
    """Render *rows* under *columns* as an aligned monospace table.

    >>> print(format_table(["n", "ok"], [[1, True]]))
    n  ok
    -  ---
    1  yes
    """
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        if len(row) != len(columns):
            raise ValueError(f"row has {len(row)} cells, expected {len(columns)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulating experiment table.

    Rows are appended as mappings; column order is fixed by *columns* and
    missing cells render as ``-``.
    """

    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add(self, **cells: Any) -> None:
        """Append one row; unknown column names are rejected."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; table has {list(self.columns)}")
        self.rows.append(dict(cells))

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add(**dict(row))

    def column(self, name: str) -> list[Any]:
        """Return the values of column *name* across all rows."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Render the accumulated rows as an aligned text table."""
        body = [[row.get(c, "-") for c in self.columns] for row in self.rows]
        return format_table(self.columns, body, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
