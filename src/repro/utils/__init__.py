"""Shared low-level utilities: RNG management, validation, table formatting.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` may import them, and they import nothing from :mod:`repro`
except the bit-packed substrate primitives (:mod:`repro.metrics.bitpack`,
itself dependent only on :mod:`repro.utils.validation`), which
:mod:`repro.utils.rowset`'s packed vote-dedup path builds on.
"""

from repro.utils.rng import as_generator, spawn, spawn_many
from repro.utils.validation import (
    check_alpha,
    check_binary_matrix,
    check_fraction,
    check_nonneg_int,
    check_pos_int,
    check_value_matrix,
)
from repro.utils.tables import Table, format_table

__all__ = [
    "as_generator",
    "spawn",
    "spawn_many",
    "check_alpha",
    "check_binary_matrix",
    "check_fraction",
    "check_nonneg_int",
    "check_pos_int",
    "check_value_matrix",
    "Table",
    "format_table",
]
