"""The paper's quantitative bounds as evaluable functions.

Each function returns the *theorem's* bound (up to its stated constant,
which we expose as a parameter defaulting to the literal value when the
paper gives one).  Experiment tables print these next to measurements so
the reader can check shape agreement at a glance.
"""

from __future__ import annotations

import math

__all__ = [
    "select_probe_bound",
    "rselect_probe_bound",
    "zero_radius_round_bound",
    "small_radius_error_bound",
    "small_radius_round_bound",
    "coalesce_max_outputs",
    "coalesce_max_wildcards",
    "large_radius_error_bound",
    "large_radius_round_bound",
]


def select_probe_bound(k: int, D: int) -> int:
    """Theorem 3.2: Select probes at most ``k·(D + 1)`` coordinates.

    >>> select_probe_bound(4, 3)
    16
    """
    if k < 1 or D < 0:
        raise ValueError(f"need k >= 1 and D >= 0, got k={k}, D={D}")
    return k * (D + 1)


def rselect_probe_bound(k: int, n: int, c: float = 2.0) -> int:
    """Theorem 6.1: RSelect probes ``O(k² log n)`` coordinates.

    The exact count of the Fig. 7 procedure is at most
    ``C(k, 2) · ceil(c·log2 n)``.
    """
    if k < 1 or n < 1:
        raise ValueError(f"need k >= 1 and n >= 1, got k={k}, n={n}")
    pairs = k * (k - 1) // 2
    return pairs * max(1, math.ceil(c * math.log2(max(n, 2))))


def zero_radius_round_bound(n: int, alpha: float, c: float = 1.0) -> float:
    """Theorem 3.1: Zero Radius finishes in ``O(log n / α)`` probing rounds."""
    if n < 1 or not (0 < alpha <= 1):
        raise ValueError(f"need n >= 1 and alpha in (0,1], got n={n}, alpha={alpha}")
    return c * math.log(max(n, 2)) / alpha


def small_radius_error_bound(D: int, mult: float = 5.0) -> float:
    """Theorem 4.4: every community member's error is at most ``5D``."""
    if D < 0:
        raise ValueError(f"D must be non-negative, got {D}")
    return mult * D


def small_radius_round_bound(n: int, alpha: float, D: int, K: int, c: float = 1.0) -> float:
    """Theorem 4.4: probing rounds ``O(K · D^{3/2} · (D + log n) / α)``."""
    if n < 1 or not (0 < alpha <= 1) or D < 0 or K < 1:
        raise ValueError("invalid arguments")
    return c * K * (max(D, 1) ** 1.5) * (D + math.log(max(n, 2))) / alpha


def coalesce_max_outputs(alpha: float) -> int:
    """Theorem 5.3: Coalesce outputs at most ``1/α`` vectors.

    >>> coalesce_max_outputs(0.3)
    3
    """
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0,1], got {alpha}")
    return math.floor(1.0 / alpha)


def coalesce_max_wildcards(D: int, alpha: float) -> float:
    """Theorem 5.3: the community's representative has ≤ ``5D/α`` "?" entries."""
    if D < 0 or not (0 < alpha <= 1):
        raise ValueError("invalid arguments")
    return 5.0 * D / alpha


def large_radius_error_bound(D: int, alpha: float, c: float = 1.0) -> float:
    """Theorem 5.4: output error ``O(D/α)``."""
    if D < 0 or not (0 < alpha <= 1):
        raise ValueError("invalid arguments")
    return c * D / alpha


def large_radius_round_bound(n: int, alpha: float, c: float = 1.0) -> float:
    """Theorem 5.4: ``O(log^{7/2} n / α²)`` probes per player (``m = Θ(n)``)."""
    if n < 1 or not (0 < alpha <= 1):
        raise ValueError("invalid arguments")
    return c * math.log(max(n, 2)) ** 3.5 / alpha**2
