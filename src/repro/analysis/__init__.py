"""Closed-form theory predictions used to check measured shapes.

* :mod:`~repro.analysis.bounds` — the probe-complexity and error bounds
  of each theorem as evaluable functions (used by experiment tables to
  print "predicted" next to "measured").
* :mod:`~repro.analysis.lemma41` — the exact failure-probability bound of
  Lemma 4.1 and a Monte-Carlo estimator of the true success probability.
* :mod:`~repro.analysis.shapes` — log-log slope fitting helpers for
  verifying growth exponents ("cost grows like D^1.5", "like log n").
"""

from repro.analysis.bounds import (
    coalesce_max_outputs,
    coalesce_max_wildcards,
    large_radius_error_bound,
    rselect_probe_bound,
    select_probe_bound,
    small_radius_error_bound,
    small_radius_round_bound,
    zero_radius_round_bound,
)
from repro.analysis.lemma41 import lemma41_failure_bound, lemma41_min_parts, estimate_success_probability
from repro.analysis.shapes import fit_loglog_slope, fit_log_slope
from repro.analysis.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_two_sided,
    min_leaf_constant_for,
    zero_radius_vote_failure_bound,
)
from repro.analysis.cost_profile import CostSummary, load_imbalance, phase_breakdown, summarize

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "hoeffding_two_sided",
    "min_leaf_constant_for",
    "zero_radius_vote_failure_bound",
    "CostSummary",
    "summarize",
    "phase_breakdown",
    "load_imbalance",
    "select_probe_bound",
    "rselect_probe_bound",
    "zero_radius_round_bound",
    "small_radius_error_bound",
    "small_radius_round_bound",
    "coalesce_max_outputs",
    "coalesce_max_wildcards",
    "large_radius_error_bound",
    "lemma41_failure_bound",
    "lemma41_min_parts",
    "estimate_success_probability",
    "fit_loglog_slope",
    "fit_log_slope",
]
