"""Lemma 4.1: random partitions of low-diameter vector sets.

The lemma: let ``V`` be ``M`` binary vectors with pairwise distance
≤ ``d``, and partition the coordinates into ``s`` parts uniformly and
independently.  Call the partition *successful* if every part has a
``1/5``-fraction of ``V`` agreeing exactly on it.  Then

    Pr[not successful] ≤ (10³ · 5⁵ / 6!) · d³ / s²,

and in particular ``s ≥ 100·d^{3/2}`` forces failure probability < 1/2.

This module exposes the exact bound, the minimal ``s`` it prescribes,
and a Monte-Carlo estimator of the *true* success probability — the E3
experiment sweeps ``s/d^{3/2}`` and shows where success actually kicks
in (far earlier than the worst-case constant, which is the point of the
``sr_s_factor`` knob).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.partition import is_partition_successful, random_partition
from repro.utils.rng import as_generator

__all__ = ["lemma41_failure_bound", "lemma41_min_parts", "estimate_success_probability"]

#: The constant of the lemma's failure bound: 10³·5⁵ / 6!.
LEMMA41_CONSTANT = (10**3 * 5**5) / math.factorial(6)


def lemma41_failure_bound(d: int, s: int) -> float:
    """The lemma's upper bound on the failure probability (may exceed 1)."""
    if d < 0 or s < 1:
        raise ValueError(f"need d >= 0 and s >= 1, got d={d}, s={s}")
    return LEMMA41_CONSTANT * d**3 / s**2


def lemma41_min_parts(d: int) -> int:
    """The ``s ≥ 100·d^{3/2}`` prescription (≥ 1)."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    return max(1, math.ceil(100 * d**1.5))


def estimate_success_probability(
    vectors: np.ndarray,
    s: int,
    trials: int,
    *,
    frac: float = 0.2,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of ``Pr[partition into s parts is successful]``.

    Parameters
    ----------
    vectors:
        ``(M, L)`` 0/1 matrix with bounded pairwise distance.
    s:
        Number of parts.
    trials:
        Number of independent random partitions to draw.
    frac:
        Required agreeing fraction per part (lemma: 1/5).
    rng:
        Seed or generator.
    """
    vectors = np.asarray(vectors)
    if vectors.ndim != 2 or vectors.shape[0] == 0:
        raise ValueError(f"vectors must be a non-empty 2-D matrix, got shape {vectors.shape}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    gen = as_generator(rng)
    L = vectors.shape[1]
    hits = 0
    for _ in range(trials):
        labels = random_partition(L, s, gen)
        if is_partition_successful(vectors, labels, s, frac):
            hits += 1
    return hits / trials
