"""Probe-cost profiling.

Where did the budget go?  The paper's cost accounting is per-phase
(Zero Radius leaves vs Select calls vs the final stitch); this module
turns an oracle's :class:`~repro.billboard.accounting.PhaseLedger` and
per-player counts into the summaries the optimization workflow needs
(per the HPC guides: *no optimization without measuring*):

* :func:`summarize` — population statistics of one
  :class:`~repro.billboard.accounting.ProbeStats`;
* :func:`phase_breakdown` — a table of per-phase cost shares;
* :func:`load_imbalance` — max/mean probe ratio, the quantity that
  separates "parallel rounds" from "total work" in the round model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.billboard.accounting import ProbeStats
from repro.billboard.oracle import ProbeOracle
from repro.utils.tables import Table

__all__ = ["CostSummary", "summarize", "phase_breakdown", "load_imbalance"]


@dataclass(frozen=True)
class CostSummary:
    """Population-level probe statistics.

    Attributes
    ----------
    total, rounds, mean, median:
        Aggregate probe counts (rounds = max per player).
    p90:
        90th percentile of per-player probes.
    imbalance:
        ``rounds / mean`` — 1.0 means perfectly balanced load.
    """

    total: int
    rounds: int
    mean: float
    median: float
    p90: float
    imbalance: float


def summarize(stats: ProbeStats) -> CostSummary:
    """Summarise one probe-count snapshot."""
    per = stats.per_player
    if per.size == 0:
        return CostSummary(total=0, rounds=0, mean=0.0, median=0.0, p90=0.0, imbalance=1.0)
    mean = float(per.mean())
    return CostSummary(
        total=int(per.sum()),
        rounds=int(per.max()),
        mean=mean,
        median=float(np.median(per)),
        p90=float(np.percentile(per, 90)),
        imbalance=float(per.max() / mean) if mean > 0 else 1.0,
    )


def load_imbalance(stats: ProbeStats) -> float:
    """``max / mean`` per-player probes (1.0 = perfectly balanced)."""
    return summarize(stats).imbalance


def phase_breakdown(oracle: ProbeOracle) -> Table:
    """Render the oracle's closed phases as a cost-share table."""
    table = Table(
        title="Probe cost by phase",
        columns=["phase", "total", "rounds", "mean/player", "share"],
    )
    grand_total = max(oracle.stats().total, 1)
    for name, stats in oracle.ledger.phases():
        s = summarize(stats)
        table.add(
            phase=name,
            total=s.total,
            rounds=s.rounds,
            **{"mean/player": round(s.mean, 1)},
            share=f"{100 * s.total / grand_total:.0f}%",
        )
    return table
