"""Concentration bounds used throughout the paper's proofs.

Every "w.h.p." in the paper is a Chernoff bound (the proof of Theorem
3.1 cites [2, Appendix A]): a recursion level keeps enough community
members in each half, a vote threshold is met, a sampled majority
reflects the true majority.  This module provides those bounds as
evaluable functions so that

* the constants machinery can *predict* failure rates (e.g. how large
  ``zr_leaf_c`` must be for a target reliability — the analysis behind
  :meth:`repro.core.params.Params.robust`), and
* tests can check the simulator's empirical failure rates against them.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "hoeffding_two_sided",
    "zero_radius_vote_failure_bound",
    "min_leaf_constant_for",
]


def chernoff_lower_tail(mean: float, delta: float) -> float:
    """``Pr[X <= (1-δ)μ] <= exp(-δ²μ/2)`` for a sum of independent 0/1 variables."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if not (0 <= delta <= 1):
        raise ValueError(f"delta must be in [0, 1], got {delta}")
    return math.exp(-(delta**2) * mean / 2.0)


def chernoff_upper_tail(mean: float, delta: float) -> float:
    """``Pr[X >= (1+δ)μ] <= exp(-δ²μ/3)`` for ``0 < δ <= 1``."""
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if delta <= 1:
        return math.exp(-(delta**2) * mean / 3.0)
    return math.exp(-delta * mean / 3.0)


def hoeffding_two_sided(n: int, t: float) -> float:
    """``Pr[|X̄ - μ| >= t] <= 2 exp(-2nt²)`` for n bounded [0,1] samples.

    The bound behind RSelect's 2/3-majority game: ``n = c log n`` sampled
    coordinates estimate the agreement fraction within ``t`` w.h.p.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    return 2.0 * math.exp(-2.0 * n * t * t)


def zero_radius_vote_failure_bound(leaf_c: float, alpha: float, n: int, vote_frac: float = 0.5) -> float:
    """Per-vote failure bound of Zero Radius' halving recursion.

    At the deciding vote the voter half holds ``~ leaf_c·ln n/(2α)``
    players, of which ``μ = leaf_c·ln n/2`` are expected community
    members; the vote threshold is ``vote_frac·μ``.  Chernoff's lower
    tail with ``δ = 1 − vote_frac`` bounds the probability the community
    vector misses the cut.  (A union bound over the ``O(n/leaf)`` votes
    gives the whole-run failure rate.)
    """
    if leaf_c <= 0 or not (0 < alpha <= 1) or n < 2:
        raise ValueError("invalid arguments")
    if not (0 < vote_frac < 1):
        raise ValueError(f"vote_frac must be in (0,1), got {vote_frac}")
    mu = leaf_c * math.log(n) / 2.0
    return chernoff_lower_tail(mu, 1.0 - vote_frac)


def min_leaf_constant_for(target_failure: float, n: int, vote_frac: float = 0.5) -> float:
    """Smallest ``zr_leaf_c`` with per-vote failure below *target_failure*.

    Inverts :func:`zero_radius_vote_failure_bound`:
    ``exp(-(1-q)²·c·ln n/4) <= p  ⇔  c >= 4·ln(1/p)/((1-q)²·ln n)``.
    """
    if not (0 < target_failure < 1):
        raise ValueError(f"target_failure must be in (0,1), got {target_failure}")
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not (0 < vote_frac < 1):
        raise ValueError(f"vote_frac must be in (0,1), got {vote_frac}")
    return 4.0 * math.log(1.0 / target_failure) / ((1.0 - vote_frac) ** 2 * math.log(n))
