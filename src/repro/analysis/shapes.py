"""Curve-shape fitting for experiment tables.

The reproduction contract is about *shape*, not absolute constants:
"cost grows like ``D^{3/2}``" is a slope on log-log axes; "cost grows
like ``log n``" is a slope against ``log n``.  These helpers do the
least-squares fits the EXPERIMENTS.md tables report.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

ArrayLike = npt.ArrayLike

__all__ = ["fit_loglog_slope", "fit_log_slope"]


def _validate(xs: ArrayLike, ys: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1 or xs.size < 2:
        raise ValueError("need two equal-length 1-D arrays with at least 2 points")
    return xs, ys


def fit_loglog_slope(xs: ArrayLike, ys: ArrayLike) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    A power law ``y = c·x^p`` fits with slope ``p``; experiments compare
    the fitted exponent with the theorem's (e.g. 1.5 for Lemma 4.1's
    part count, 2 for the failure-probability decay in ``s``).
    """
    xs, ys = _validate(xs, ys)
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("log-log fit needs strictly positive data")
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def fit_log_slope(xs: ArrayLike, ys: ArrayLike) -> float:
    """Least-squares slope of ``y`` against ``log x``.

    ``y = a·log x + b`` fits with slope ``a``; used to check
    logarithmic cost growth (Theorem 3.1's round count in ``n``).
    """
    xs, ys = _validate(xs, ys)
    if (xs <= 0).any():
        raise ValueError("log fit needs strictly positive x data")
    return float(np.polyfit(np.log(xs), ys, 1)[0])
