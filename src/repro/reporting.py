"""One-shot reproduction reports.

Runs a set of experiments and assembles a single Markdown report —
claim, table, checks, and notes per experiment, plus a summary matrix —
the artifact a reproduction reviewer reads first.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import obs
from repro.experiments import REGISTRY, ExperimentResult, run_experiment
from repro.utils.rng import as_seed

__all__ = ["ReproductionReport", "build_report", "render_markdown"]


@dataclass
class ReproductionReport:
    """A bundle of experiment results destined for one document.

    Attributes
    ----------
    results:
        Experiment results in run order.
    quick:
        Whether the quick sweeps were used.
    seed:
        Base seed all experiments were run with.
    """

    results: list[ExperimentResult] = field(default_factory=list)
    quick: bool = True
    seed: int = 1

    @property
    def n_passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def all_passed(self) -> bool:
        return self.n_passed == len(self.results)


def _sort_key(eid: str) -> tuple[str, int]:
    return (eid[0], int(eid[1:]))


def build_report(
    experiments: Sequence[str] | None = None,
    *,
    quick: bool = True,
    seed: int | np.random.Generator | None = 1,
) -> ReproductionReport:
    """Run *experiments* (default: all registered) and collect the results.

    *seed* follows the uniform rng contract; a ``Generator`` (or
    ``None``) is resolved to one concrete integer up front so the report
    header and telemetry record the seed the experiments actually ran
    with.
    """
    seed = as_seed(seed)
    ids = sorted(REGISTRY, key=_sort_key) if experiments is None else list(experiments)
    unknown = [e for e in ids if e not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(REGISTRY)}")
    report = ReproductionReport(quick=quick, seed=seed)
    for eid in ids:
        report.results.append(run_experiment(eid, quick=quick, rng=seed))
    return report


def render_markdown(report: ReproductionReport) -> str:
    """Render the report as a standalone Markdown document."""
    mode = "quick" if report.quick else "full"
    lines = [
        "# Reproduction report — *Tell Me Who I Am* (SPAA 2006)",
        "",
        f"Sweep mode: **{mode}**, base seed {report.seed}. "
        f"Shape checks passed: **{report.n_passed}/{len(report.results)}**.",
        "",
        "| experiment | claim | status |",
        "|---|---|---|",
    ]
    for r in report.results:
        status = "PASS" if r.passed else "FAIL"
        lines.append(f"| {r.experiment} | {r.claim} | {status} |")
    lines.append("")
    for r in report.results:
        lines.append(f"## {r.experiment} — {r.claim}")
        lines.append("")
        lines.append("```")
        lines.append(r.table.render())
        lines.append("```")
        lines.append("")
        for name, ok in r.checks.items():
            lines.append(f"- {'✅' if ok else '❌'} {name}")
        if r.notes:
            lines.append(f"- notes: {r.notes}")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | Path,
    experiments: Sequence[str] | None = None,
    *,
    quick: bool = True,
    seed: int | np.random.Generator | None = 1,
    telemetry: str | Path | None = None,
) -> ReproductionReport:
    """Build a report and write its Markdown rendering to *path*.

    With *telemetry* set, the whole build is recorded through
    :mod:`repro.obs` (one span per experiment, from the harness) and the
    JSONL run log is archived at that path — conventionally
    ``<report>.telemetry.jsonl`` next to the Markdown, which is what the
    CLI's ``report --telemetry`` passes.
    """
    seed = as_seed(seed)
    if telemetry is not None:
        recorder = obs.Recorder(
            meta={"command": "report", "quick": quick, "seed": seed}
        )
        with obs.recording(recorder):
            report = build_report(experiments, quick=quick, seed=seed)
        recorder.dump_jsonl(telemetry)
    else:
        report = build_report(experiments, quick=quick, seed=seed)
    Path(path).write_text(render_markdown(report))
    return report
