"""Synthetic preference-matrix workloads.

The paper's model is adversarial — no generative assumptions — so the
evaluation needs families of matrices that span the spectrum:

* :mod:`~repro.workloads.planted` — worst-case-style matrices with a
  planted ``(α, D)``-typical set inside arbitrary background rows; the
  canonical input for every theorem experiment (E1, E4, E6, E8, E10).
* :mod:`~repro.workloads.mixtures` — low-rank "few canonical types"
  matrices (the generative assumption of the *non-interactive* line of
  work, Section 2); the friendly regime for the SVD baseline (E9).
* :mod:`~repro.workloads.adversarial` — high-rank matrices built to break
  spectral assumptions while still containing a typical set (E12).
* :mod:`~repro.workloads.noise` — entry-flip perturbations for
  robustness/failure-injection tests.
"""

from repro.workloads.planted import nested_instance, planted_instance
from repro.workloads.mixtures import mixture_instance
from repro.workloads.markov import markov_instance
from repro.workloads.adversarial import adversarial_instance, anti_spectral_instance
from repro.workloads.noise import flip_noise
from repro.workloads.sparse import sparse_likes_instance
from repro.workloads.dynamic import DynamicInstance, track_preferences

__all__ = [
    "planted_instance",
    "nested_instance",
    "mixture_instance",
    "markov_instance",
    "adversarial_instance",
    "anti_spectral_instance",
    "flip_noise",
    "sparse_likes_instance",
    "DynamicInstance",
    "track_preferences",
]
