"""Entry-flip noise injection.

Used by robustness tests: perturb an existing :class:`~repro.model.Instance`
by flipping each entry independently with probability *p*, re-measuring
planted community diameters afterwards (noise grows them by roughly
``2·p·m`` per pair).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = ["flip_noise"]


def flip_noise(
    instance: Instance,
    p: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> Instance:
    """Return a copy of *instance* with each entry flipped with probability *p*.

    Planted communities keep their membership; their diameters are
    re-measured on the noisy matrix so evaluation remains honest.
    """
    p = check_fraction(p, "p", inclusive_low=True)
    gen = as_generator(rng)
    flips = (gen.random(size=instance.prefs.shape) < p).astype(np.int8)
    noisy = np.bitwise_xor(instance.prefs, flips)
    communities = [
        Community(
            members=c.members,
            diameter=_diameter(noisy[c.members]),
            center=c.center,
            label=c.label,
        )
        for c in instance.communities
    ]
    return Instance(prefs=noisy, communities=communities, name=f"{instance.name}+noise({p:g})")
