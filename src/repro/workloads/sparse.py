"""Sparse-likes workloads for the good-object problem (extension X3).

The reference-[4] setting: players like few objects; a planted set
``P*`` of ``αn`` players shares one *common liked object*.  Finding any
liked object by blind probing costs ``~ m / (liked count)`` per player;
collaboration via posted recommendations cuts the community's total work
to ``O(m + n log |P*|)``.
"""

from __future__ import annotations

import numpy as np

from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_alpha, check_fraction, check_pos_int

__all__ = ["sparse_likes_instance"]


def sparse_likes_instance(
    n: int,
    m: int,
    alpha: float,
    like_prob: float,
    *,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> tuple[Instance, int]:
    """Build a sparse-likes matrix with a planted common liked object.

    Parameters
    ----------
    n, m:
        Players and objects.
    alpha:
        Fraction of players sharing the common liked object.
    like_prob:
        Independent per-entry like probability (sparsity; e.g. ``4/m``).
    rng:
        Seed or generator.

    Returns
    -------
    (instance, common_object):
        The instance (with the sharing set recorded as a community whose
        ``diameter`` is measured, though this workload is about a shared
        *object*, not a shared *vector*) and the common object's index.
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    alpha = check_alpha(alpha, n)
    like_prob = check_fraction(like_prob, "like_prob", inclusive_low=True)
    gen = as_generator(rng)

    prefs = (gen.random(size=(n, m)) < like_prob).astype(np.int8)
    common = int(gen.integers(0, m))
    members = np.sort(gen.permutation(n)[: int(np.ceil(alpha * n))])
    prefs[members, common] = 1

    from repro.metrics.hamming import diameter as _diameter

    community = Community(members=members, diameter=_diameter(prefs[members]), label="sharers")
    label = name or f"sparse_likes(n={n},m={m},alpha={alpha:g},p={like_prob:g})"
    return Instance(prefs=prefs, communities=[community], name=label), common
