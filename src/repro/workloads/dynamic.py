"""Time-varying preferences (the introduction's dynamic-environment setting).

"Various time-variable factors (such as noise, weather, mood) may create
diversity as a side effect" and "tracking dynamic environment by
unreliable sensors" both need preferences that *drift*: a
:class:`DynamicInstance` holds a base instance whose hidden matrix
mutates between *epochs* — each community's center takes a bounded
random walk (``drift`` flips per epoch), and members follow their
center (keeping the community's diameter bound intact).

:func:`track_preferences` is the natural tracking loop the model
suggests: re-run the main algorithm each epoch against the *current*
matrix.  Because the community diameter bound is preserved under the
drift, each epoch's run keeps the paper's guarantee; the cumulative cost
is one polylog run per epoch — the experiment X2 measures the quality/
cost trade-off against re-probing everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.core.result import RunResult
from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_nonneg_int, check_pos_int
from repro.workloads.planted import planted_instance

__all__ = ["DynamicInstance", "track_preferences"]


@dataclass
class DynamicInstance:
    """An instance whose hidden preferences drift between epochs.

    Attributes
    ----------
    instance:
        The *current* epoch's instance (communities re-measured).
    drift:
        Coordinate flips applied to each community center per epoch.
    epoch:
        Number of :meth:`step` calls so far.
    """

    instance: Instance
    drift: int
    rng: np.random.Generator = field(repr=False, default=None)
    epoch: int = 0

    @classmethod
    def planted(
        cls,
        n: int,
        m: int,
        alpha: float,
        D: int,
        drift: int,
        rng: int | np.random.Generator | None = None,
    ) -> "DynamicInstance":
        """Planted ``(α, D)`` community whose center drifts each epoch."""
        gen = as_generator(rng)
        inst = planted_instance(n, m, alpha, D, rng=spawn(gen))
        return cls(instance=inst, drift=check_nonneg_int(drift, "drift"), rng=gen)

    def step(self) -> Instance:
        """Advance one epoch: drift every community center, members follow.

        Each community center flips ``drift`` uniformly-chosen
        coordinates; every member row applies the *same* flips, so the
        intra-community diameter is exactly preserved while the target
        the players chase moves.  Outsider rows get independent flips of
        the same magnitude (the environment moves for everyone).
        """
        inst = self.instance
        n, m = inst.shape
        prefs = inst.prefs.copy()
        covered = np.zeros(n, dtype=bool)
        new_comms: list[Community] = []
        for c in inst.communities:
            flips = self.rng.choice(m, size=min(self.drift, m), replace=False)
            prefs[np.ix_(c.members, flips)] ^= 1
            covered[c.members] = True
            center = None
            if c.center is not None:
                center = c.center.copy()
                center[flips] ^= 1
            new_comms.append(
                Community(members=c.members, diameter=_diameter(prefs[c.members]),
                          center=center, label=c.label)
            )
        outsiders = np.flatnonzero(~covered)
        if outsiders.size and self.drift:
            for p in outsiders:
                flips = self.rng.choice(m, size=min(self.drift, m), replace=False)
                prefs[p, flips] ^= 1
        self.epoch += 1
        self.instance = Instance(prefs=prefs, communities=new_comms,
                                 name=f"{inst.name.split('@')[0]}@epoch{self.epoch}")
        return self.instance


def track_preferences(
    dynamic: DynamicInstance,
    alpha: float,
    D: int,
    epochs: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> list[tuple[Instance, RunResult]]:
    """Run the main algorithm once per epoch against the drifting matrix.

    Returns the per-epoch ``(instance, run_result)`` pairs; each epoch
    uses a *fresh* oracle (the environment changed, old grades are
    stale), so per-epoch costs are directly comparable.
    """
    check_pos_int(epochs, "epochs")
    gen = as_generator(rng)
    p = params or Params.practical()
    history: list[tuple[Instance, RunResult]] = []
    for _ in range(epochs):
        inst = dynamic.instance
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, alpha, D, params=p, rng=spawn(gen))
        history.append((inst, res))
        dynamic.step()
    return history
