"""The §2 probabilistic ("Markov chain") generative model.

Related work the paper cites (Kumar–Raghavan–Rajagopalan–Tomkins FOCS'98,
Kleinberg–Sandler EC'03) generates preferences stochastically: "users
randomly select their type, and each type is a probability distribution
over the objects".  This module realises the binary version:

* each of ``k`` types is a probability distribution over objects, built
  from a type-specific *core* of strongly-liked objects plus a Zipf tail
  over the rest (popular objects are shared across types — the realistic
  wrinkle that separates this model from clean mixtures);
* each player draws a type, then likes each object independently with
  its type's probability.

Unlike :func:`repro.workloads.mixtures.mixture_instance`, rows of one
type are *not* small perturbations of a common center — their expected
pairwise distance is governed by the Bernoulli variance, so type
communities have genuinely large diameters: the regime where the Fig. 1
dispatcher routes to Small/Large Radius.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_pos_int

__all__ = ["markov_instance"]


def markov_instance(
    n: int,
    m: int,
    k: int,
    *,
    core_size: int | None = None,
    core_like: float = 0.9,
    tail_like: float = 0.05,
    zipf_s: float = 1.0,
    weights: np.ndarray | list[float] | None = None,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """Build an ``n × m`` matrix from the §2 probabilistic type model.

    Parameters
    ----------
    n, m, k:
        Players, objects, types.
    core_size:
        Strongly-liked objects per type (default ``m // (2k)``).
    core_like:
        Like probability on a type's core objects.
    tail_like:
        Baseline like probability, modulated by a Zipf popularity curve
        shared across types (popular objects get up to 4× the baseline).
    zipf_s:
        Popularity decay exponent.
    weights:
        Type-selection distribution (uniform if omitted).
    rng:
        Seed or generator.

    Returns
    -------
    Instance
        One community per type with its *measured* (large) diameter.
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    k = check_pos_int(k, "k")
    core_like = check_fraction(core_like, "core_like")
    tail_like = check_fraction(tail_like, "tail_like", inclusive_low=True)
    if k > n:
        raise ValueError(f"cannot have more types ({k}) than players ({n})")
    if zipf_s < 0:
        raise ValueError(f"zipf_s must be non-negative, got {zipf_s}")
    core = m // (2 * k) if core_size is None else int(core_size)
    if not (0 <= core <= m):
        raise ValueError(f"core_size must be in [0, {m}], got {core}")
    gen = as_generator(rng)

    if weights is None:
        w = np.full(k, 1.0 / k)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (k,) or (w < 0).any() or w.sum() <= 0:
            raise ValueError(f"weights must be {k} non-negative values with positive sum")
        w = w / w.sum()

    # Shared popularity curve over a random object ordering.
    order = gen.permutation(m)
    ranks = np.empty(m, dtype=np.float64)
    ranks[order] = np.arange(1, m + 1)
    popularity = ranks ** (-zipf_s)
    popularity = popularity / popularity.max()  # in (0, 1]

    # Per-type like probabilities: tail modulated by popularity, core boosted.
    type_probs = np.empty((k, m), dtype=np.float64)
    cores = []
    for t in range(k):
        probs = np.clip(tail_like * (1.0 + 3.0 * popularity), 0.0, 1.0)
        core_objs = gen.choice(m, size=core, replace=False) if core else np.empty(0, dtype=np.intp)
        probs[core_objs] = core_like
        type_probs[t] = probs
        cores.append(np.sort(core_objs))

    assignment = gen.choice(k, size=n, p=w)
    for t in range(k):
        if not (assignment == t).any():
            assignment[gen.integers(0, n)] = t

    prefs = (gen.random((n, m)) < type_probs[assignment]).astype(np.int8)

    communities = []
    for t in range(k):
        members = np.flatnonzero(assignment == t)
        rows = prefs[members]
        center = (type_probs[t] >= 0.5).astype(np.int8)
        communities.append(
            Community(members=members, diameter=_diameter(rows), center=center, label=f"type-{t}")
        )

    label = name or f"markov(n={n},m={m},k={k},core={core})"
    return Instance(prefs=prefs, communities=communities, name=label)
