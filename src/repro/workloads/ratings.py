"""Adopting external rating data.

Downstream users usually start from a ratings matrix (stars, scores,
click counts) rather than 0/1 grades.  :func:`instance_from_ratings`
binarizes such a matrix into an :class:`~repro.model.Instance`
("like" = rating above a threshold, exactly the paper's binary-opinion
abstraction) and — since real data carries no planted ground truth —
optionally *discovers* communities to evaluate against by greedy
ball-covering on the binarized rows (the same `ball` notion Coalesce
uses).

Missing ratings must be imputed before entering the model (the paper's
players have an opinion about everything, known or not); the
``missing`` policy fills them with 0, 1, or the column majority.

Binarization runs through the chunked packed kernel
(:func:`repro.datasets.binarize.binarize_ratings_matrix` — the same
scatter path the streaming ETL uses), so the only full-size
intermediate is the packed matrix; the old dense binarizer survives as
:func:`_binarize_dense_reference`, kept solely as the bit-equality
reference its tests compare against.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datasets.binarize import binarize_ratings_matrix
from repro.metrics.bitpack import BitMatrix
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.validation import check_fraction, check_nonneg_int

__all__ = ["instance_from_ratings", "discover_communities"]


def _binarize_dense_reference(
    arr: np.ndarray,
    threshold: float,
    *,
    missing: str,
    missing_marker: float,
) -> np.ndarray:
    """The original dense binarizer — the equivalence *reference* only.

    Production callers go through the packed kernel; tests assert
    bit-equality between the two across every ``missing`` policy.
    """
    if np.isnan(missing_marker):
        known = ~np.isnan(arr)
    else:
        known = arr != missing_marker
    likes = np.zeros(arr.shape, dtype=np.int8)
    likes[known] = (arr[known] > threshold).astype(np.int8)

    if missing == "one":
        likes[~known] = 1
    elif missing == "majority":
        ones = (likes == 1) & known
        col_majority = ones.sum(axis=0) * 2 > np.maximum(known.sum(axis=0), 1)
        fill = np.broadcast_to(col_majority.astype(np.int8), arr.shape)
        likes = np.where(known, likes, fill).astype(np.int8)
    return likes


def instance_from_ratings(
    ratings: np.ndarray,
    threshold: float,
    *,
    missing: str = "zero",
    missing_marker: float = np.nan,
    discover: bool = False,
    discover_radius: int | None = None,
    min_frequency: float = 0.1,
    name: str = "ratings",
) -> Instance:
    """Binarize a ratings matrix into a model instance.

    Parameters
    ----------
    ratings:
        ``(n, m)`` float matrix; entries equal to *missing_marker*
        (NaN-aware) are treated as unknown.
    threshold:
        "Like" iff ``rating > threshold``.
    missing:
        Imputation for unknown entries: ``"zero"``, ``"one"``, or
        ``"majority"`` (per-column majority of known likes).
    discover, discover_radius, min_frequency:
        When *discover* is true, run :func:`discover_communities` on the
        binarized matrix and attach the result.
    """
    arr = np.asarray(ratings, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError(f"ratings must be a non-empty 2-D matrix, got shape {arr.shape}")
    if missing not in ("zero", "one", "majority"):
        raise ValueError(f"unknown missing policy {missing!r}")

    packed = binarize_ratings_matrix(
        arr, threshold, missing=missing, missing_marker=missing_marker
    )
    likes = packed.unpack()

    communities: list[Community] = []
    if discover:
        radius = discover_radius if discover_radius is not None else max(1, arr.shape[1] // 10)
        communities = discover_communities(packed, radius, min_frequency)
    return Instance(prefs=likes, communities=communities, name=name)


def discover_communities(
    prefs: np.ndarray | BitMatrix,
    radius: int,
    min_frequency: float = 0.1,
) -> list[Community]:
    """Greedy ball-cover community discovery on a 0/1 matrix.

    Repeatedly picks the player whose Hamming ball of *radius* covers
    the most uncovered players; every ball holding at least
    ``min_frequency · n`` players becomes a community.  This is an
    *evaluation* helper — it reads the full matrix, so algorithms must
    not call it; use it to estimate which ``(α, D)`` parameters a real
    dataset supports.

    Accepts the packed :class:`BitMatrix` directly (what ingested
    corpora hand over); distances come from the blocked packed
    ``pairwise_hamming`` kernel either way, so discovery never
    densifies anything beyond the ``n × n`` distance matrix itself.
    """
    radius = check_nonneg_int(radius, "radius")
    min_frequency = check_fraction(min_frequency, "min_frequency")
    bm = prefs if isinstance(prefs, BitMatrix) else BitMatrix(np.asarray(prefs))
    n = bm.shape[0]
    min_size = math.ceil(min_frequency * n)
    dist = bm.pairwise_hamming()
    within = dist <= radius

    uncovered = np.ones(n, dtype=bool)
    communities: list[Community] = []
    while uncovered.any():
        cover_counts = (within & uncovered[None, :]).sum(axis=1)
        cover_counts[~uncovered] = -1  # centers must be uncovered themselves
        center = int(np.argmax(cover_counts))
        members = np.flatnonzero(within[center] & uncovered)
        uncovered[members] = False
        if members.size >= min_size:
            communities.append(
                Community(
                    members=members,
                    diameter=int(dist[np.ix_(members, members)].max(initial=0)),
                    center=bm.row(center).astype(np.int8),
                    label=f"discovered-{len(communities)}",
                )
            )
        if cover_counts[center] <= 0:
            break
    return communities
