"""Adversarial (anti-spectral) workloads.

The paper's central claim is that its algorithms need *no structural
assumptions*: a single ``(α, D)``-typical set suffices, everything else
may be arbitrary.  These generators build matrices that

* contain a valid typical set (so Theorem 1.1 applies), yet
* have essentially full rank / no singular-value gap, so the
  SVD/low-rank assumption of the non-interactive literature (Section 2)
  fails — the regime for experiment E12.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_alpha, check_nonneg_int, check_pos_int
from repro.workloads.planted import _scatter_members

__all__ = ["adversarial_instance", "anti_spectral_instance"]


def adversarial_instance(
    n: int,
    m: int,
    alpha: float,
    D: int,
    *,
    decoys: int = 0,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """A typical set hidden among *decoy* near-communities.

    Plants one ``(α, D)`` community plus ``decoys`` smaller clusters whose
    sizes fall *just below* the ``αn/5`` popularity threshold the
    algorithms vote with, and fills the rest with unique random rows.
    Stress-tests the voting steps: decoy clusters produce popular-looking
    vectors without the mass to be adopted.
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    D = check_nonneg_int(D, "D")
    alpha = check_alpha(alpha, n)
    decoys = check_nonneg_int(decoys, "decoys")
    gen = as_generator(rng)

    size = int(np.ceil(alpha * n))
    decoy_size = max(1, int(np.floor(alpha * n / 5)) - 1)
    if size + decoys * decoy_size > n:
        raise ValueError(
            f"population n={n} too small for community of {size} plus {decoys} decoys of {decoy_size}"
        )

    perm = gen.permutation(n)
    prefs = gen.integers(0, 2, size=(n, m), dtype=np.int8)

    members = np.sort(perm[:size])
    center = gen.integers(0, 2, size=m, dtype=np.int8)
    rows = _scatter_members(center, size, D // 2, gen)
    prefs[members] = rows
    communities = [Community(members=members, diameter=_diameter(rows), center=center, label="community-0")]

    cursor = size
    for d in range(decoys):
        idx = np.sort(perm[cursor : cursor + decoy_size])
        cursor += decoy_size
        decoy_center = gen.integers(0, 2, size=m, dtype=np.int8)
        decoy_rows = _scatter_members(decoy_center, idx.size, D // 2, gen)
        prefs[idx] = decoy_rows
        communities.append(
            Community(members=idx, diameter=_diameter(decoy_rows), center=decoy_center, label=f"decoy-{d}")
        )

    label = name or f"adversarial(n={n},m={m},alpha={alpha:g},D={D},decoys={decoys})"
    return Instance(prefs=prefs, communities=communities, name=label)


def anti_spectral_instance(
    n: int,
    m: int,
    alpha: float,
    D: int,
    *,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """A typical set drowned in full-rank structure.

    The ``(1-α)n`` outsiders get mutually-far random rows *scaled to carry
    most of the matrix energy*: each outsider row is unique uniform noise,
    which makes the singular values of the (centered) matrix decay slowly
    — there is no rank-``k`` gap for any small ``k``, violating the
    SVD-method precondition while the planted community keeps the paper's
    precondition intact.
    """
    inst = adversarial_instance(n, m, alpha, D, decoys=0, rng=rng, name=name)
    if name is None:
        inst.name = f"anti_spectral(n={n},m={m},alpha={alpha:g},D={D})"
    return inst
