"""Low-rank "canonical types" workloads.

Section 2 of the paper describes the generative assumption behind the
*non-interactive* literature: "there are a few (say, constant) canonical
preference vectors such that most user preference vectors are linear
combinations of the canonical vectors", with probes perturbed by noise.
:func:`mixture_instance` realises the binary version used by the
Kumar et al. / Drineas et al. line: each player draws a *type* from a
distribution over ``k`` canonical vectors and flips each coordinate
independently with probability ``noise``.

This is the friendly regime for the SVD baseline — experiment E9 uses it
to show the spectral method working, and E12 contrasts it with
:mod:`~repro.workloads.adversarial` inputs where it breaks while the
paper's algorithms keep their guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_pos_int

__all__ = ["mixture_instance"]


def mixture_instance(
    n: int,
    m: int,
    k: int,
    *,
    noise: float = 0.0,
    weights: np.ndarray | list[float] | None = None,
    min_type_distance: int | None = None,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """Build an ``n × m`` matrix of ``k`` noisy canonical types.

    Parameters
    ----------
    n, m, k:
        Players, objects, and number of canonical type vectors.
    noise:
        Per-entry flip probability applied to each player's type vector.
    weights:
        Type-selection distribution (uniform if omitted).
    min_type_distance:
        If given, resample canonical vectors until all pairwise distances
        are at least this (keeps types distinguishable; the paper's SVD
        discussion requires near-orthogonal types).  Defaults to ``m//4``.
    rng:
        Seed or generator.

    Returns
    -------
    Instance
        One community per type (members = players of that type, diameter
        measured after noise).
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    k = check_pos_int(k, "k")
    noise = check_fraction(noise, "noise", inclusive_low=True)
    if k > n:
        raise ValueError(f"cannot have more types ({k}) than players ({n})")
    gen = as_generator(rng)

    if weights is None:
        w = np.full(k, 1.0 / k)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (k,) or (w < 0).any() or w.sum() <= 0:
            raise ValueError(f"weights must be {k} non-negative values with positive sum")
        w = w / w.sum()

    target_sep = (m // 4) if min_type_distance is None else int(min_type_distance)
    if target_sep > m:
        raise ValueError(f"min_type_distance={target_sep} exceeds m={m}")
    for _attempt in range(200):
        types = gen.integers(0, 2, size=(k, m), dtype=np.int8)
        if k == 1:
            break
        from repro.metrics.hamming import pairwise_hamming

        d = pairwise_hamming(types)
        off = d[~np.eye(k, dtype=bool)]
        if off.size == 0 or off.min() >= target_sep:
            break
    else:
        raise RuntimeError(f"could not sample {k} types at pairwise distance >= {target_sep} over m={m}")

    assignment = gen.choice(k, size=n, p=w)
    # Ensure every type is inhabited so the per-type communities are valid.
    for t in range(k):
        if not (assignment == t).any():
            assignment[gen.integers(0, n)] = t

    prefs = types[assignment].copy()
    if noise > 0:
        flips = gen.random(size=(n, m)) < noise
        prefs = np.bitwise_xor(prefs, flips.astype(np.int8))

    communities = []
    for t in range(k):
        members = np.flatnonzero(assignment == t)
        rows = prefs[members]
        communities.append(
            Community(members=members, diameter=_diameter(rows), center=types[t], label=f"type-{t}")
        )

    label = name or f"mixture(n={n},m={m},k={k},noise={noise:g})"
    return Instance(prefs=prefs, communities=communities, name=label)
