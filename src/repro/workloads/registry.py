"""Named workload registry (CLI and experiment convenience).

Maps short names to instance factories with a uniform signature::

    factory(n, m, alpha, D, rng) -> Instance

so callers (the CLI's ``demo --workload``, parameter sweeps) can switch
matrix families without plumbing each generator's own signature.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.model.instance import Instance
from repro.utils.rng import RngLike
from repro.workloads.adversarial import adversarial_instance, anti_spectral_instance
from repro.workloads.markov import markov_instance
from repro.workloads.mixtures import mixture_instance
from repro.workloads.planted import planted_instance

__all__ = ["WORKLOADS", "make_instance"]


def _planted(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    return planted_instance(n, m, alpha, D, rng=rng)


def _planted_unique(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    return planted_instance(n, m, alpha, D, background="unique", rng=rng)


def _mixture(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    # alpha fixes the number of (equal-weight) types; D maps to noise.
    k = max(1, round(1.0 / alpha))
    noise = min(0.5, D / (2.0 * m)) if m else 0.0
    return mixture_instance(n, m, k, noise=noise, rng=rng)


def _adversarial(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    return adversarial_instance(n, m, alpha, D, decoys=2, rng=rng)


def _anti_spectral(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    return anti_spectral_instance(n, m, alpha, D, rng=rng)


def _markov(n: int, m: int, alpha: float, D: int, rng: RngLike) -> Instance:
    # alpha fixes the number of (equal-weight) types, as for "mixture".
    k = max(1, round(1.0 / alpha))
    return markov_instance(n, m, k, rng=rng)


#: name -> factory(n, m, alpha, D, rng) -> Instance
WORKLOADS: dict[str, Callable[..., Instance]] = {
    "planted": _planted,
    "planted-unique": _planted_unique,
    "mixture": _mixture,
    "adversarial": _adversarial,
    "anti-spectral": _anti_spectral,
    "markov": _markov,
}


def make_instance(
    workload: str,
    n: int,
    m: int,
    alpha: float,
    D: int,
    rng: int | np.random.Generator | None = None,
) -> Instance:
    """Build an instance from a registered workload name."""
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[workload](n, m, alpha, D, rng)
