"""Planted ``(α, D)``-typical-set workloads.

The canonical experimental input: ``⌈αn⌉`` players share a community —
each member's preference vector is the community *center* with at most
``⌊D/2⌋`` uniformly-chosen coordinate flips, which guarantees pairwise
Hamming distance (hence diameter) at most ``D`` by the triangle
inequality.  The remaining players get arbitrary (uniform random) rows,
matching the paper's "no assumptions on user preferences" for everyone
outside ``P*``.

Multiple disjoint communities can be planted (each gets its own center);
:func:`nested_instance` plants *concentric* communities of growing radius
around one center, the structure behind the anytime experiment (E8): the
probing budget determines which ring a player can leverage.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.validation import check_alpha, check_nonneg_int, check_pos_int

__all__ = ["planted_instance", "nested_instance"]


def _scatter_members(center: np.ndarray, count: int, max_flips: int, rng: np.random.Generator) -> np.ndarray:
    """Rows = *center* with <= max_flips random coordinate flips each."""
    m = center.shape[0]
    rows = np.tile(center, (count, 1))
    if max_flips > 0 and m > 0:
        n_flips = rng.integers(0, max_flips + 1, size=count)
        for i in range(count):
            k = int(n_flips[i])
            if k:
                coords = rng.choice(m, size=k, replace=False)
                rows[i, coords] ^= 1
    return rows


def planted_instance(
    n: int,
    m: int,
    alpha: float,
    D: int,
    *,
    n_communities: int = 1,
    background: str = "uniform",
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """Build an ``n × m`` instance with planted ``(α, D)`` communities.

    Parameters
    ----------
    n, m:
        Players and objects.
    alpha:
        Frequency of *each* planted community (``n_communities * alpha <= 1``).
    D:
        Target diameter; member rows are the center with at most ``⌊D/2⌋``
        flips, so the measured diameter is ``<= D`` (recorded exactly in
        the returned communities).
    n_communities:
        Number of disjoint planted communities.
    background:
        ``"uniform"`` — iid Bernoulli(1/2) rows for non-members;
        ``"unique"`` — rows at maximal mutual distance from each other
        (random but forced to differ from all centers on half the
        coordinates), a harsher regime for vote-based steps.
    rng:
        Seed or generator.
    name:
        Instance label (auto-generated if omitted).

    Returns
    -------
    Instance
        With one :class:`~repro.model.Community` per planted set, whose
        ``diameter`` is the *measured* diameter of the planted rows.
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    D = check_nonneg_int(D, "D")
    alpha = check_alpha(alpha, n)
    n_communities = check_pos_int(n_communities, "n_communities")
    if n_communities * alpha > 1.0 + 1e-9:
        raise ValueError(f"{n_communities} communities of frequency {alpha} exceed the population")
    if background not in ("uniform", "unique"):
        raise ValueError(f"unknown background {background!r}")
    gen = as_generator(rng)

    size = int(np.ceil(alpha * n))
    total_members = size * n_communities
    if total_members > n:
        raise ValueError(f"communities need {total_members} players but n={n}")

    perm = gen.permutation(n)
    prefs = np.zeros((n, m), dtype=np.int8)
    communities: list[Community] = []
    cursor = 0
    max_flips = D // 2
    for c in range(n_communities):
        members = np.sort(perm[cursor : cursor + size])
        cursor += size
        center = gen.integers(0, 2, size=m, dtype=np.int8)
        rows = _scatter_members(center, size, max_flips, gen)
        prefs[members] = rows
        communities.append(
            Community(members=members, diameter=_diameter(rows), center=center, label=f"community-{c}")
        )

    outsiders = perm[cursor:]
    if outsiders.size:
        if background == "uniform":
            prefs[outsiders] = gen.integers(0, 2, size=(outsiders.size, m), dtype=np.int8)
        else:  # unique: flip each center coordinate with prob 1/2 independently per row
            base = communities[0].center if communities else np.zeros(m, dtype=np.int8)
            flips = gen.integers(0, 2, size=(outsiders.size, m), dtype=np.int8)
            prefs[outsiders] = np.bitwise_xor(base, flips)

    label = name or f"planted(n={n},m={m},alpha={alpha:g},D={D},k={n_communities})"
    return Instance(prefs=prefs, communities=communities, name=label)


def nested_instance(
    n: int,
    m: int,
    radii: list[int] | tuple[int, ...],
    fractions: list[float] | tuple[float, ...],
    *,
    rng: int | np.random.Generator | None = None,
    name: str | None = None,
) -> Instance:
    """Concentric communities around one center (anytime-curve workload).

    ``fractions[i]`` of the players sit within radius ``radii[i]`` of a
    common center, with radii strictly increasing and fractions strictly
    increasing (outer rings contain inner rings).  The returned instance
    has one community per ring, so experiments can score the trade-off
    the paper describes: "the larger the community … the larger the
    error" vs "the more leverage".
    """
    n = check_pos_int(n, "n")
    m = check_pos_int(m, "m")
    if len(radii) != len(fractions) or not radii:
        raise ValueError("radii and fractions must be equal-length and non-empty")
    if list(radii) != sorted(set(int(r) for r in radii)):
        raise ValueError(f"radii must be strictly increasing, got {radii}")
    fr = [check_alpha(f, n) for f in fractions]
    if fr != sorted(set(fr)):
        raise ValueError(f"fractions must be strictly increasing, got {fractions}")
    gen = as_generator(rng)

    center = gen.integers(0, 2, size=m, dtype=np.int8)
    perm = gen.permutation(n)
    prefs = gen.integers(0, 2, size=(n, m), dtype=np.int8)  # outsiders default

    sizes = [int(np.ceil(f * n)) for f in fr]
    communities: list[Community] = []
    # Fill from the outermost ring inwards so that inner (tighter) rows
    # overwrite outer ones, producing genuinely nested communities.
    for ring in range(len(sizes) - 1, -1, -1):
        members = perm[: sizes[ring]]
        max_flips = int(radii[ring]) // 2
        prefs[members] = _scatter_members(center, members.size, max_flips, gen)
    for ring, size in enumerate(sizes):
        members = np.sort(perm[:size])
        rows = prefs[members]
        communities.append(
            Community(members=members, diameter=_diameter(rows), center=center, label=f"ring-{ring}")
        )

    label = name or f"nested(n={n},m={m},radii={list(radii)})"
    return Instance(prefs=prefs, communities=communities, name=label)
