"""The packed columnar dataset store: ``.npz`` shards + a manifest commit.

Layout of one ingested dataset directory::

    <dir>/
      shard-0000.npz   # kind="dataset-shard": packed rows [start, start+rows)
      shard-0001.npz
      ...
      vocab.npz        # kind="dataset-vocab": raw user/item id arrays
      packed.npy       # optional consolidated packed mirror (mmap-attachable)
      manifest.json    # written LAST (tmp + atomic rename) — the commit point

The commit protocol follows the io v4 snapshot conventions
(:mod:`repro.serve.snapshot`): every byte of shard/vocab/mirror data is
on disk *before* ``manifest.json`` appears, so a crash mid-ingest leaves
a directory without a manifest — which :meth:`DatasetStore.open`
rejects — and stray shard files a dead writer left behind are ignored
because readers only ever touch files the manifest lists.

Reading is as streaming as writing: :meth:`DatasetStore.iter_blocks`
yields one packed shard at a time, :meth:`DatasetStore.bitmatrix`
assembles the packed matrix (``n × ceil(m/8)`` bytes — never dense), and
``mmap=True`` attaches the consolidated ``packed.npy`` mirror read-only
without loading it at all.  Dense materialisation exists only behind
:meth:`DatasetStore.instance` / :meth:`DatasetStore.sample`, the
evaluation-side escape hatches.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.io import FORMAT_VERSION, check_format_version
from repro.metrics.bitpack import BitMatrix, packed_width
from repro.model.community import Community
from repro.model.instance import Instance

__all__ = [
    "DATASET_KIND",
    "MANIFEST_NAME",
    "SHARD_KIND",
    "VOCAB_KIND",
    "DatasetStore",
    "DatasetWriter",
]

#: ``kind`` discriminators, mirroring the io conventions.
DATASET_KIND = "dataset"
SHARD_KIND = "dataset-shard"
VOCAB_KIND = "dataset-vocab"

#: The commit point: a directory without this file is not a dataset.
MANIFEST_NAME = "manifest.json"

_MIRROR_NAME = "packed.npy"
_VOCAB_NAME = "vocab.npz"


def _meta_bytes(meta: dict[str, Any]) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)


class DatasetWriter:
    """Writes one dataset directory shard-by-shard, manifest last.

    Shapes are fixed at construction (the ingest scan pass knows ``n``
    and ``m`` before any shard is packed); shards must arrive in order
    and cover ``[0, n)`` exactly or :meth:`commit` refuses.
    """

    def __init__(
        self,
        out_dir: str | Path,
        *,
        n: int,
        m: int,
        name: str = "dataset",
        source: dict[str, Any] | None = None,
        mmap_mirror: bool = True,
    ) -> None:
        if n < 1 or m < 1:
            raise ValueError(f"dataset shape must be positive, got ({n}, {m})")
        self.out_dir = Path(out_dir)
        if (self.out_dir / MANIFEST_NAME).exists():
            raise ValueError(f"{self.out_dir} already holds a committed dataset")
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.n = int(n)
        self.m = int(m)
        self.name = name
        self.source = dict(source) if source is not None else {}
        self._shards: list[dict[str, Any]] = []
        self._next_row = 0
        self._vocab_file: str | None = None
        self._mirror: np.ndarray | None = None
        self._mirror_file: str | None = None
        if mmap_mirror:
            self._mirror_file = _MIRROR_NAME
            self._mirror = np.lib.format.open_memmap(
                self.out_dir / _MIRROR_NAME,
                mode="w+",
                dtype=np.uint8,
                shape=(self.n, packed_width(self.m)),
            )

    def write_shard(self, packed_block: np.ndarray) -> Path:
        """Append the next shard's packed rows; returns the shard path."""
        packed_block = np.ascontiguousarray(packed_block, dtype=np.uint8)
        if packed_block.ndim != 2 or packed_block.shape[1] != packed_width(self.m):
            raise ValueError(
                f"shard must be (rows, {packed_width(self.m)}) packed bytes, "
                f"got shape {packed_block.shape}"
            )
        start = self._next_row
        rows = int(packed_block.shape[0])
        if start + rows > self.n:
            raise ValueError(f"shard [{start}, {start + rows}) overruns n={self.n}")
        index = len(self._shards)
        filename = f"shard-{index:04d}.npz"
        meta = {
            "version": FORMAT_VERSION,
            "kind": SHARD_KIND,
            "start": start,
            "rows": rows,
            "m": self.m,
        }
        np.savez_compressed(
            self.out_dir / filename, packed=packed_block, meta_json=_meta_bytes(meta)
        )
        if self._mirror is not None:
            self._mirror[start : start + rows] = packed_block
        self._shards.append({"file": filename, "start": start, "rows": rows})
        self._next_row = start + rows
        return self.out_dir / filename

    def write_vocab(self, user_ids: np.ndarray, item_ids: np.ndarray) -> Path:
        """Archive the raw-id vocabularies (row ``i`` ↔ ``user_ids[i]``)."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if user_ids.shape != (self.n,) or item_ids.shape != (self.m,):
            raise ValueError(
                f"vocab must be ({self.n},) users and ({self.m},) items, "
                f"got {user_ids.shape} and {item_ids.shape}"
            )
        meta = {"version": FORMAT_VERSION, "kind": VOCAB_KIND}
        np.savez_compressed(
            self.out_dir / _VOCAB_NAME,
            user_ids=user_ids,
            item_ids=item_ids,
            meta_json=_meta_bytes(meta),
        )
        self._vocab_file = _VOCAB_NAME
        return self.out_dir / _VOCAB_NAME

    def commit(self, stats: dict[str, Any] | None = None) -> Path:
        """Flush everything and write ``manifest.json`` (the commit point)."""
        if self._next_row != self.n:
            raise ValueError(
                f"shards cover [0, {self._next_row}) but n={self.n}; refusing to commit"
            )
        if self._mirror is not None:
            self._mirror.flush()
            self._mirror = None
        manifest = {
            "version": FORMAT_VERSION,
            "kind": DATASET_KIND,
            "name": self.name,
            "n": self.n,
            "m": self.m,
            "shards": self._shards,
            "vocab": self._vocab_file,
            "packed_mirror": self._mirror_file,
            "source": self.source,
            "stats": dict(stats) if stats is not None else {},
        }
        tmp = self.out_dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        final = self.out_dir / MANIFEST_NAME
        os.replace(tmp, final)
        return final

    def abort(self) -> None:
        """Remove every file this (uncommitted) writer produced."""
        if (self.out_dir / MANIFEST_NAME).exists():
            raise ValueError("refusing to abort a committed dataset")
        self._mirror = None
        shutil.rmtree(self.out_dir, ignore_errors=True)


class DatasetStore:
    """Read side of a committed dataset directory (see module doc)."""

    def __init__(self, path: str | Path, manifest: dict[str, Any]) -> None:
        self.path = Path(path)
        self.manifest = manifest

    @classmethod
    def open(cls, path: str | Path) -> "DatasetStore":
        """Open a committed dataset; a missing manifest is a hard error."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(
                f"{path} is not a dataset: no {MANIFEST_NAME} "
                "(crashed or still-running ingest leaves none — re-ingest)"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        check_format_version(manifest, manifest_path)
        if manifest.get("kind") != DATASET_KIND:
            raise ValueError(
                f"{manifest_path} is not a dataset manifest (kind={manifest.get('kind')!r})"
            )
        return cls(path, manifest)

    # ------------------------------------------------------------------
    # shape / metadata
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Players (rows)."""
        return int(self.manifest["n"])

    @property
    def m(self) -> int:
        """Objects (columns)."""
        return int(self.manifest["m"])

    @property
    def name(self) -> str:
        """Dataset label from ingest."""
        return str(self.manifest["name"])

    def info(self) -> dict[str, Any]:
        """Manifest summary (what ``repro dataset info`` prints)."""
        return {
            "name": self.name,
            "n": self.n,
            "m": self.m,
            "shards": len(self.manifest["shards"]),
            "packed_bytes": self.n * packed_width(self.m),
            "source": self.manifest.get("source", {}),
            "stats": self.manifest.get("stats", {}),
        }

    # ------------------------------------------------------------------
    # streaming reads
    # ------------------------------------------------------------------
    def iter_blocks(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_row, packed_block)`` shard by shard, in row order.

        Only manifest-listed shards are read — leftover files from an
        aborted ingest are invisible.  Each block's embedded metadata is
        checked against the manifest entry.
        """
        expected_width = packed_width(self.m)
        for entry in self.manifest["shards"]:
            shard_path = self.path / entry["file"]
            with np.load(shard_path) as data:
                meta = json.loads(bytes(data["meta_json"]).decode())
                check_format_version(meta, shard_path)
                if meta.get("kind") != SHARD_KIND:
                    raise ValueError(f"{shard_path} is not a dataset shard")
                if (meta["start"], meta["rows"]) != (entry["start"], entry["rows"]):
                    raise ValueError(
                        f"{shard_path} row range {meta['start']}+{meta['rows']} "
                        f"disagrees with the manifest entry {entry}"
                    )
                packed = data["packed"]
                if packed.shape != (entry["rows"], expected_width):
                    raise ValueError(
                        f"{shard_path} packed shape {packed.shape} does not match "
                        f"({entry['rows']}, {expected_width})"
                    )
                yield int(entry["start"]), packed

    def bitmatrix(self, *, mmap: bool = False) -> BitMatrix:
        """The packed preference matrix (never densified).

        ``mmap=True`` attaches the consolidated ``packed.npy`` mirror
        read-only — rows page in lazily, the serving-scale path; without
        a mirror (or ``mmap=False``) the shards stream into one packed
        array (``n × ceil(m/8)`` bytes).
        """
        if mmap:
            mirror = self.manifest.get("packed_mirror")
            if mirror is None:
                raise ValueError(
                    f"{self.path} was ingested without a packed mirror; "
                    "re-ingest with mmap_mirror=True or use mmap=False"
                )
            packed = np.load(self.path / mirror, mmap_mode="r")
            return BitMatrix.from_packed(packed, self.m, copy=False)
        packed = np.empty((self.n, packed_width(self.m)), dtype=np.uint8)
        covered = 0
        for start, block in self.iter_blocks():
            packed[start : start + block.shape[0]] = block
            covered += block.shape[0]
        if covered != self.n:
            raise ValueError(f"shards cover {covered} rows but manifest says n={self.n}")
        return BitMatrix.from_packed(packed, self.m, copy=False)

    def vocab(self) -> tuple[np.ndarray, np.ndarray]:
        """``(user_ids, item_ids)`` raw-id arrays (row/column order)."""
        vocab_file = self.manifest.get("vocab")
        if vocab_file is None:
            raise ValueError(f"{self.path} was ingested without a vocabulary")
        vocab_path = self.path / vocab_file
        with np.load(vocab_path) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
            check_format_version(meta, vocab_path)
            if meta.get("kind") != VOCAB_KIND:
                raise ValueError(f"{vocab_path} is not a dataset vocabulary")
            return data["user_ids"], data["item_ids"]

    # ------------------------------------------------------------------
    # evaluation-side escape hatches (dense on purpose)
    # ------------------------------------------------------------------
    def instance(self, *, communities: list[Community] | None = None) -> Instance:
        """A dense :class:`Instance` of the whole corpus.

        Evaluation-side only: experiments need the dense truth matrix to
        score discrepancy/stretch against.  The ETL and serving paths
        never call this — use :meth:`bitmatrix`.
        """
        dense = self.bitmatrix().unpack()
        return Instance(
            prefs=dense,
            communities=communities if communities is not None else [],
            name=self.name,
        )

    def sample(self, rows: int = 8) -> np.ndarray:
        """Dense copy of the first *rows* rows (CLI preview helper)."""
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        out: list[np.ndarray] = []
        need = min(rows, self.n)
        for _start, block in self.iter_blocks():
            take = need - sum(b.shape[0] for b in out)
            if take <= 0:
                break
            bm = BitMatrix.from_packed(block[:take], self.m, copy=False)
            out.append(bm.unpack())
        return np.concatenate(out, axis=0)
