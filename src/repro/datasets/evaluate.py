"""Real-data evaluation: the paper's algorithms vs baselines on an ingested corpus.

The source paper never ran its algorithms on real preference data; this
harness closes that gap.  Given a committed dataset store it

1. attaches the packed matrix and *discovers* the community structure
   the data actually supports (greedy ball-cover — real corpora carry no
   planted ``(α, D)``),
2. runs the paper's three entry points — **select**
   (:func:`find_preferences`, known ``α``/``D``), **rselect**
   (:func:`find_preferences_unknown_d`), and **anytime**
   (:func:`anytime_find_preferences`) — against a fresh
   :class:`ProbeOracle` over the packed instance, and
3. runs all four baselines (solo / majority / knn / svd) at the matched
   probe budget select used, scoring everything with
   :func:`repro.metrics.evaluation.evaluate` on the discovered main
   community — measured stretch ``ρ = Δ / max(D, 1)``, the paper's
   Theorem 1.1 quantity.

The oracle answers from the :class:`BitMatrix` directly; the dense
matrix is materialised once, only as the scoring truth (evaluation is
the documented dense escape hatch — the ETL/serving paths never do
this).

``repro dataset evaluate`` renders the table; ``bench_etl`` records the
same dict into ``BENCH_etl.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.baselines.knn import knn_baseline
from repro.baselines.majority import majority_baseline
from repro.baselines.solo import solo_baseline
from repro.baselines.svd import svd_baseline
from repro.billboard.oracle import ProbeOracle
from repro.core.main import anytime_find_preferences, find_preferences, find_preferences_unknown_d
from repro.core.params import Params
from repro.datasets.store import DatasetStore
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator, spawn
from repro.utils.tables import Table
from repro.workloads.ratings import discover_communities

__all__ = ["AlgorithmScore", "DatasetEvaluation", "evaluate_dataset"]


@dataclass(frozen=True)
class AlgorithmScore:
    """One algorithm's measured quality on the discovered community."""

    algorithm: str
    rounds: int
    stretch: float
    mean_error: float
    discrepancy: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "stretch": self.stretch,
            "mean_error": self.mean_error,
            "discrepancy": self.discrepancy,
        }


@dataclass(frozen=True)
class DatasetEvaluation:
    """The full panel: paper algorithms + baselines on one corpus."""

    dataset: str
    n: int
    m: int
    alpha: float
    diameter: int
    community_size: int
    scores: tuple[AlgorithmScore, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "n": self.n,
            "m": self.m,
            "alpha": self.alpha,
            "diameter": self.diameter,
            "community_size": self.community_size,
            "scores": [s.to_dict() for s in self.scores],
        }

    def render(self) -> str:
        table = Table(
            title=(
                f"{self.dataset}: measured stretch on the discovered main community "
                f"(n={self.n}, m={self.m}, α={self.alpha:.3f}, D={self.diameter})"
            ),
            columns=["algorithm", "rounds", "stretch", "mean_err", "discrepancy"],
        )
        for s in self.scores:
            table.add(
                algorithm=s.algorithm,
                rounds=s.rounds,
                stretch=round(s.stretch, 3),
                mean_err=round(s.mean_error, 3),
                discrepancy=s.discrepancy,
            )
        return table.render()


def evaluate_dataset(
    store: DatasetStore | str | Path,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = 0,
    radius: int | None = None,
    min_frequency: float = 0.1,
    max_phases: int = 2,
) -> DatasetEvaluation:
    """Run the full algorithm/baseline panel on an ingested dataset.

    Parameters
    ----------
    store:
        An open :class:`DatasetStore` or the path of a committed one.
    radius, min_frequency:
        Community-discovery knobs (default radius ``m // 10``, the
        ``instance_from_ratings`` convention).
    max_phases:
        Phase cap for the anytime algorithm (real corpora don't need
        the full ``log n`` sweep to rank against baselines).
    """
    if not isinstance(store, DatasetStore):
        store = DatasetStore.open(store)
    p = params or Params.practical()
    gen = as_generator(rng)

    with obs.span("datasets.evaluate", dataset=store.name):
        bm = store.bitmatrix()
        n, m = bm.shape
        ball = radius if radius is not None else max(1, m // 10)
        communities = discover_communities(bm, ball, min_frequency)
        if communities:
            main = max(communities, key=lambda c: c.size)
            members = main.members
            diam = int(main.diameter)
            alpha = main.size / n
        else:
            # No ball of the requested radius is frequent — score the
            # whole population against its own diameter instead.
            members = np.arange(n)
            diam = bm.diameter()
            alpha = 1.0
        truth = bm.unpack()
        d_max = max(1, 2 * diam)

        scores: list[AlgorithmScore] = []

        def add(name: str, outputs: np.ndarray, rounds: int) -> None:
            rep = evaluate(outputs, truth, members, diam=diam)
            scores.append(
                AlgorithmScore(
                    algorithm=name,
                    rounds=int(rounds),
                    stretch=float(rep.stretch),
                    mean_error=float(rep.mean_error),
                    discrepancy=int(rep.discrepancy),
                )
            )
            obs.incr("datasets.evaluate.algorithms")

        select = find_preferences(ProbeOracle(bm), alpha, diam, params=p, rng=spawn(gen))
        add("select (ours)", select.outputs, select.rounds)
        rselect = find_preferences_unknown_d(
            ProbeOracle(bm), alpha, params=p, rng=spawn(gen), d_max=d_max
        )
        add("rselect (ours)", rselect.outputs, rselect.rounds)
        anytime = anytime_find_preferences(
            ProbeOracle(bm), params=p, rng=spawn(gen), max_phases=max_phases, d_max=d_max
        )
        add("anytime (ours)", anytime.outputs, anytime.rounds)

        budget = max(select.rounds, 8)
        add("solo", solo_baseline(ProbeOracle(bm), budget=budget, rng=spawn(gen)).outputs, budget)
        add("majority", majority_baseline(ProbeOracle(bm), budget, rng=spawn(gen)).outputs, budget)
        add(
            "knn",
            knn_baseline(ProbeOracle(bm), budget // 2, budget - budget // 2, rng=spawn(gen)).outputs,
            budget,
        )
        add("svd", svd_baseline(ProbeOracle(bm), budget, rank=4, rng=spawn(gen)).outputs, budget)

    return DatasetEvaluation(
        dataset=store.name,
        n=n,
        m=m,
        alpha=alpha,
        diameter=diam,
        community_size=int(len(members)),
        scores=tuple(scores),
    )
