"""``repro.datasets`` — streaming real-dataset ETL into packed instances.

The pipeline, end to end::

    raw ratings / edge-list file
        │  formats.iter_chunks        (bounded RatingsChunk batches)
        ▼
    ingest.ingest                     (one scan pass: vocab + column
        │                              counts + per-shard spill; then
        │                              ShardPacker scatters per shard)
        ▼
    store.DatasetWriter               (.npz shards + packed.npy mirror,
        │                              manifest.json written LAST)
        ▼
    store.DatasetStore                (streamed reads, mmap attach,
                                       Instance escape hatch)

No stage ever materialises the dense ``n × m`` matrix — binarization
scatters straight into ``BitMatrix`` packed words
(:mod:`repro.datasets.binarize`), and serving attaches the packed
mirror read-only.

The evaluation harness lives in :mod:`repro.datasets.evaluate` and is
imported explicitly (not re-exported here): it pulls in the full
algorithm + baselines stack, which the ETL path has no business
loading.  Named offline corpora live in :mod:`repro.datasets.registry`.
"""

from __future__ import annotations

from repro.datasets.binarize import (
    MISSING_POLICIES,
    ShardPacker,
    binarize_ratings_matrix,
    majority_from_counts,
)
from repro.datasets.formats import RatingsChunk, iter_chunks, iter_edges, iter_ratings, sniff
from repro.datasets.ingest import IngestResult, ingest
from repro.datasets.registry import DatasetSpec
from repro.datasets.registry import get as get_dataset
from repro.datasets.registry import names as dataset_names
from repro.datasets.store import DatasetStore, DatasetWriter

__all__ = [
    "MISSING_POLICIES",
    "DatasetSpec",
    "DatasetStore",
    "DatasetWriter",
    "IngestResult",
    "RatingsChunk",
    "ShardPacker",
    "binarize_ratings_matrix",
    "dataset_names",
    "get_dataset",
    "ingest",
    "iter_chunks",
    "iter_edges",
    "iter_ratings",
    "majority_from_counts",
    "sniff",
]
