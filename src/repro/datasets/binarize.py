"""Chunked binarization straight into packed ``BitMatrix`` words.

The ETL pipeline's core kernel: known ``(row, col, rating > threshold)``
triples scatter into the packed ``uint8`` substrate one row-shard at a
time.  Imputation for unknown entries is the *base fill* the shard
buffer starts from — the same three policies as
:func:`repro.workloads.ratings.instance_from_ratings`:

* ``"zero"`` — unknown entries stay 0 (all-zero base);
* ``"one"``  — unknown entries are 1 (all-ones base, padding tail kept
  zero so packed rows keep comparing/XORing exactly);
* ``"majority"`` — unknown entries take the per-column majority of the
  *known* likes, accumulated by the scan pass
  (:func:`majority_from_counts`).

Nothing here ever allocates a dense ``n × m`` array: a
:class:`ShardPacker` holds exactly one ``shard_rows × ceil(m/8)``
packed block, and :func:`binarize_ratings_matrix` walks a dense ratings
matrix through the same scatter kernel block-by-block (the packed-native
re-route of ``instance_from_ratings``; the old dense binarizer survives
only as the bit-equality reference in its tests).

Duplicate handling is deterministic: within one :meth:`ShardPacker.scatter`
call the clears land after the sets, so a ``(row, col)`` pair graded on
both sides of the threshold resolves to 0.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.bitpack import BitMatrix, pack_vector, packed_width

__all__ = [
    "MISSING_POLICIES",
    "ShardPacker",
    "binarize_ratings_matrix",
    "majority_from_counts",
]

#: The imputation policies (shared vocabulary with ``instance_from_ratings``).
MISSING_POLICIES = ("zero", "one", "majority")


def majority_from_counts(ones_col: np.ndarray, known_col: np.ndarray) -> np.ndarray:
    """Per-column majority grade from scan-pass counts.

    A column's majority is 1 iff strictly more than half of its *known*
    entries are likes (``ones · 2 > max(known, 1)`` — the exact rule the
    dense reference uses, so all-unknown columns default to 0).
    """
    ones_col = np.asarray(ones_col, dtype=np.int64)
    known_col = np.asarray(known_col, dtype=np.int64)
    if ones_col.shape != known_col.shape or ones_col.ndim != 1:
        raise ValueError(
            f"count vectors must be 1-D and equal length, got {ones_col.shape} vs {known_col.shape}"
        )
    return (ones_col * 2 > np.maximum(known_col, 1)).astype(np.uint8)


def _base_row(m: int, missing: str, col_majority: np.ndarray | None) -> np.ndarray:
    """The packed base-fill row unknown entries inherit."""
    width = packed_width(m)
    if missing == "zero":
        return np.zeros(width, dtype=np.uint8)
    if missing == "one":
        row = np.full(width, 0xFF, dtype=np.uint8)
        if m % 8 and width:
            row[-1] = np.uint8((0xFF << (8 - m % 8)) & 0xFF)
        return row
    if missing == "majority":
        if col_majority is None:
            raise ValueError("missing='majority' needs the scan pass's col_majority")
        if col_majority.shape != (m,):
            raise ValueError(
                f"col_majority must have shape ({m},), got {col_majority.shape}"
            )
        return pack_vector(col_majority)
    raise ValueError(f"unknown missing policy {missing!r}; use one of {MISSING_POLICIES}")


class ShardPacker:
    """Packs one shard's known entries over an imputation base fill.

    Parameters
    ----------
    rows:
        Number of (local) rows in this shard.
    m:
        Logical column count.
    missing:
        Imputation policy for entries never scattered (see module doc).
    col_majority:
        Scan-pass per-column majority vector (``missing="majority"``).
    """

    def __init__(
        self,
        rows: int,
        m: int,
        *,
        missing: str = "zero",
        col_majority: np.ndarray | None = None,
    ) -> None:
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        self._rows = int(rows)
        self._m = int(m)
        base = _base_row(m, missing, col_majority)
        self._packed = np.tile(base, (self._rows, 1))

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, m)`` of this shard."""
        return (self._rows, self._m)

    def scatter(self, rows_local: np.ndarray, cols: np.ndarray, likes: np.ndarray) -> None:
        """Write known grades into the packed block (word-indexed, in place).

        *rows_local* are shard-local row indices, *cols* logical column
        indices, *likes* the 0/1 grades.  Sets land before clears, so
        contradictory duplicates within one call resolve to 0.
        """
        rows_local = np.asarray(rows_local, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        likes = np.asarray(likes)
        if not (rows_local.shape == cols.shape == likes.shape):
            raise ValueError("rows_local, cols, likes must have equal shape")
        if rows_local.size == 0:
            return
        if rows_local.min() < 0 or rows_local.max() >= self._rows:
            raise ValueError(f"row index out of shard range [0, {self._rows})")
        if cols.min() < 0 or cols.max() >= self._m:
            raise ValueError(f"column index out of range [0, {self._m})")
        byte_idx = cols >> 3
        masks = (1 << (7 - (cols & 7))).astype(np.uint8)
        set_sel = likes != 0
        if set_sel.any():
            np.bitwise_or.at(
                self._packed, (rows_local[set_sel], byte_idx[set_sel]), masks[set_sel]
            )
        clear_sel = ~set_sel
        if clear_sel.any():
            np.bitwise_and.at(
                self._packed,
                (rows_local[clear_sel], byte_idx[clear_sel]),
                np.bitwise_not(masks[clear_sel]),
            )

    def finish(self) -> np.ndarray:
        """The packed ``(rows, ceil(m/8))`` block (further scatters forbidden)."""
        packed = self._packed
        self._packed = np.empty((0, 0), dtype=np.uint8)  # poison reuse
        return packed


def _known_mask(block: np.ndarray, missing_marker: float) -> np.ndarray:
    if np.isnan(missing_marker):
        return ~np.isnan(block)
    return np.asarray(block != missing_marker)


def binarize_ratings_matrix(
    ratings: np.ndarray,
    threshold: float,
    *,
    missing: str = "zero",
    missing_marker: float = np.nan,
    block_rows: int = 256,
) -> BitMatrix:
    """Binarize a dense ratings matrix through the chunked packed kernel.

    The packed-native path behind ``instance_from_ratings``: row blocks
    of at most *block_rows* feed :class:`ShardPacker` scatters, so the
    only full-size allocation is the packed result (``n × ceil(m/8)``
    bytes, 8× smaller than the dense ``int8`` matrix it replaces).
    """
    arr = np.asarray(ratings, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError(f"ratings must be a non-empty 2-D matrix, got shape {arr.shape}")
    if missing not in MISSING_POLICIES:
        raise ValueError(f"unknown missing policy {missing!r}")
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    n, m = arr.shape

    col_majority: np.ndarray | None = None
    if missing == "majority":
        ones_col = np.zeros(m, dtype=np.int64)
        known_col = np.zeros(m, dtype=np.int64)
        for start in range(0, n, block_rows):
            block = arr[start : start + block_rows]
            known = _known_mask(block, missing_marker)
            likes = known & (block > threshold)
            ones_col += likes.sum(axis=0)
            known_col += known.sum(axis=0)
        col_majority = majority_from_counts(ones_col, known_col)

    packed = np.empty((n, packed_width(m)), dtype=np.uint8)
    for start in range(0, n, block_rows):
        block = arr[start : start + block_rows]
        known = _known_mask(block, missing_marker)
        packer = ShardPacker(
            block.shape[0], m, missing=missing, col_majority=col_majority
        )
        rows_local, cols = np.nonzero(known)
        packer.scatter(rows_local, cols, block[rows_local, cols] > threshold)
        packed[start : start + block.shape[0]] = packer.finish()
    return BitMatrix.from_packed(packed, m)
