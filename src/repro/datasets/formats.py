"""Streaming parsers for raw ratings / co-purchase corpora.

Real preference data arrives in two shapes this module understands:

* **ratings** — MovieLens-style ``user,item,rating[,timestamp]`` rows
  (CSV, TSV, ``::``-separated, or whitespace-separated; an optional
  header line and ``#`` comments are skipped);
* **edges** — SNAP-style co-purchase / co-visit edge lists, one
  ``from<TAB>to`` pair per line (``#`` comments skipped): an edge is an
  implicit unit-strength "like" of object ``to`` by player ``from``.

Both parsers *stream*: they yield bounded :class:`RatingsChunk` batches
of at most ``chunk_rows`` entries and never hold the whole file — the
contract the ETL pipeline's bounded-memory guarantee is built on.
``.gz`` sources are decompressed on the fly.

:func:`sniff` inspects the first data lines to pick the format and
delimiter, so callers can say ``fmt="auto"`` and feed either shape.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

import numpy as np

__all__ = [
    "RatingsChunk",
    "iter_chunks",
    "iter_edges",
    "iter_ratings",
    "sniff",
]

#: Delimiters tried, in order, when sniffing (``None`` = any whitespace).
_DELIMITERS: tuple[str | None, ...] = ("\t", "::", ",", ";", None)


@dataclass(frozen=True)
class RatingsChunk:
    """One bounded batch of parsed entries (raw ids, not yet remapped).

    Attributes
    ----------
    users, items:
        Raw integer ids as they appear in the file (arbitrary, sparse).
    ratings:
        Rating values; edge-list sources carry the implicit ``1.0``.
    """

    users: np.ndarray
    items: np.ndarray
    ratings: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.users) == len(self.items) == len(self.ratings)):
            raise ValueError("chunk arrays must have equal length")

    def __len__(self) -> int:
        return len(self.users)


def _open_text(path: str | Path) -> IO[str]:
    """Open *path* for line reading, transparently decompressing ``.gz``."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _fields(line: str, delimiter: str | None) -> list[str]:
    """Split one data line (``None`` = any-whitespace splitting)."""
    return line.split(delimiter) if delimiter is not None else line.split()


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def sniff(path: str | Path) -> tuple[str, str | None, bool]:
    """Detect ``(format, delimiter, has_header)`` from the first data lines.

    ``format`` is ``"edges"`` (two numeric fields per row) or
    ``"ratings"`` (three or more).  Raises ``ValueError`` when no
    delimiter yields at least two fields on the probe lines.
    """
    probes: list[str] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            probes.append(line)
            if len(probes) >= 4:
                break
    if not probes:
        raise ValueError(f"{path}: no data lines (only blanks/comments)")
    for delimiter in _DELIMITERS:
        widths = {len(_fields(line, delimiter)) for line in probes}
        if len(widths) == 1 and min(widths) >= 2:
            # A non-numeric leading row is a header; classify on the rest.
            has_header = not _is_number(_fields(probes[0], delimiter)[0])
            data_probe = probes[1] if has_header and len(probes) > 1 else probes[0]
            width = len(_fields(data_probe, delimiter))
            return ("edges" if width == 2 else "ratings", delimiter, has_header)
    raise ValueError(f"{path}: could not sniff a delimiter from {probes[0]!r}")


def _iter_lines(path: str | Path, *, skip_header: bool) -> Iterator[tuple[int, str]]:
    """Stripped data lines with 1-based line numbers (comments skipped)."""
    with _open_text(path) as fh:
        pending_header = skip_header
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if pending_header:
                pending_header = False
                continue
            yield lineno, line


def iter_ratings(
    path: str | Path,
    *,
    delimiter: str | None = None,
    chunk_rows: int = 65536,
    has_header: bool | None = None,
) -> Iterator[RatingsChunk]:
    """Stream a ratings file as bounded :class:`RatingsChunk` batches.

    Rows must carry at least ``user, item, rating``; extra fields (e.g.
    a timestamp) are ignored.  With *delimiter*/*has_header* omitted the
    file is sniffed first.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if delimiter is None or has_header is None:
        fmt, sniffed_delim, sniffed_header = sniff(path)
        if fmt != "ratings":
            raise ValueError(f"{path}: looks like an edge list, not a ratings file")
        delimiter = delimiter if delimiter is not None else sniffed_delim
        has_header = has_header if has_header is not None else sniffed_header
    users: list[int] = []
    items: list[int] = []
    ratings: list[float] = []
    for lineno, line in _iter_lines(path, skip_header=has_header):
        fields = _fields(line, delimiter)
        if len(fields) < 3:
            raise ValueError(f"{path}:{lineno}: need user,item,rating — got {line!r}")
        try:
            users.append(int(fields[0]))
            items.append(int(fields[1]))
            ratings.append(float(fields[2]))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: unparseable row {line!r}") from exc
        if len(users) >= chunk_rows:
            yield _chunk(users, items, ratings)
            users, items, ratings = [], [], []
    if users:
        yield _chunk(users, items, ratings)


def iter_edges(
    path: str | Path,
    *,
    delimiter: str | None = None,
    chunk_rows: int = 65536,
    has_header: bool | None = None,
) -> Iterator[RatingsChunk]:
    """Stream a SNAP-style edge list as unit-rating chunks.

    Each ``from to`` edge becomes the entry ``(user=from, item=to,
    rating=1.0)`` — player *from* "likes" object *to* (the co-purchase
    reading: buyers of ``from`` also bought ``to``).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if delimiter is None or has_header is None:
        fmt, sniffed_delim, sniffed_header = sniff(path)
        if fmt != "edges":
            raise ValueError(f"{path}: looks like a ratings file, not an edge list")
        delimiter = delimiter if delimiter is not None else sniffed_delim
        has_header = has_header if has_header is not None else sniffed_header
    users: list[int] = []
    items: list[int] = []
    for lineno, line in _iter_lines(path, skip_header=has_header):
        fields = _fields(line, delimiter)
        if len(fields) < 2:
            raise ValueError(f"{path}:{lineno}: need from,to — got {line!r}")
        try:
            users.append(int(fields[0]))
            items.append(int(fields[1]))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: unparseable edge {line!r}") from exc
        if len(users) >= chunk_rows:
            yield _chunk(users, items, [1.0] * len(users))
            users, items = [], []
    if users:
        yield _chunk(users, items, [1.0] * len(users))


def iter_chunks(
    path: str | Path,
    *,
    fmt: str = "auto",
    chunk_rows: int = 65536,
) -> tuple[str, Iterator[RatingsChunk]]:
    """Dispatch to the right parser; returns ``(resolved_format, chunks)``.

    ``fmt="auto"`` sniffs; ``"ratings"`` / ``"edges"`` force a parser.
    """
    if fmt == "auto":
        fmt = sniff(path)[0]
    if fmt == "ratings":
        return fmt, iter_ratings(path, chunk_rows=chunk_rows)
    if fmt == "edges":
        return fmt, iter_edges(path, chunk_rows=chunk_rows)
    raise ValueError(f"unknown dataset format {fmt!r}; use 'auto', 'ratings', or 'edges'")


def _chunk(users: list[int], items: list[int], ratings: list[float]) -> RatingsChunk:
    return RatingsChunk(
        users=np.asarray(users, dtype=np.int64),
        items=np.asarray(items, dtype=np.int64),
        ratings=np.asarray(ratings, dtype=np.float64),
    )
