"""Streaming ingest: raw ratings/edges → packed on-disk dataset store.

One bounded-memory pass over the source builds the id vocabularies and
per-column like/known counts while spilling compact ``(row, col, like)``
triples into per-shard files; a second pass packs each shard through
:class:`~repro.datasets.binarize.ShardPacker` and hands it to
:class:`~repro.datasets.store.DatasetWriter`.  Peak memory is
``O(n + m + chunk_rows + shard_rows · ceil(m/8))`` — the dense ``n × m``
matrix never exists, which is the whole point (and what the tracemalloc
test in ``tests/test_datasets.py`` pins).

Binarization happens at stream time (``rating > threshold`` is the only
per-entry decision), so the spill triples already carry the final grade;
the imputation policy only shapes each shard's base fill at pack time —
``"majority"`` uses the scan pass's column counts, exactly mirroring
``instance_from_ratings``.

Crash safety falls out of the store's commit protocol: the manifest is
written last, so a crash anywhere in here leaves a directory
:meth:`DatasetStore.open` rejects, and the spill scratch area
(``<out>/.spill/``) plus any partial shards are invisible to readers.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.datasets.binarize import MISSING_POLICIES, ShardPacker, majority_from_counts
from repro.datasets.formats import iter_chunks
from repro.datasets.store import MANIFEST_NAME, DatasetStore, DatasetWriter

__all__ = ["IngestResult", "ingest"]

#: Spill record: global row, column, binarized grade — 9 bytes/entry.
_SPILL_DTYPE = np.dtype([("row", "<u4"), ("col", "<u4"), ("like", "u1")])


@dataclass(frozen=True)
class IngestResult:
    """What one :func:`ingest` run produced (mirrors the manifest stats)."""

    path: Path
    n: int
    m: int
    rows_read: int
    shards: int
    format: str


class _Vocab:
    """First-appearance id → dense index, with the raw-id order kept."""

    def __init__(self) -> None:
        self._table: dict[int, int] = {}
        self._order: list[int] = []

    def map(self, ids: np.ndarray) -> np.ndarray:
        out = np.empty(len(ids), dtype=np.int64)
        table = self._table
        order = self._order
        for i, raw in enumerate(ids.tolist()):
            idx = table.get(raw)
            if idx is None:
                idx = len(table)
                table[raw] = idx
                order.append(raw)
            out[i] = idx
        return out

    def __len__(self) -> int:
        return len(self._table)

    def ids(self) -> np.ndarray:
        return np.asarray(self._order, dtype=np.int64)


class _ColCounts:
    """Growable per-column like/known accumulators (amortised doubling)."""

    def __init__(self) -> None:
        self.ones = np.zeros(1024, dtype=np.int64)
        self.known = np.zeros(1024, dtype=np.int64)

    def add(self, cols: np.ndarray, likes: np.ndarray) -> None:
        if len(cols) == 0:
            return
        need = int(cols.max()) + 1
        if need > len(self.ones):
            cap = max(need, 2 * len(self.ones))
            self.ones = np.concatenate([self.ones, np.zeros(cap - len(self.ones), dtype=np.int64)])
            self.known = np.concatenate(
                [self.known, np.zeros(cap - len(self.known), dtype=np.int64)]
            )
        np.add.at(self.known, cols, 1)
        np.add.at(self.ones, cols, likes.astype(np.int64))


def _spill(spill_dir: Path, shard_rows: int, rows: np.ndarray, cols: np.ndarray, likes: np.ndarray) -> None:
    """Append this chunk's triples to their per-shard spill files."""
    records = np.empty(len(rows), dtype=_SPILL_DTYPE)
    records["row"] = rows
    records["col"] = cols
    records["like"] = likes
    shard_idx = rows // shard_rows
    order = np.argsort(shard_idx, kind="stable")
    records = records[order]
    shard_idx = shard_idx[order]
    boundaries = np.flatnonzero(np.diff(shard_idx)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(records)]])
    for start, stop in zip(starts, stops):
        shard = int(shard_idx[start])
        with open(spill_dir / f"spill-{shard:04d}.bin", "ab") as fh:
            records[start:stop].tofile(fh)


def ingest(
    source: str | Path,
    out_dir: str | Path,
    *,
    threshold: float = 0.0,
    missing: str = "zero",
    fmt: str = "auto",
    shard_rows: int = 1024,
    chunk_rows: int = 65536,
    name: str | None = None,
    mmap_mirror: bool = True,
) -> IngestResult:
    """Ingest *source* into a committed dataset store at *out_dir*.

    Parameters
    ----------
    source:
        Ratings (``user,item,rating``) or SNAP edge-list file, optionally
        gzipped; *fmt* forces a parser, ``"auto"`` sniffs.
    threshold:
        ``rating > threshold`` is a like.  The default 0.0 suits
        unit-strength edge lists; MovieLens-style 1–5 stars usually
        wants 3.0.
    missing:
        Imputation policy for never-rated entries (``"zero"``, ``"one"``,
        ``"majority"`` — the ``instance_from_ratings`` vocabulary).
    shard_rows:
        Rows per packed shard (the pack-time memory knob).
    chunk_rows:
        Parser batch size (the scan-time memory knob).
    """
    source = Path(source)
    out_dir = Path(out_dir)
    if missing not in MISSING_POLICIES:
        raise ValueError(f"unknown missing policy {missing!r}; use one of {MISSING_POLICIES}")
    if shard_rows < 1:
        raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")
    if (out_dir / MANIFEST_NAME).exists():
        raise ValueError(f"{out_dir} already holds a committed dataset")
    dataset_name = name if name is not None else source.name.removesuffix(".gz")

    spill_dir = out_dir / ".spill"
    spill_dir.mkdir(parents=True, exist_ok=True)
    users = _Vocab()
    items = _Vocab()
    counts = _ColCounts()
    rows_read = 0
    with obs.span("datasets.ingest", source=str(source), missing=missing):
        with obs.span("datasets.ingest/scan"):
            resolved_fmt, chunks = iter_chunks(source, fmt=fmt, chunk_rows=chunk_rows)
            for chunk in chunks:
                rows = users.map(chunk.users)
                cols = items.map(chunk.items)
                likes = (chunk.ratings > threshold).astype(np.uint8)
                counts.add(cols, likes)
                _spill(spill_dir, shard_rows, rows, cols, likes)
                rows_read += len(chunk)
                obs.incr("datasets.ingest.rows", len(chunk))
        n, m = len(users), len(items)
        if n == 0 or m == 0:
            shutil.rmtree(out_dir, ignore_errors=True)
            raise ValueError(f"{source}: no ratings parsed — nothing to ingest")

        col_majority = None
        if missing == "majority":
            col_majority = majority_from_counts(counts.ones[:m], counts.known[:m])

        writer = DatasetWriter(
            out_dir,
            n=n,
            m=m,
            name=dataset_name,
            source={
                "file": source.name,
                "format": resolved_fmt,
                "threshold": threshold,
                "missing": missing,
            },
            mmap_mirror=mmap_mirror,
        )
        with obs.span("datasets.ingest/pack", shards=-(-n // shard_rows)):
            for start in range(0, n, shard_rows):
                rows_here = min(shard_rows, n - start)
                packer = ShardPacker(rows_here, m, missing=missing, col_majority=col_majority)
                spill_path = spill_dir / f"spill-{start // shard_rows:04d}.bin"
                if spill_path.exists():
                    records = np.fromfile(spill_path, dtype=_SPILL_DTYPE)
                    packer.scatter(
                        records["row"].astype(np.int64) - start,
                        records["col"].astype(np.int64),
                        records["like"],
                    )
                writer.write_shard(packer.finish())
                obs.incr("datasets.ingest.shards")
        with obs.span("datasets.ingest/commit"):
            writer.write_vocab(users.ids(), items.ids())
            writer.commit(
                stats={
                    "rows_read": rows_read,
                    "known_entries": int(counts.known[:m].sum()),
                    "likes": int(counts.ones[:m].sum()),
                }
            )
        shutil.rmtree(spill_dir, ignore_errors=True)
    return IngestResult(
        path=out_dir,
        n=n,
        m=m,
        rows_read=rows_read,
        shards=len(DatasetStore.open(out_dir).manifest["shards"]),
        format=resolved_fmt,
    )
