"""The dataset registry: named corpora CI can ingest without a network.

Two kinds of entry:

* **committed fixtures** — tiny raw files that live in the repo under
  ``src/repro/datasets/fixtures/`` (``mini-ratings`` /``mini-edges``),
  small enough to review yet shaped like the real thing (planted
  community structure, sparse ids, headers/comments);
* **generated corpora** — deterministic synthetic sources written on
  demand from a seeded generator (``synth-100k``: 100 000 ratings over
  2 000 users × 1 500 items with 8 planted taste communities), the
  ≥100k-rating corpus the bounded-memory acceptance test and
  ``bench_etl`` ingest.

Both resolve through :meth:`DatasetSpec.materialize`, which returns a
raw source *file* ready for :func:`repro.datasets.ingest.ingest` — the
registry never touches the network, matching the paper-repro rule that
every experiment must run offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["FIXTURE_DIR", "DatasetSpec", "get", "names"]

#: Where the committed raw fixture files live.
FIXTURE_DIR = Path(__file__).parent / "fixtures"


@dataclass(frozen=True)
class DatasetSpec:
    """One registry entry; exactly one of *fixture*/*generator* is set.

    Attributes
    ----------
    threshold, missing:
        The recommended ingest settings for this corpus (what the CLI
        uses when the user doesn't override them).
    """

    name: str
    description: str
    fmt: str
    threshold: float
    missing: str = "zero"
    fixture: str | None = None
    generator: Callable[[Path], Path] | None = None

    def materialize(self, dest_dir: str | Path) -> Path:
        """Return the raw source file, generating into *dest_dir* if needed."""
        if self.fixture is not None:
            path = FIXTURE_DIR / self.fixture
            if not path.exists():
                raise ValueError(f"committed fixture {path} is missing")
            return path
        if self.generator is None:
            raise ValueError(f"dataset {self.name!r} has neither fixture nor generator")
        dest = Path(dest_dir)
        dest.mkdir(parents=True, exist_ok=True)
        return self.generator(dest)


def _planted_ratings(
    dest: Path,
    *,
    filename: str,
    n: int,
    m: int,
    n_ratings: int,
    k: int,
    noise: float,
    seed: int,
) -> Path:
    """Write a synthetic ``user,item,rating`` CSV with *k* planted tastes.

    Users belong to one of *k* communities, each with a random base
    preference row; sampled (user, item) cells rate above 3.0 when the
    (noise-flipped) community taste likes the item.  Ids are offset so
    they exercise the vocab remapping, and the file carries a header
    plus a comment line so the sniffer paths get used too.
    """
    rng = as_generator(seed)
    centers = rng.random((k, m)) < 0.5
    membership = rng.integers(0, k, size=n)
    cells = rng.choice(n * m, size=n_ratings, replace=False)
    users = cells // m
    items = cells % m
    likes = centers[membership[users], items] ^ (rng.random(n_ratings) < noise)
    ratings = np.where(
        likes,
        3.0 + 2.0 * rng.random(n_ratings),
        0.5 + 2.5 * rng.random(n_ratings),
    )
    path = dest / filename
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# synthetic planted-community ratings corpus\n")
        fh.write("user,item,rating\n")
        for u, i, r in zip(users.tolist(), items.tolist(), ratings.tolist()):
            fh.write(f"{u + 1000},{i + 5000},{r:.2f}\n")
    return path


def _synth_100k(dest: Path) -> Path:
    return _planted_ratings(
        dest,
        filename="synth-100k.csv",
        n=2000,
        m=1500,
        n_ratings=100_000,
        k=8,
        noise=0.05,
        seed=7,
    )


def _synth_10k(dest: Path) -> Path:
    return _planted_ratings(
        dest,
        filename="synth-10k.csv",
        n=256,
        m=192,
        n_ratings=10_000,
        k=4,
        noise=0.05,
        seed=11,
    )


_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="mini-ratings",
            description="committed 64×48 MovieLens-style CSV with 4 planted communities",
            fmt="ratings",
            threshold=3.0,
            fixture="mini-ratings.csv",
        ),
        DatasetSpec(
            name="mini-edges",
            description="committed SNAP-style co-purchase edge list (unit likes)",
            fmt="edges",
            threshold=0.0,
            fixture="mini-edges.tsv",
        ),
        DatasetSpec(
            name="synth-10k",
            description="generated 10k-rating corpus (256×192, 4 communities, seed 11)",
            fmt="ratings",
            threshold=3.0,
            generator=_synth_10k,
        ),
        DatasetSpec(
            name="synth-100k",
            description="generated 100k-rating corpus (2000×1500, 8 communities, seed 7)",
            fmt="ratings",
            threshold=3.0,
            generator=_synth_100k,
        ),
    )
}


def names() -> list[str]:
    """Registered dataset names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> DatasetSpec:
    """Look up a registered dataset; unknown names list what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; registered: {', '.join(names())}") from None
