"""The stable public API of :mod:`repro`.

``repro.api`` is the supported, version-stable surface for external
callers: everything here has a pinned name and signature (guarded by
``tests/test_api_surface.py``), while the submodules it re-exports from
remain free to reorganise internally.  Import from here::

    from repro import api

    inst = api.make_instance("planted", n=256, m=256, alpha=0.5, D=2, rng=7)
    oracle = api.ProbeOracle(inst)
    result = api.find_preferences(oracle, alpha=0.5, D=2, rng=7)

The surface groups into four layers:

* **substrate** — :class:`ProbeOracle` (per-player charging; the batched
  ``probe_many`` fast path charges identically to scalar ``probe``),
  :class:`ProbeStats`, and the packed-word storage layer:
  :class:`BitMatrix` plus the :func:`dense_substrate` /
  :func:`packed_substrate` / :func:`packed_substrate_enabled` switch
  that trades the bit-packed oracle/billboard storage for the dense
  ``int8`` reference representation (observably identical; mirrors the
  :func:`sequential_probes` switch below).  The substrate's hot kernels
  dispatch through :mod:`repro.metrics.kernels`; :func:`kernel_backend`
  / :func:`kernel_info` report which backend (``"numpy"`` reference or
  the optional ``"compiled"`` cffi extension) this process selected and
  why, and :func:`numpy_kernels` forces the reference backend on the
  current thread for in-process A/B.
* **algorithms** — :func:`find_preferences` and the unknown-parameter
  wrappers, :class:`Params`, :class:`RunResult` (whose ``meta`` keys are
  the closed vocabulary :data:`META_KEYS`, checked by
  :func:`validate_meta`), plus the :func:`sequential_probes` /
  :func:`batching_enabled` switch that trades the population-batched
  probe drivers for the per-player reference loops.
* **workloads** — the :data:`WORKLOADS` registry and
  :func:`make_instance`.
* **parallel trials** — :func:`run_trials` / :func:`derive_seeds` and
  the shared-memory instance transport
  (:class:`SharedInstanceStore` / :class:`SharedInstanceHandle`,
  composed by :func:`sweep_trials`).
* **serving** — the topology-agnostic entrypoint :func:`serve`, which
  takes :class:`ServeConfig` (including ``workers``) and returns a
  :class:`ServeRuntime` — the in-process engine for ``workers=1``, the
  sharded multi-process runtime above the shared packed oracle for
  ``workers>1`` — plus the building blocks it wires
  (:class:`ServeService`, :class:`MicroBatchRouter` /
  :class:`RouterConfig`), whole-deployment snapshots
  :func:`save_runtime` / :func:`load_runtime` (restore to *any* worker
  count) beside the single-service archives :func:`save_service` /
  :func:`load_service`, and :func:`run_loadgen` with
  :class:`LoadgenConfig` / :class:`LoadgenReport`; plus the standalone
  accounting archives :func:`save_probe_stats` /
  :func:`load_probe_stats`.
* **live metrics** — :class:`MetricRegistry` (process-wide counters,
  gauges, and fixed-bucket histograms with exact cross-process merges),
  :class:`MetricsSnapshotSink` (periodic JSONL snapshots), and the
  :func:`metrics_collecting` activation switch; zero overhead when no
  registry is active.

Every ``rng`` / ``seed`` parameter across this surface uniformly accepts
``int | numpy.random.Generator | None`` (see
:func:`repro.utils.rng.as_generator`).
"""

from __future__ import annotations

from repro.billboard.accounting import ProbeStats
from repro.billboard.oracle import BudgetExceededError, ProbeOracle
from repro.core.batching import batched_probes, batching_enabled, sequential_probes
from repro.core.main import (
    anytime_find_preferences,
    find_preferences,
    find_preferences_unknown_d,
)
from repro.core.params import Params
from repro.core.result import META_KEYS, RunResult, validate_meta
from repro.experiments.harness import sweep_trials
from repro.io import load_probe_stats, save_probe_stats
from repro.metrics.bitpack import (
    BitMatrix,
    dense_substrate,
    packed_substrate,
    packed_substrate_enabled,
)
from repro.metrics.evaluation import evaluate
from repro.metrics.kernels import kernel_backend, kernel_info, numpy_kernels
from repro.model.community import Community
from repro.model.instance import Instance
from repro.obs.metrics import MetricRegistry, MetricsSnapshotSink
from repro.obs.metrics import collecting as metrics_collecting
from repro.parallel import (
    SharedInstanceHandle,
    SharedInstanceStore,
    derive_seeds,
    run_trials,
)
from repro.serve import (
    LoadgenConfig,
    LoadgenReport,
    MicroBatchRouter,
    RouterConfig,
    ServeConfig,
    ServeRuntime,
    ServeService,
    load_runtime,
    load_service,
    run_loadgen,
    save_runtime,
    save_service,
    serve,
)
from repro.utils.rng import as_generator
from repro.workloads.registry import WORKLOADS, make_instance

__all__ = [
    # substrate
    "ProbeOracle",
    "ProbeStats",
    "BudgetExceededError",
    "BitMatrix",
    "dense_substrate",
    "packed_substrate",
    "packed_substrate_enabled",
    "kernel_backend",
    "kernel_info",
    "numpy_kernels",
    # model
    "Instance",
    "Community",
    # algorithms
    "Params",
    "RunResult",
    "META_KEYS",
    "validate_meta",
    "find_preferences",
    "find_preferences_unknown_d",
    "anytime_find_preferences",
    "batching_enabled",
    "batched_probes",
    "sequential_probes",
    # metrics
    "evaluate",
    # workloads
    "WORKLOADS",
    "make_instance",
    # parallel trials
    "run_trials",
    "derive_seeds",
    "sweep_trials",
    "SharedInstanceStore",
    "SharedInstanceHandle",
    # serving
    "serve",
    "ServeRuntime",
    "ServeService",
    "ServeConfig",
    "MicroBatchRouter",
    "RouterConfig",
    "save_runtime",
    "load_runtime",
    "save_service",
    "load_service",
    "run_loadgen",
    "LoadgenConfig",
    "LoadgenReport",
    "save_probe_stats",
    "load_probe_stats",
    # live metrics
    "MetricRegistry",
    "MetricsSnapshotSink",
    "metrics_collecting",
    # rng contract
    "as_generator",
]
