"""Result containers for algorithm runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.billboard.accounting import ProbeStats

__all__ = ["SelectOutcome", "RunResult", "META_KEYS", "validate_meta"]

#: The ``RunResult.meta`` schema: every key any repro algorithm or
#: baseline may emit, with its meaning.  ``meta`` stays a plain dict
#: (algorithms attach only the keys relevant to their branch), but the
#: key *vocabulary* is closed — additions belong here, with a one-line
#: description, so downstream consumers (io round-trip, reports,
#: dashboards) have a single place to look keys up.
META_KEYS: dict[str, str] = {
    "alpha": "population fraction α the run assumed",
    "D": "distance bound the run assumed (known-D branches)",
    "branch": "algorithm branch main() dispatched to (zero/small/large radius)",
    "schedule": "D values tried by the unknown-D doubling schedule, in order",
    "per_d_rounds": "per-version probing rounds matching `schedule`",
    "phases": "completed α phases of an anytime run, in order",
    "budget_exhausted": "True when an anytime run stopped on budget, not completion",
    "virtual_factor": "population-simulation factor of a virtual-players run",
    "budget": "per-player probe budget a baseline was given",
    "rank": "truncation rank the SVD baseline used",
    "anchor": "anchor object index the kNN baseline pivoted on",
    "spread": "anchor-disagreement spread measured by the kNN baseline",
    "k_neighbors": "effective neighbour count the kNN baseline averaged over",
}


def validate_meta(meta: dict[str, Any]) -> dict[str, Any]:
    """Check *meta* against :data:`META_KEYS`; returns it unchanged.

    Raises ``ValueError`` naming any unknown keys — the guard the API
    surface tests run over real results so the documented vocabulary
    and the emitted one cannot drift apart silently.
    """
    unknown = sorted(set(meta) - set(META_KEYS))
    if unknown:
        raise ValueError(
            f"unknown RunResult.meta keys {unknown}; document new keys in "
            "repro.core.result.META_KEYS"
        )
    return meta


@dataclass(frozen=True)
class SelectOutcome:
    """Outcome of one Choose-Closest invocation (Select or RSelect).

    Attributes
    ----------
    index:
        Row index of the chosen candidate in the input set.
    vector:
        Copy of the chosen candidate.
    probes:
        Number of ``Probe`` invocations charged to the player.
    exhausted:
        True when every candidate exceeded the distance bound and the
        output is a best-effort choice over probed coordinates (an
        off-nominal situation the paper's preconditions exclude; callers
        may treat it as a signal that the bound guess was too small).
    """

    index: int
    vector: np.ndarray
    probes: int
    exhausted: bool = False


@dataclass
class RunResult:
    """Outcome of a full algorithm run (Zero/Small/Large Radius or main).

    Attributes
    ----------
    outputs:
        ``(n, m)`` matrix of player outputs.  May contain wildcards
        (-1) for Large Radius "don't care" entries; evaluation treats
        them as 0 per the paper.
    stats:
        Probe statistics for the run (delta over the run only).
    algorithm:
        Which branch produced the outputs (``"zero_radius"``, …).
    meta:
        Run metadata.  Plain dict, but the key vocabulary is closed:
        every key must be documented in :data:`META_KEYS` (enforced by
        :func:`validate_meta` in the API surface tests).
    """

    outputs: np.ndarray
    stats: ProbeStats
    algorithm: str
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Parallel probing rounds consumed (max per-player probes)."""
        return self.stats.rounds

    @property
    def total_probes(self) -> int:
        """Total probes across the population."""
        return self.stats.total

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"RunResult(algorithm={self.algorithm!r}, shape={tuple(self.outputs.shape)}, "
            f"rounds={self.rounds}, total_probes={self.total_probes})"
        )
