"""Result containers for algorithm runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.billboard.accounting import ProbeStats

__all__ = ["SelectOutcome", "RunResult"]


@dataclass(frozen=True)
class SelectOutcome:
    """Outcome of one Choose-Closest invocation (Select or RSelect).

    Attributes
    ----------
    index:
        Row index of the chosen candidate in the input set.
    vector:
        Copy of the chosen candidate.
    probes:
        Number of ``Probe`` invocations charged to the player.
    exhausted:
        True when every candidate exceeded the distance bound and the
        output is a best-effort choice over probed coordinates (an
        off-nominal situation the paper's preconditions exclude; callers
        may treat it as a signal that the bound guess was too small).
    """

    index: int
    vector: np.ndarray
    probes: int
    exhausted: bool = False


@dataclass
class RunResult:
    """Outcome of a full algorithm run (Zero/Small/Large Radius or main).

    Attributes
    ----------
    outputs:
        ``(n, m)`` matrix of player outputs.  May contain wildcards
        (-1) for Large Radius "don't care" entries; evaluation treats
        them as 0 per the paper.
    stats:
        Probe statistics for the run (delta over the run only).
    algorithm:
        Which branch produced the outputs (``"zero_radius"``, …).
    meta:
        Free-form run metadata (D used, part counts, per-phase costs…).
    """

    outputs: np.ndarray
    stats: ProbeStats
    algorithm: str
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Parallel probing rounds consumed (max per-player probes)."""
        return self.stats.rounds

    @property
    def total_probes(self) -> int:
        """Total probes across the population."""
        return self.stats.total

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"RunResult(algorithm={self.algorithm!r}, shape={tuple(self.outputs.shape)}, "
            f"rounds={self.rounds}, total_probes={self.total_probes})"
        )
