"""The paper's virtual-player reduction for ``m ≫ n`` (Section 3).

"when ``m > n`` we can let each real player simulate ``⌈m/n⌉`` players
of the algorithm" — the algorithms assume ``m = Θ(n)``; with far more
objects than players, each real player runs several *virtual* players
(all sharing its hidden row), restoring the square shape.  Probes by a
virtual player are real probes by its owner, so the owner's per-round
work is multiplied by the simulation factor — exactly the paper's
``m/n``-factor caveat in Theorem 5.4.

:func:`find_preferences_virtual` wraps
:func:`repro.core.main.find_preferences`:

1. build the virtual population (row-duplicated hidden matrix, planted
   community membership inherited by every copy);
2. run the main algorithm over it;
3. map outputs back (every copy of a player agrees on its community
   guarantee; we return the first copy's output) and re-attribute every
   virtual probe to its owning real player.
"""

from __future__ import annotations

import math

import numpy as np

from repro.billboard.accounting import ProbeStats
from repro.billboard.exceptions import BudgetExceededError
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.core.result import RunResult
from repro.utils.rng import as_generator

__all__ = ["virtual_factor", "find_preferences_virtual"]


def virtual_factor(n: int, m: int) -> int:
    """The simulation factor ``⌈m/n⌉`` (1 when ``m <= n``)."""
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1, got n={n}, m={m}")
    return max(1, math.ceil(m / n))


def find_preferences_virtual(
    oracle: ProbeOracle,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Run the main algorithm through the virtual-player reduction.

    With ``m <= n`` this is exactly :func:`find_preferences`.  Otherwise
    the virtual population has ``n·⌈m/n⌉ >= m`` players; the returned
    ``stats`` charge every virtual probe to the owning real player, and
    ``meta["virtual_factor"]`` records the simulation factor.

    Note the virtual population shares one *virtual* oracle internally
    (the real oracle's cost model is reconstructed from it); the passed
    *oracle*'s own counters are advanced accordingly so ledgers stay
    meaningful.  A real per-player ``budget`` is enforced *post hoc* on
    the attributed totals (the virtual run cannot be stopped mid-probe
    per real player): :class:`BudgetExceededError` is raised after the
    run if any owner's attributed probes exceed its budget.
    """
    n, m = oracle.n_players, oracle.n_objects
    factor = virtual_factor(n, m)
    p = params or Params.practical()
    gen = as_generator(rng)
    if factor == 1:
        return find_preferences(oracle, alpha, D, params=p, rng=gen)

    # Virtual population: factor copies of every real player.  Copy c of
    # player i is virtual index c*n + i.
    hidden = oracle.billboard  # real billboard (kept in sync below)
    # The sanctioned dense export: builds the virtual oracle's matrix and
    # mirrors already-charged reveals below, never grades players.
    base = oracle.checkpoint()["prefs"]
    prefs = np.tile(base, (factor, 1))
    virtual_oracle = ProbeOracle(prefs, charge_repeats=oracle.charge_repeats)

    res = find_preferences(virtual_oracle, alpha, D, params=p, rng=gen)

    # Attribute virtual costs back to owners (and enforce real budgets).
    per_virtual = virtual_oracle.stats().per_player
    per_real = per_virtual.reshape(factor, n).sum(axis=0)
    if oracle.budget is not None:
        over = np.flatnonzero(oracle._counts + per_real > oracle.budget)  # noqa: SLF001
        if over.size:
            raise BudgetExceededError(int(over[0]), oracle.budget)

    # Mirror reveals onto the real billboard (copy c's reveals are the
    # owner's reveals) and charge the real oracle's counters so budgets
    # and phase ledgers remain accurate.
    vmask = virtual_oracle.billboard.revealed_mask().reshape(factor, n, m).any(axis=0)
    players, objects = np.nonzero(vmask)
    if players.size:
        hidden.post_grades(players, objects, base[players, objects])
    oracle._counts += per_real  # noqa: SLF001 - substrate peer

    outputs = res.outputs[:n]
    return RunResult(
        outputs=outputs,
        stats=ProbeStats(per_real.copy()),
        algorithm=f"virtual({res.algorithm})",
        meta={**res.meta, "virtual_factor": factor},
    )
