"""Algorithm RSelect — randomized Choose-Closest without a distance bound.

Implements Fig. 7 / Theorem 6.1.  A round-robin tournament: for every
pair of distinct candidates, the player probes ``c·log n`` random
coordinates on which the pair's non-"?" values differ; a candidate is
declared a *loser* against the other if a ``2/3`` majority of the probed
coordinates agrees with the other.  The output is a vector with zero
losses (w.h.p. the true closest never loses, and any vector at distance
``Ω(D)`` loses to it), giving an ``O(D)``-close output with
``O(k² log n)`` probes and *no prior bound on D* — the ingredient that
lets Section 6 drop the known-``D`` assumption.

Robustness beyond the paper: if no candidate is undefeated (possible at
small sample sizes), we output the candidate with fewest losses,
breaking ties lexicographically.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from repro.core.params import Params
from repro.core.result import SelectOutcome
from repro.metrics import kernels
from repro.metrics.bitpack import pack_rows, unpack_vector
from repro.utils.rng import as_generator
from repro.utils.validation import WILDCARD

__all__ = ["rselect", "rselect_coroutine"]


#: Content-keyed memo of the per-pair differing-coordinate arrays.  The
#: tournament's pair diffs depend only on the candidate matrix, which is
#: shared across every player the batched drivers / serving runtime step
#: over the same vote — so all but the first player skip the ``O(k² L)``
#: scan entirely.  FIFO-capped; cached arrays are shared, never mutated.
_DIFF_CACHE: dict[tuple[int, int, str, bytes], list[tuple[int, int, np.ndarray]]] = {}
_DIFF_CACHE_CAP = 64


def _pair_diffs(cand: np.ndarray) -> list[tuple[int, int, np.ndarray]]:
    """``(a, b, diff)`` for every candidate pair with a non-empty diff.

    ``diff`` lists the coordinates where both entries are non-"?" and
    unequal, ascending — Fig. 7's per-match probe pool.  Wildcard-free
    0/1 candidates take the packed XOR path (bit-identical indices).
    """
    key = (cand.shape[0], cand.shape[1], cand.dtype.str, cand.tobytes())
    hit = _DIFF_CACHE.get(key)
    if hit is not None:
        return hit
    k = cand.shape[0]
    binary = (
        cand.dtype.kind in "iub"
        and cand.size > 0
        and int(cand.min()) >= 0
        and int(cand.max()) <= 1
    )
    packed = pack_rows(cand) if binary else None
    table: list[tuple[int, int, np.ndarray]] = []
    for a in range(k):
        for b in range(a + 1, k):
            if packed is not None:
                # For 0/1 rows "both non-? and unequal" is exactly XOR.
                diff = np.flatnonzero(
                    unpack_vector(np.bitwise_xor(packed[a], packed[b]), cand.shape[1])
                )
            else:
                va, vb = cand[a], cand[b]
                diff = np.flatnonzero((va != WILDCARD) & (vb != WILDCARD) & (va != vb))
            if diff.size:
                table.append((a, b, diff))
    if len(_DIFF_CACHE) >= _DIFF_CACHE_CAP:
        _DIFF_CACHE.pop(next(iter(_DIFF_CACHE)))
    _DIFF_CACHE[key] = table
    return table


def rselect_coroutine(
    candidates: np.ndarray,
    n_population: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> Generator[int, int, SelectOutcome]:
    """Algorithm RSelect as a coroutine: yields coordinates, receives values.

    The single source of truth for Fig. 7's logic; :func:`rselect`
    drives it with a probe callable, the round engine forwards the
    yielded coordinates as ``Probe`` actions.  Returns the
    :class:`SelectOutcome`.
    """
    cand = np.ascontiguousarray(candidates)
    if cand.ndim != 2 or cand.shape[0] < 1:
        raise ValueError(f"candidates must be a non-empty 2-D matrix, got shape {cand.shape}")
    if n_population < 1:
        raise ValueError(f"n_population must be >= 1, got {n_population}")
    p = params or Params.practical()
    gen = as_generator(rng)
    k = cand.shape[0]

    losses = np.zeros(k, dtype=np.int64)
    n_probes = 0
    budget = p.rs_num_probes(n_population)

    # Cache probed values within this invocation: probing the same
    # coordinate twice would return the same grade; the paper's probe
    # count is an upper bound and re-asking adds nothing.  Every *new*
    # coordinate is a charged probe.
    value_cache: dict[int, int] = {}

    # int16 staging for the per-match agreement kernel (candidate
    # alphabets — {0, 1, ?} and super-objects — always fit; a wider
    # matrix tallies through the kernel's generic path instead).
    cand16: np.ndarray | None = None
    if cand.dtype.kind in "iub" and (
        cand.size == 0 or (int(cand.min()) >= -(2**15) and int(cand.max()) < 2**15)
    ):
        cand16 = np.ascontiguousarray(cand, dtype=np.int16)

    # Indistinguishable pairs (empty diff) play no match, exactly as the
    # per-pair scan skipped them.
    for a, b, diff in _pair_diffs(cand):
        if diff.size <= budget:
            sample = diff
        else:
            sample = gen.choice(diff, size=budget, replace=False)
        # Collect this match's probed values first (yielding only
        # uncached coordinates, in sample order — the probe sequence is
        # identical to the scalar loop's), then tally agreements in one
        # kernel call (repro.metrics.kernels.pair_agreements keeps the
        # scalar loop's first-match-wins elif order).
        values = np.empty(sample.size, dtype=np.int64)
        for idx, j in enumerate(sample):
            j = int(j)
            if j not in value_cache:
                value_cache[j] = int((yield j))
                n_probes += 1
            values[idx] = value_cache[j]
        if cand16 is not None and (
            sample.size == 0
            or (int(values.min()) >= -(2**15) and int(values.max()) < 2**15)
        ):
            agree_a, agree_b = kernels.pair_agreements(
                cand16[a].take(sample), cand16[b].take(sample), values.astype(np.int16)
            )
        else:
            agree_a, agree_b = kernels.pair_agreements(
                cand[a].take(sample), cand[b].take(sample), values
            )
        threshold = p.rs_majority * sample.size
        if agree_a >= threshold:
            losses[b] += 1
        if agree_b >= threshold:
            losses[a] += 1

    zero_loss = np.flatnonzero(losses == 0)
    exhausted = zero_loss.size == 0
    pool = zero_loss if not exhausted else np.flatnonzero(losses == losses.min())
    # Deterministic pick among eligible candidates: lexicographically first.
    keys = [cand[int(i)].tobytes() for i in pool]
    winner = int(pool[min(range(len(keys)), key=keys.__getitem__)])
    return SelectOutcome(index=winner, vector=cand[winner].copy(), probes=n_probes, exhausted=exhausted)


def rselect(
    candidates: np.ndarray,
    probe: Callable[[int], int],
    n_population: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> SelectOutcome:
    """Run Algorithm RSelect (Fig. 7).

    Parameters
    ----------
    candidates:
        ``(k, L)`` matrix over ``{0, 1, ?}`` (or small ints).
    probe:
        Coordinate-probe callable for the invoking player (charged).
    n_population:
        The ``n`` in the ``c·log n`` per-pair probe count (the global
        player population, which sets the w.h.p. confidence level).
    params:
        Constants (``rs_probes_c``, ``rs_majority``).
    rng:
        Seed or generator for the random coordinate samples.

    Returns
    -------
    SelectOutcome
        ``exhausted`` is True when no candidate was undefeated and a
        fewest-losses fallback was used.
    """
    gen = rselect_coroutine(candidates, n_population, params=params, rng=rng)
    try:
        coord = next(gen)
        while True:
            coord = gen.send(probe(coord))
    except StopIteration as stop:
        return stop.value
