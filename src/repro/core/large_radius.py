"""Algorithm Large Radius — arbitrary-diameter communities (Fig. 5).

Handles ``D = Ω(log n)`` at polylogarithmic probing cost by reducing to
the two previous algorithms:

1. **Chop** (step 1): randomly partition the objects into
   ``Θ(D / log n)`` groups ``O_ℓ`` — w.h.p. any two community members
   disagree on only ``O(log n)`` coordinates *within each group*
   (Lemma 5.5) — and randomly assign players to groups ``P_ℓ``.
2. **Solve locally** (step 2): each ``P_ℓ`` runs Small Radius on
   ``O_ℓ`` with distance bound ``λ = min(D, O(log n))``.
3. **Cluster** (step 3): everyone runs the deterministic, probe-free
   Coalesce over each group's posted outputs, producing ≤ ``O(1/α)``
   candidates ``B_ℓ`` per group, exactly one of which is closest to all
   community members (Theorem 5.3).
4. **Stitch globally** (step 4): run Zero Radius where each *group* is a
   single super-object whose value is a ``B_ℓ`` index; a logical probe is
   an inner ``Select`` over the group's candidates.  Community members
   share the same closest candidate per group, i.e. the super-object
   instance has ``D = 0`` — which is the entire point of the reduction.

Theorem 5.4: output within ``O(D/α)`` of the truth (with up to
``O(D/α)`` "don't care" wildcards), at ``O(log^{7/2} n / α²)`` probes
per player (for ``m = Θ(n)``).
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro.billboard.oracle import ProbeOracle
from repro.core.coalesce import coalesce
from repro.core.params import Params
from repro.core.partition import partition_parts, partition_players, random_partition
from repro.core.small_radius import small_radius
from repro.core.zero_radius import NO_OUTPUT, SuperObjectSpace, zero_radius
from repro.utils.rng import as_generator, spawn
from repro.utils.rowset import plurality_row
from repro.utils.validation import WILDCARD

__all__ = ["large_radius"]


def _fallback_candidates(rows: np.ndarray) -> np.ndarray:
    """Plurality row as a 1-row candidate set (off-nominal Coalesce rescue)."""
    return plurality_row(np.ascontiguousarray(rows))


def large_radius(
    oracle: ProbeOracle,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Run Algorithm Large Radius (Fig. 5) over the whole population.

    Parameters
    ----------
    oracle:
        Probe gate over the hidden ``n × m`` matrix.
    alpha, D:
        Known community frequency and diameter bound (Section 6 removes
        the knowledge assumption at the :mod:`~repro.core.main` level).
    params, rng:
        Constants and public-coin generator.

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` int8 output matrix; may contain ``-1`` wildcards
        ("don't care" entries, at most ``O(D/α)`` per player), which
        evaluation scores as 0 per the paper.
    """
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if D < 1:
        raise ValueError(f"Large Radius requires D >= 1, got {D}")
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects

    # ------------------------------------------------------------------
    # Step 1: chop objects and players into groups.
    # ------------------------------------------------------------------
    n_groups = min(p.lr_num_groups(D, n), m)
    labels = random_partition(m, n_groups, gen)
    groups = [g for g in partition_parts(labels, n_groups) if g.size > 0]
    n_groups = len(groups)
    copies = p.lr_player_copies(D, alpha, n)
    player_groups = partition_players(n, n_groups, copies, spawn(gen))

    lam = p.lr_lambda(D, n)
    sr_alpha = min(1.0, alpha / p.lr_alpha_div)
    coalesce_D = math.ceil(p.lr_coalesce_mult * lam)
    select_bound = math.ceil(p.lr_select_bound_mult * lam)
    K = p.sr_confidence(n)

    # ------------------------------------------------------------------
    # Steps 2 + 3: per-group Small Radius, then Coalesce the posted outputs.
    # ------------------------------------------------------------------
    candidate_sets: list[np.ndarray] = []
    with oracle.phase("large_radius/groups"):
        for group, members in zip(groups, player_groups):
            sr_out = small_radius(
                oracle,
                members,
                group,
                sr_alpha,
                lam,
                params=p,
                rng=spawn(gen),
                K=K,
            )
            posted = sr_out[members].astype(np.int8)
            result = coalesce(posted, coalesce_D, sr_alpha)
            cands = result.vectors
            if cands.shape[0] == 0:
                obs.incr("coalesce.fallbacks")
                cands = _fallback_candidates(posted)
            obs.incr("coalesce.candidates", int(cands.shape[0]))
            candidate_sets.append(cands)

    # ------------------------------------------------------------------
    # Step 4: Zero Radius over super-objects (one per group).
    # ------------------------------------------------------------------
    with oracle.phase("large_radius/stitch"):
        space = SuperObjectSpace(oracle, groups, candidate_sets, select_bound)
        chosen = zero_radius(
            space,
            np.arange(n, dtype=np.intp),
            alpha,
            n_global=n,
            params=p,
            rng=spawn(gen),
        )

    out = np.full((n, m), WILDCARD, dtype=np.int8)
    for l, group in enumerate(groups):
        idx = chosen[:, l]
        valid = idx != NO_OUTPUT
        out[np.ix_(valid, group)] = candidate_sets[l][idx[valid].astype(np.intp)]
    return out
