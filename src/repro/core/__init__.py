"""The paper's algorithm tower.

Bottom to top (each layer uses the ones below):

* :mod:`~repro.core.select` — deterministic Choose-Closest with a known
  distance bound (Fig. 3 / Theorem 3.2).
* :mod:`~repro.core.rselect` — randomized Choose-Closest without a bound
  (Fig. 7 / Theorem 6.1).
* :mod:`~repro.core.partition` — the public-coin random partitions and the
  Lemma 4.1 success predicate.
* :mod:`~repro.core.coalesce` — probe-free clustering of posted vectors
  (Fig. 6 / Theorem 5.3).
* :mod:`~repro.core.zero_radius` — identical-preference communities
  (Fig. 2 / Theorem 3.1), generalized to abstract valued object spaces so
  Large Radius can reuse it over "super-objects".
* :mod:`~repro.core.small_radius` — ``D = O(log n)`` communities
  (Fig. 4 / Theorem 4.4, Lemma 4.1).
* :mod:`~repro.core.large_radius` — arbitrary ``D`` (Fig. 5 / Thm 5.4).
* :mod:`~repro.core.main` — the Fig. 1 dispatcher, the unknown-``D``
  doubling wrapper, and the anytime unknown-``α`` loop (Section 6),
  together delivering Theorem 1.1.

All constants are exposed on :class:`~repro.core.params.Params`, with a
``paper()`` preset (literal constants) and a ``practical()`` preset
(same functional forms, laptop-scale leading constants).
"""

from repro.core.batching import batched_probes, batching_enabled, sequential_probes
from repro.core.params import Params
from repro.core.result import META_KEYS, RunResult, SelectOutcome, validate_meta
from repro.core.select import select, select_candidate_index, select_coroutine
from repro.core.rselect import rselect
from repro.core.partition import (
    is_partition_successful,
    partition_players,
    random_partition,
    partition_parts,
)
from repro.core.coalesce import coalesce
from repro.core.zero_radius import PrimitiveSpace, SuperObjectSpace, zero_radius
from repro.core.small_radius import small_radius
from repro.core.large_radius import large_radius
from repro.core.main import find_preferences, find_preferences_unknown_d, anytime_find_preferences
from repro.core.virtual import find_preferences_virtual, virtual_factor
from repro.core.estimators import alpha_for_budget, budget_for_alpha, empirical_d_of_alpha

__all__ = [
    "find_preferences_virtual",
    "virtual_factor",
    "alpha_for_budget",
    "budget_for_alpha",
    "empirical_d_of_alpha",
    "Params",
    "RunResult",
    "SelectOutcome",
    "META_KEYS",
    "validate_meta",
    "batching_enabled",
    "batched_probes",
    "sequential_probes",
    "select",
    "select_candidate_index",
    "select_coroutine",
    "rselect",
    "random_partition",
    "partition_parts",
    "partition_players",
    "is_partition_successful",
    "coalesce",
    "zero_radius",
    "PrimitiveSpace",
    "SuperObjectSpace",
    "small_radius",
    "large_radius",
    "find_preferences",
    "find_preferences_unknown_d",
    "anytime_find_preferences",
]
