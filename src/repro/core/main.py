"""The main algorithm (Fig. 1) and the Section 6 wrappers.

* :func:`find_preferences` — the known-``(α, D)`` dispatcher of Fig. 1:
  ``D = 0`` → Zero Radius; ``D = O(log n)`` → Small Radius; otherwise →
  Large Radius.
* :func:`find_preferences_unknown_d` — the Section 6 doubling search:
  run the main algorithm for ``D ∈ {0, 1, 2, 4, …}``, then each player
  picks among the ``O(log m)`` resulting candidate vectors with RSelect
  (which needs no distance bound).  Costs a log factor in probes and a
  constant factor in quality — the gap between Theorem 5.4 and
  Theorem 1.1.
* :func:`anytime_find_preferences` — the Section 6 "anytime algorithm":
  phase ``j`` runs the unknown-``D`` search with ``α = 2^{-j}``, merging
  each phase's output into the running best via RSelect; at any stopping
  time the output quality is close to the best achievable in the time
  spent.  Stops on probe-budget exhaustion when the oracle is budgeted.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro import obs
from repro.billboard.exceptions import BudgetExceededError
from repro.billboard.oracle import ProbeOracle
from repro.core.batching import batching_enabled, rselect_batched
from repro.core.large_radius import large_radius
from repro.core.params import Params
from repro.core.result import RunResult
from repro.core.rselect import rselect
from repro.core.small_radius import small_radius
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.utils.rng import as_generator, spawn, spawn_many

__all__ = ["find_preferences", "find_preferences_unknown_d", "anytime_find_preferences"]


def find_preferences(
    oracle: ProbeOracle,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Fig. 1: solve Find Preferences with known ``α`` and ``D``.

    Returns a :class:`RunResult` whose ``outputs`` matrix covers every
    player; ``meta["branch"]`` records which algorithm ran.
    """
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if D < 0:
        raise ValueError(f"D must be non-negative, got {D}")
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects
    players = np.arange(n, dtype=np.intp)
    before = oracle.stats()

    if D == 0:
        branch = "zero_radius"
    elif D <= p.small_d_threshold(n):
        branch = "small_radius"
    else:
        branch = "large_radius"

    with obs.span(f"find_preferences/{branch}", oracle=oracle, alpha=alpha, D=D):  # repro: noqa[RPL011] — once per run, not a hot path
        if branch == "zero_radius":
            space = PrimitiveSpace(oracle, np.arange(m, dtype=np.intp))
            outputs = zero_radius(space, players, alpha, n_global=n, params=p, rng=gen).astype(np.int8)
        elif branch == "small_radius":
            outputs = small_radius(
                oracle, players, np.arange(m, dtype=np.intp), alpha, D, params=p, rng=gen
            ).astype(np.int8)
        else:
            outputs = large_radius(oracle, alpha, D, params=p, rng=gen)

    stats = oracle.stats() - before
    return RunResult(outputs=outputs, stats=stats, algorithm=branch, meta={"alpha": alpha, "D": D, "branch": branch})


def _doubling_schedule(m: int, base: float, d_max: int | None) -> list[int]:
    """``{0, 1, 2, 4, …}`` capped at ``d_max`` (default ``m``)."""
    cap = m if d_max is None else min(int(d_max), m)
    ds = [0]
    d = 1
    while d <= cap:
        ds.append(d)
        d = max(d + 1, int(math.ceil(d * base)))
    return ds


def find_preferences_unknown_d(
    oracle: ProbeOracle,
    alpha: float,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    d_max: int | None = None,
) -> RunResult:
    """Section 6: solve Find Preferences with known ``α`` but unknown ``D``.

    Runs :func:`find_preferences` for each ``D`` in the doubling schedule
    and lets each player choose among the candidate outputs with RSelect
    (Theorem 6.1 — no distance bound needed).  ``meta["schedule"]`` holds
    the ``D`` values tried; ``meta["per_d_rounds"]`` the per-version cost.
    """
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects
    before = oracle.stats()

    schedule = _doubling_schedule(m, p.unknown_d_base, d_max)
    versions: list[np.ndarray] = []
    per_d_rounds: list[int] = []
    for D in schedule:
        # One span per doubling guess; the nested find_preferences span
        # carries the branch that guess dispatched to.
        with obs.span("unknown_d/guess", oracle=oracle, D=D):
            obs.incr("doubling.iterations")
            res = find_preferences(oracle, alpha, D, params=p, rng=spawn(gen))
        versions.append(res.outputs)
        per_d_rounds.append(res.rounds)

    # Each player RSelects among its candidate vectors from all versions.
    # Per-player child streams (rather than one shared stream consumed in
    # player order) keep the randomness player-local — the property the
    # distributed engine needs to replicate runs coin-for-coin.
    stacked = np.stack(versions, axis=0)  # (n_versions, n, m)
    outputs = np.empty((n, m), dtype=np.int8)
    player_rngs = spawn_many(spawn(gen), n)
    with obs.span("unknown_d/rselect", oracle=oracle, versions=len(schedule)):
        if batching_enabled():
            cand_by_player = {
                player: np.ascontiguousarray(stacked[:, player, :]) for player in range(n)
            }
            outcomes = rselect_batched(
                oracle, np.arange(n, dtype=np.intp), cand_by_player, n, params=p, rngs=player_rngs
            )
            for player, outcome in outcomes.items():
                outputs[player] = outcome.vector
        else:
            for player in range(n):
                cands = np.ascontiguousarray(stacked[:, player, :])

                def probe_coord(j: int, _pl: int = player) -> int:
                    return oracle.probe(_pl, j)

                outcome = rselect(cands, probe_coord, n, params=p, rng=player_rngs[player])
                outputs[player] = outcome.vector

    stats = oracle.stats() - before
    return RunResult(
        outputs=outputs,
        stats=stats,
        algorithm="unknown_d",
        meta={"alpha": alpha, "schedule": schedule, "per_d_rounds": per_d_rounds},
    )


def anytime_find_preferences(
    oracle: ProbeOracle,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_phases: int | None = None,
    d_max: int | None = None,
    phase_callback: Callable[[int, float, np.ndarray], None] | None = None,
) -> RunResult:
    """Section 6: unknown ``α`` *and* ``D`` — the anytime algorithm.

    Phase ``j = 0, 1, …`` runs the unknown-``D`` search with
    ``α = 2^{-j}`` and merges the result into the running best output via
    per-player RSelect.  Phases stop when ``2^{-j} n < log n`` (the paper:
    below that a player "is better off probing all objects on his own"),
    after *max_phases*, or when a budgeted oracle raises
    :class:`BudgetExceededError` — in which case the best output of the
    *completed* phases is returned (``meta["budget_exhausted"] = True``).

    *phase_callback(j, alpha_j, outputs)* is invoked after each completed
    phase — the hook used by the E8 anytime-curve experiment.
    """
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects
    before = oracle.stats()

    max_j = int(math.floor(math.log2(max(2.0, n / max(1.0, math.log(max(n, 2)))))))
    if max_phases is not None:
        max_j = min(max_j, max_phases - 1)

    best: np.ndarray | None = None
    completed: list[float] = []
    exhausted = False
    for j in range(max_j + 1):
        alpha_j = 2.0 ** (-j)
        try:
            with obs.span("anytime/phase", oracle=oracle, j=j, alpha=alpha_j):
                res = find_preferences_unknown_d(oracle, alpha_j, params=p, rng=spawn(gen), d_max=d_max)
                new = res.outputs
                if best is None:
                    merged = new
                else:
                    merged = np.empty_like(new)
                    merge_rngs = spawn_many(spawn(gen), n)
                    if batching_enabled():
                        cand_by_player = {
                            player: np.ascontiguousarray(np.stack([best[player], new[player]]))
                            for player in range(n)
                        }
                        outcomes = rselect_batched(
                            oracle,
                            np.arange(n, dtype=np.intp),
                            cand_by_player,
                            n,
                            params=p,
                            rngs=merge_rngs,
                        )
                        for player, outcome in outcomes.items():
                            merged[player] = outcome.vector
                    else:
                        for player in range(n):
                            cands = np.ascontiguousarray(np.stack([best[player], new[player]]))

                            def probe_coord(jj: int, _pl: int = player) -> int:
                                return oracle.probe(_pl, jj)

                            outcome = rselect(cands, probe_coord, n, params=p, rng=merge_rngs[player])
                            merged[player] = outcome.vector
                best = merged
        except BudgetExceededError:
            exhausted = True
            obs.event("anytime.budget_exhausted", phase=j, alpha=alpha_j)
            break
        completed.append(alpha_j)
        if phase_callback is not None:
            phase_callback(j, alpha_j, best.copy())

    if best is None:
        # Budget died inside the very first phase: the best assumption-free
        # guess is each player's own revealed entries (already paid for and
        # posted on the billboard), zeros elsewhere.
        mask = oracle.billboard.revealed_mask()
        values = oracle.billboard.revealed_values()
        best = np.where(mask, values, 0).astype(np.int8)

    stats = oracle.stats() - before
    return RunResult(
        outputs=best,
        stats=stats,
        algorithm="anytime",
        meta={"phases": completed, "budget_exhausted": exhausted},
    )
