"""Algorithm constants.

The paper states its algorithms with explicit but asymptotic constants
(e.g. the Zero Radius leaf threshold ``8c·ln n/α``, Lemma 4.1's
``s ≥ 100·d^{3/2}`` parts, the ``αn/5`` popularity threshold).  At
laptop scale the literal constants make every recursion bottom out
immediately, so :class:`Params` exposes each one:

* :meth:`Params.paper` — the literal constants, for formula-level tests;
* :meth:`Params.practical` — identical functional forms with small
  leading constants, used by the experiments.  Every theorem *shape*
  (``log n`` scaling, the ``D^{3/2}`` partition knee, the ``5D`` error
  cap, the ``1/α`` candidate cap) is preserved.

All derived quantities (leaf threshold, part counts, confidence ``K``,
…) are computed by methods here so algorithm code contains no magic
numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["Params"]


@dataclass(frozen=True)
class Params:
    """Tunable constants of the algorithm tower.

    Attributes
    ----------
    zr_leaf_c:
        Zero Radius recursion bottoms out when ``min(|P|, |O|) <
        zr_leaf_c · ln(n) / α`` (paper: ``8c``).
    zr_min_leaf:
        Absolute floor on the leaf threshold (guards tiny populations).
    zr_vote_frac:
        A vector becomes a Zero Radius candidate when at least
        ``zr_vote_frac · α`` of the opposite half voted for it
        (paper: ``1/2``, i.e. an ``α/2`` fraction).
    sr_alpha_div:
        Small Radius invokes Zero Radius with ``α / sr_alpha_div``
        and uses popularity threshold ``αn / sr_alpha_div`` (paper: 5).
    sr_s_factor:
        Small Radius partitions objects into
        ``s = ceil(sr_s_factor · D^{3/2})`` parts (paper: 100, via
        Lemma 4.1's ``s ≥ 100 d^{3/2}``).
    sr_final_bound_mult:
        Step 2 of Small Radius selects with bound
        ``sr_final_bound_mult · D`` (paper: 5, from Lemma 4.3).
    sr_k_factor, sr_k_min:
        Confidence parameter ``K = max(sr_k_min, ceil(sr_k_factor ·
        log2 n))`` (paper: ``K = Θ(log n)``).
    lr_groups_c:
        Large Radius partitions objects into
        ``ceil(lr_groups_c · D / ln n)`` groups (paper: ``c``).
    lr_small_d_c:
        The Fig. 1 dispatcher routes to Small Radius when
        ``D <= lr_small_d_c · ln n``.
    lr_alpha_div:
        Large Radius invokes Small Radius with ``α / lr_alpha_div``
        (paper: 2).
    lr_coalesce_mult:
        Coalesce distance parameter as a multiple of the per-group
        distance bound λ (pairwise Small Radius outputs of typical
        players are ``O(λ)`` apart; paper's analysis allows ~11λ).
    lr_select_bound_mult:
        Distance bound (×λ) used by the super-object Select probes.
    rs_probes_c:
        RSelect probes ``ceil(rs_probes_c · log2 n)`` random
        distinguishing coordinates per pair (paper: ``c``).
    rs_majority:
        Loser threshold (paper: 2/3).
    unknown_d_base:
        Doubling base for the unknown-``D`` search (paper: 2).
    """

    zr_leaf_c: float = 2.0
    zr_min_leaf: int = 4
    zr_vote_frac: float = 0.5
    sr_alpha_div: float = 5.0
    sr_s_factor: float = 1.0
    sr_final_bound_mult: float = 5.0
    sr_k_factor: float = 0.5
    sr_k_min: int = 2
    lr_groups_c: float = 1.0
    lr_small_d_c: float = 2.0
    lr_alpha_div: float = 2.0
    lr_coalesce_mult: float = 3.0
    lr_select_bound_mult: float = 3.0
    rs_probes_c: float = 2.0
    rs_majority: float = 2.0 / 3.0
    unknown_d_base: float = 2.0

    def __post_init__(self) -> None:
        if self.zr_leaf_c <= 0 or self.zr_min_leaf < 1:
            raise ValueError("zr_leaf_c must be positive and zr_min_leaf >= 1")
        if not (0 < self.zr_vote_frac <= 1):
            raise ValueError(f"zr_vote_frac must be in (0, 1], got {self.zr_vote_frac}")
        if self.sr_alpha_div < 1:
            raise ValueError("sr_alpha_div must be >= 1")
        if self.sr_s_factor <= 0 or self.sr_final_bound_mult < 1:
            raise ValueError("sr_s_factor must be positive and sr_final_bound_mult >= 1")
        if self.sr_k_min < 1 or self.sr_k_factor < 0:
            raise ValueError("sr_k_min must be >= 1 and sr_k_factor >= 0")
        if self.lr_groups_c <= 0 or self.lr_small_d_c <= 0 or self.lr_alpha_div < 1:
            raise ValueError("Large Radius constants must be positive (alpha_div >= 1)")
        if self.lr_coalesce_mult <= 0 or self.lr_select_bound_mult <= 0:
            raise ValueError("Large Radius multipliers must be positive")
        if self.rs_probes_c <= 0 or not (0.5 < self.rs_majority <= 1):
            raise ValueError("rs_probes_c must be positive and rs_majority in (1/2, 1]")
        if self.unknown_d_base <= 1:
            raise ValueError("unknown_d_base must exceed 1")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "Params":
        """The literal constants of the paper (asymptotically faithful;
        degenerate at laptop scale — every recursion bottoms out)."""
        return cls(
            zr_leaf_c=8.0,
            zr_min_leaf=4,
            zr_vote_frac=0.5,
            sr_alpha_div=5.0,
            sr_s_factor=100.0,
            sr_final_bound_mult=5.0,
            sr_k_factor=1.0,
            sr_k_min=1,
            lr_groups_c=1.0,
            lr_small_d_c=1.0,
            lr_alpha_div=2.0,
            lr_coalesce_mult=11.0,
            lr_select_bound_mult=11.0,
            rs_probes_c=4.0,
            rs_majority=2.0 / 3.0,
        )

    @classmethod
    def practical(cls) -> "Params":
        """Laptop-scale constants (the defaults)."""
        return cls()

    @classmethod
    def robust(cls) -> "Params":
        """Practical constants with a larger Zero Radius leaf threshold.

        The leaf constant controls how many community members land in
        every voting half: expected members at the deciding vote are
        ``~ zr_leaf_c · ln n / 2``.  The default (2.0) is ample for
        planted-community workloads, where competing vote candidates are
        diffuse; when several *structured* communities compete and the
        target frequency ``α`` is tight (e.g. equal to the smallest
        community's exact share), the concentration needs more slack —
        this preset's 5.0 restores reliability at roughly 2× the leaf
        probing cost (cf. the paper's ``8c`` constant in Fig. 2).
        """
        return cls(zr_leaf_c=5.0)

    def with_overrides(self, **kwargs: float) -> "Params":
        """Copy with individual constants replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def zr_leaf_threshold(self, n: int, alpha: float) -> int:
        """Zero Radius base-case threshold ``max(min_leaf, leaf_c·ln n/α)``."""
        if n < 1 or not (0 < alpha <= 1):
            raise ValueError(f"need n >= 1 and alpha in (0,1], got n={n}, alpha={alpha}")
        return max(self.zr_min_leaf, math.ceil(self.zr_leaf_c * math.log(max(n, 2)) / alpha))

    def zr_vote_threshold(self, alpha: float, half_size: int) -> int:
        """Minimum vote count for a candidate vector (``α/2`` of the half)."""
        return max(1, math.ceil(self.zr_vote_frac * alpha * half_size))

    def sr_num_parts(self, D: int) -> int:
        """Small Radius part count ``s = ceil(s_factor · D^{3/2})`` (≥ 1)."""
        if D < 0:
            raise ValueError(f"D must be non-negative, got {D}")
        return max(1, math.ceil(self.sr_s_factor * D ** 1.5))

    def sr_confidence(self, n: int) -> int:
        """Small Radius confidence ``K = max(k_min, ceil(k_factor · log2 n))``."""
        return max(self.sr_k_min, math.ceil(self.sr_k_factor * math.log2(max(n, 2))))

    def sr_popularity_threshold(self, alpha: float, n_players: int) -> int:
        """Popularity cut for step 1b (``αn/5`` in the paper)."""
        return max(1, math.ceil(alpha * n_players / self.sr_alpha_div))

    def lr_num_groups(self, D: int, n: int) -> int:
        """Large Radius group count ``ceil(c·D / ln n)`` (≥ 1)."""
        return max(1, math.ceil(self.lr_groups_c * D / math.log(max(n, 3))))

    def lr_player_copies(self, D: int, alpha: float, n: int) -> int:
        """Subsets per player, ``⌈D/(αn)⌉`` (≥ 1)."""
        return max(1, math.ceil(D / (alpha * n)))

    def lr_lambda(self, D: int, n: int) -> int:
        """Per-group distance bound ``λ = min(D, O(log n))`` (Lemma 5.5)."""
        return max(1, min(D, math.ceil(self.lr_small_d_c * math.log(max(n, 3)))))

    def small_d_threshold(self, n: int) -> int:
        """Fig. 1 dispatch: Small Radius handles ``D <= c·ln n``."""
        return math.ceil(self.lr_small_d_c * math.log(max(n, 3)))

    def rs_num_probes(self, n: int) -> int:
        """RSelect per-pair probe count ``ceil(c · log2 n)``."""
        return max(1, math.ceil(self.rs_probes_c * math.log2(max(n, 2))))
