"""Population-batched execution drivers — the ``probe_many`` fast path.

The paper's lockstep round model (Fig. 1, Theorem 1.1) makes all
players' probes within a round independent by construction, so the
per-player inner loops of the algorithm tower can be driven as *one*
coroutine per player with the pending probes of every player issued as a
single :meth:`~repro.billboard.oracle.ProbeOracle.probe_many` batch per
step.  The drivers here are **observation-equivalent** to the sequential
per-player loops: each player's probe sequence, probe count, and outcome
are exactly those of running :func:`~repro.core.select.select` /
:func:`~repro.core.rselect.rselect` in a loop — only the interleaving
*across* players changes (which the round model treats as simultaneous
anyway).  ``tests/test_batching_equivalence.py`` pins this contract with
golden digests.

Batching is on by default.  :func:`sequential_probes` forces the
reference per-player loops within a block — the A/B switch the
equivalence tests and benchmarks are built on::

    with sequential_probes():
        result = find_preferences(oracle, alpha, D, rng=seed)  # slow path

The toggle is thread-local, so a test forcing sequential execution does
not perturb concurrent runs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Generator, Iterator, Mapping, Sequence

import numpy as np

from repro.core.result import SelectOutcome

if TYPE_CHECKING:  # import cycle: billboard never imports core at runtime
    from repro.billboard.oracle import ProbeOracle
    from repro.core.params import Params
from repro.core.rselect import rselect_coroutine
from repro.core.select import select_coroutine

__all__ = [
    "batching_enabled",
    "sequential_probes",
    "batched_probes",
    "select_batched",
    "rselect_batched",
]

_state = threading.local()


def batching_enabled() -> bool:
    """Whether the batched (``probe_many``) fast path is active."""
    return getattr(_state, "enabled", True)


@contextmanager
def sequential_probes() -> Iterator[None]:
    """Force the sequential per-player reference path within the block."""
    prev = batching_enabled()
    _state.enabled = False
    try:
        yield
    finally:
        _state.enabled = prev


@contextmanager
def batched_probes() -> Iterator[None]:
    """Force the batched fast path within the block (undoes an outer
    :func:`sequential_probes`)."""
    prev = batching_enabled()
    _state.enabled = True
    try:
        yield
    finally:
        _state.enabled = prev


def _drive_batched(
    coroutines: dict[int, Generator[int, int, SelectOutcome]],
    probe_many: Callable[[np.ndarray, np.ndarray], np.ndarray],
    coord_to_object: np.ndarray | None,
) -> dict[int, SelectOutcome]:
    """Advance per-player coroutines, batching each step's pending probes.

    *probe_many* is called once per step with equal-length player/object
    arrays; per-player coroutine order (and thus each player's probe
    sequence) is preserved exactly.
    """
    outcomes: dict[int, SelectOutcome] = {}
    pending: dict[int, int] = {}
    for pl, co in coroutines.items():
        try:
            pending[pl] = next(co)
        except StopIteration as stop:
            outcomes[pl] = stop.value

    while pending:
        batch_players = np.fromiter(pending.keys(), dtype=np.intp, count=len(pending))
        coords = np.fromiter(pending.values(), dtype=np.intp, count=len(pending))
        batch_objects = coords if coord_to_object is None else coord_to_object[coords]
        values = probe_many(batch_players, batch_objects)
        next_pending: dict[int, int] = {}
        for pl, value in zip(batch_players, values):
            pl = int(pl)
            try:
                next_pending[pl] = coroutines[pl].send(int(value))
            except StopIteration as stop:
                outcomes[pl] = stop.value
        pending = next_pending
    return outcomes


def select_batched(
    oracle: ProbeOracle,
    players: np.ndarray,
    candidates: np.ndarray | Mapping[int, np.ndarray],
    bound: int,
    coord_to_object: np.ndarray,
) -> dict[int, SelectOutcome]:
    """Run one Select per player, batching probes across players.

    Every player runs the *identical* Fig. 3 procedure over the same
    candidate set (via :func:`~repro.core.select.select_coroutine`), so
    per-player outcomes and probe sequences are exactly those of calling
    :func:`~repro.core.select.select` in a loop.  The only change is
    mechanical: at each step, all players' pending coordinate probes are
    issued as one ``probe_many`` batch — the model's "players probe in
    parallel", and an order-of-magnitude fewer Python-level oracle calls
    on population-scale adoptions.

    Parameters
    ----------
    oracle:
        The probe gate — anything exposing ``probe_many(players,
        objects) -> values`` (a :class:`~repro.billboard.oracle.ProbeOracle`
        or a value-space adapter such as the super-object batcher).
    players:
        Global player indices, one Select per player.
    candidates:
        ``(k, L)`` candidate matrix shared by all players, or a mapping
        ``player -> (k_p, L)`` matrix for per-player candidate sets
        (Small Radius step 2 selects among each player's own stitched
        vectors).
    bound:
        Distance bound ``D``.
    coord_to_object:
        Length-``L`` map from candidate-column index to global object.

    Returns
    -------
    dict
        ``player -> SelectOutcome``.
    """
    players = np.asarray(players, dtype=np.intp)
    coord_to_object = np.asarray(coord_to_object, dtype=np.intp)
    per_player = isinstance(candidates, Mapping)
    if not per_player and coord_to_object.shape != (np.asarray(candidates).shape[1],):
        raise ValueError(
            f"coord_to_object must have length {np.asarray(candidates).shape[1]}, "
            f"got {coord_to_object.shape}"
        )
    coroutines: dict[int, Generator[int, int, SelectOutcome]] = {}
    for pl in players:
        cand = candidates[int(pl)] if per_player else candidates
        coroutines[int(pl)] = select_coroutine(cand, bound)
    return _drive_batched(coroutines, oracle.probe_many, coord_to_object)


def rselect_batched(
    oracle: ProbeOracle,
    players: np.ndarray,
    candidates: np.ndarray | Mapping[int, np.ndarray],
    n_population: int,
    *,
    params: Params | None = None,
    rngs: Sequence[np.random.Generator] | Mapping[int, np.random.Generator] | None = None,
    coord_to_object: np.ndarray | None = None,
) -> dict[int, SelectOutcome]:
    """Run one RSelect per player, batching probes across players.

    The batched twin of :func:`~repro.core.rselect.rselect`, with the
    same observation-equivalence contract as :func:`select_batched`:
    each player's tournament consumes its *own* generator from *rngs*,
    so coordinate samples — and therefore outcomes — are bit-identical
    to the sequential loop.

    Parameters
    ----------
    oracle:
        Probe gate exposing ``probe_many``.
    players:
        Global player indices.
    candidates:
        Shared ``(k, L)`` matrix or mapping ``player -> (k_p, L)``.
    n_population:
        The ``n`` in the per-pair ``c·log n`` probe count.
    params:
        Algorithm constants (see :class:`~repro.core.params.Params`).
    rngs:
        Per-player generators: a mapping ``player -> Generator`` or a
        sequence aligned with *players*.  ``None`` gives every player a
        fresh nondeterministic stream.
    coord_to_object:
        Optional candidate-column → global-object map (identity when
        ``None``; RSelect over full rows probes global coordinates
        directly).
    """
    players = np.asarray(players, dtype=np.intp)
    per_player = isinstance(candidates, Mapping)
    if coord_to_object is not None:
        coord_to_object = np.asarray(coord_to_object, dtype=np.intp)

    def rng_for(position: int, player: int) -> np.random.Generator | None:
        if rngs is None:
            return None
        if isinstance(rngs, Mapping):
            return rngs[player]
        return rngs[position]

    coroutines: dict[int, Generator[int, int, SelectOutcome]] = {}
    for pos, pl in enumerate(players):
        cand = candidates[int(pl)] if per_player else candidates
        coroutines[int(pl)] = rselect_coroutine(
            cand, n_population, params=params, rng=rng_for(pos, int(pl))
        )
    return _drive_batched(coroutines, oracle.probe_many, coord_to_object)
