"""Algorithm Zero Radius — identical-preference communities (Fig. 2).

Handles ``D = 0``: at least ``αn`` players share *exactly* the same value
vector.  The recursion randomly halves both the player set and the object
set (public coins), solves each half recursively, and then lets each half
adopt the other half's objects by **voting**: any vector output by at
least an ``α/2`` fraction of the other half becomes a candidate, and each
player picks among candidates with ``Select`` at distance bound 0.
Theorem 3.1: all community members output the exact community vector
w.h.p., at ``O(log n / α)`` probes per player.

Generalisations used by the paper itself (Section 3.1):

* **abstract Probe** — probing goes through a *valued object space*; the
  primitive space probes the oracle directly, while
  :class:`SuperObjectSpace` treats a whole object group as one "object"
  whose value is the index of the best Coalesce candidate, found by an
  inner ``Select`` (this is how Large Radius step 4 reuses Zero Radius);
* **non-binary values** — candidate vectors are small-int vectors, not
  necessarily 0/1.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro import obs
from repro.billboard.oracle import ProbeOracle
from repro.core.batching import batching_enabled, select_batched
from repro.core.params import Params
from repro.core.partition import random_halves
from repro.core.result import SelectOutcome
from repro.core.select import select
from repro.utils.rng import as_generator, spawn
from repro.utils.rowset import popular_rows

__all__ = ["ValueSpace", "PrimitiveSpace", "SuperObjectSpace", "zero_radius", "NO_OUTPUT"]

#: Fill value marking "this player did not participate / no output yet".
NO_OUTPUT = np.int16(-32768)


class ValueSpace(Protocol):
    """A probe-able space of valued objects (the abstract ``Probe`` of §3.1)."""

    @property
    def n_objects(self) -> int:
        """Number of (possibly virtual) objects."""
        ...

    def probe(self, player: int, obj: int) -> int:
        """One charged probe of local object *obj* by *player*."""
        ...

    def probe_all(self, player: int, objects: np.ndarray) -> np.ndarray:
        """Probe every local object in *objects* (base case of Fig. 2)."""
        ...


class PrimitiveSpace:
    """Valued object space over real objects, probing the oracle directly."""

    def __init__(self, oracle: ProbeOracle, objects: np.ndarray) -> None:
        self.oracle = oracle
        self.objects = np.asarray(objects, dtype=np.intp)
        if self.objects.ndim != 1 or self.objects.size == 0:
            raise ValueError("objects must be a non-empty 1-D index array")

    @property
    def n_objects(self) -> int:
        return int(self.objects.size)

    def probe(self, player: int, obj: int) -> int:
        return self.oracle.probe(player, int(self.objects[obj]))

    def probe_all(self, player: int, objects: np.ndarray) -> np.ndarray:
        return self.oracle.probe_all(player, self.objects[np.asarray(objects, dtype=np.intp)])

    def probe_block(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Batch base-case probing: every player probes every object.

        One vectorized oracle call instead of a per-player loop; the cost
        model is identical (each (player, object) pair is one charged
        probe).  Returns a ``(len(players), len(objects))`` value matrix.
        """
        players = np.asarray(players, dtype=np.intp)
        objects = np.asarray(objects, dtype=np.intp)
        flat_players = np.repeat(players, objects.size)
        flat_objects = np.tile(self.objects[objects], players.size)
        values = self.oracle.probe_many(flat_players, flat_objects)
        return values.reshape(players.size, objects.size)

    def select_batched(
        self, players: np.ndarray, candidates: np.ndarray, bound: int, local_coords: np.ndarray
    ) -> dict[int, SelectOutcome]:
        """Population-batched Select (see :func:`repro.core.batching.select_batched`)."""
        coord_map = self.objects[np.asarray(local_coords, dtype=np.intp)]
        return select_batched(self.oracle, players, candidates, bound, coord_map)


class SuperObjectSpace:
    """Large Radius step 4's space: one "object" per object group.

    The value of super-object ``l`` for player ``p`` is the index of the
    candidate in ``B_l`` (the group's Coalesce output) closest to ``p``'s
    hidden vector on that group; a logical probe runs ``Select`` over the
    ``B_l`` candidates with the given distance bound, costing
    ``O(|B_l| · bound)`` primitive probes.
    """

    def __init__(
        self,
        oracle: ProbeOracle,
        groups: Sequence[np.ndarray],
        candidates: Sequence[np.ndarray],
        bound: int,
    ) -> None:
        if len(groups) != len(candidates) or not groups:
            raise ValueError("groups and candidates must be equal-length and non-empty")
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        self.oracle = oracle
        self.groups = [np.asarray(g, dtype=np.intp) for g in groups]
        self.candidates = [np.ascontiguousarray(c) for c in candidates]
        for l, (g, c) in enumerate(zip(self.groups, self.candidates)):
            if c.ndim != 2 or c.shape[0] < 1 or c.shape[1] != g.size:
                raise ValueError(f"group {l}: candidates shape {c.shape} does not match {g.size} objects")
        self.bound = int(bound)

    @property
    def n_objects(self) -> int:
        return len(self.groups)

    def probe(self, player: int, obj: int) -> int:
        group = self.groups[obj]
        cand = self.candidates[obj]

        def probe_coord(j: int) -> int:
            return self.oracle.probe(player, int(group[j]))

        return select(cand, probe_coord, self.bound).index

    def probe_all(self, player: int, objects: np.ndarray) -> np.ndarray:
        return np.asarray([self.probe(player, int(o)) for o in np.asarray(objects)], dtype=np.int16)

    def probe_block(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        """Batch base-case probing: every player resolves every super-object.

        For each super-object the inner Selects of all players run as one
        :func:`~repro.core.batching.select_batched` drive, so the number
        of Python-level oracle calls is per *batch step*, not per player.
        Per-player probe sequences match :meth:`probe_all` exactly: a
        player still resolves the listed super-objects in order, and the
        inner Select probes each group's coordinates in its deterministic
        Fig. 3 order.
        """
        players = np.asarray(players, dtype=np.intp)
        objects = np.asarray(objects, dtype=np.intp)
        out = np.empty((players.size, objects.size), dtype=np.int16)
        for col, l in enumerate(objects):
            outcomes = select_batched(
                self.oracle, players, self.candidates[int(l)], self.bound, self.groups[int(l)]
            )
            for row, pl in enumerate(players):
                out[row, col] = outcomes[int(pl)].index
        return out

    def select_batched(
        self, players: np.ndarray, candidates: np.ndarray, bound: int, local_coords: np.ndarray
    ) -> dict[int, SelectOutcome]:
        """Population-batched Select over super-object-valued candidates.

        The outer Fig. 3 coroutines yield super-object coordinates; each
        logical probe is an inner Select over that group's Coalesce
        candidates, and the inner Selects of all players pending on the
        same group run as one batched drive.
        """
        coord_map = np.asarray(local_coords, dtype=np.intp)
        return select_batched(players=players, candidates=candidates, bound=bound,
                              coord_to_object=coord_map, oracle=_SuperBatchProbe(self))


class _SuperBatchProbe:
    """``probe_many`` adapter over a :class:`SuperObjectSpace`.

    ``probe_many(players, super_objects)`` resolves each (player,
    super-object) pair by running the group's inner Select; players
    pending on the same group are batched together.  Grouping only
    reorders work *across* players — each player's own probe stream is
    untouched, preserving observation-equivalence with the scalar
    :meth:`SuperObjectSpace.probe`.
    """

    def __init__(self, space: "SuperObjectSpace") -> None:
        self.space = space

    def probe_many(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        values = np.empty(players.size, dtype=np.int16)
        for l in np.unique(objects):
            mask = objects == l
            outcomes = select_batched(
                self.space.oracle,
                players[mask],
                self.space.candidates[int(l)],
                self.space.bound,
                self.space.groups[int(l)],
            )
            values[mask] = [outcomes[int(p)].index for p in players[mask]]
        return values


def _vote_candidates(rows: np.ndarray, min_votes: int) -> np.ndarray:
    """Unique rows supported by at least *min_votes* voters (see
    :func:`repro.utils.rowset.popular_rows` for the off-nominal
    plurality fallback and the vectorized dedup underneath)."""
    return popular_rows(np.ascontiguousarray(rows), min_votes)


def zero_radius(
    space: ValueSpace,
    players: np.ndarray,
    alpha: float,
    *,
    n_global: int,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Run Algorithm Zero Radius (Fig. 2) for a set of players.

    Parameters
    ----------
    space:
        The valued object space to solve (primitive or super-object).
    players:
        Global indices of the participating players.
    alpha:
        Frequency parameter of the target community *within* the
        participating player set.
    n_global:
        Global population size ``n`` (sets the leaf threshold and the
        w.h.p. confidence; the paper's thresholds are in terms of the
        global ``n`` even for recursive sub-calls).
    params, rng:
        Constants and the public-coin generator.

    Returns
    -------
    numpy.ndarray
        ``(n_global, space.n_objects)`` int16 matrix; rows of
        non-participating players hold :data:`NO_OUTPUT`.
    """
    players = np.asarray(players, dtype=np.intp)
    if players.ndim != 1 or players.size == 0:
        raise ValueError("players must be a non-empty 1-D index array")
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    p = params or Params.practical()
    # Derive a child stream rather than consuming the caller's raw seed:
    # a workload generator seeded with the same integer would otherwise
    # share its permutation sequence with our public coins, letting the
    # first halving step accidentally reproduce (and thus split along)
    # the planted-community permutation.
    gen = spawn(as_generator(rng))
    L = space.n_objects
    out = np.full((n_global, L), NO_OUTPUT, dtype=np.int16)
    threshold = p.zr_leaf_threshold(n_global, alpha)

    def recurse(P: np.ndarray, O: np.ndarray) -> None:
        # Step 1: base case — probe everything.
        if min(P.size, O.size) < threshold:
            obs.incr("zero_radius.leaves")
            block = getattr(space, "probe_block", None) if batching_enabled() else None
            if block is not None:
                out[np.ix_(P, O)] = block(P, O)
            else:
                for player in P:
                    out[player, O] = space.probe_all(int(player), O)
            return
        # Step 2: public-coin halving of players and objects.
        obs.incr("zero_radius.halvings")
        P1, P2 = random_halves(P, gen)
        O1, O2 = random_halves(O, gen)
        # Step 3: both halves recurse on their own objects.
        recurse(P1, O1)
        recurse(P2, O2)
        # Step 4: each half adopts the other half's objects by voting +
        # Select at distance bound 0.
        for adopters, voters, voted_objs in ((P1, P2, O2), (P2, P1, O1)):
            votes = out[np.ix_(voters, voted_objs)]
            min_votes = p.zr_vote_threshold(alpha, voters.size)
            candidates = _vote_candidates(votes, min_votes)
            obs.incr("zero_radius.vote_candidates", int(candidates.shape[0]))
            if candidates.shape[0] == 1:
                # A single candidate needs no probes (X(V) is empty).
                out[np.ix_(adopters, voted_objs)] = candidates[0]
                continue
            batched = getattr(space, "select_batched", None) if batching_enabled() else None
            if batched is not None:
                # Population-batched Select: identical per-player probe
                # sequences and outcomes, one probe_many call per step.
                outcomes = batched(adopters, candidates, 0, voted_objs)
                for player, outcome in outcomes.items():
                    out[player, voted_objs] = outcome.vector
                continue
            for player in adopters:
                def probe_coord(j: int, _pl: int = int(player)) -> int:
                    return space.probe(_pl, int(voted_objs[j]))

                outcome = select(candidates, probe_coord, 0)
                out[player, voted_objs] = outcome.vector

    with obs.span(
        "zero_radius",
        oracle=getattr(space, "oracle", None),
        players=int(players.size),
        objects=int(L),
    ):
        recurse(np.sort(players), np.arange(L, dtype=np.intp))
    return out
