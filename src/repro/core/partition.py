"""Public-coin random partitions and the Lemma 4.1 success predicate.

Lemma 4.1 is the combinatorial heart of Small Radius: partition the
object set into ``s`` parts, each coordinate independently and uniformly;
if the collaborating vectors have pairwise distance ≤ ``d`` and
``s ≥ 100·d^{3/2}``, then with probability > 1/2 *every* part
simultaneously has a 1/5-fraction of the vectors agreeing exactly on it.
Small Radius repeats the partition ``K`` times to boost the constant
success probability to ``1 − 2^{−Ω(K)}``.

The partitions here are *public coins*: all players observe the same
partition, which the single-process simulation realises by drawing them
once from the phase generator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.rowset import unique_rows
from repro.utils.validation import check_pos_int

__all__ = [
    "random_partition",
    "partition_parts",
    "partition_players",
    "is_partition_successful",
]


def random_partition(
    n_items: int,
    s: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Assign each of *n_items* independently and uniformly to one of *s* parts.

    Exactly the Lemma 4.1 process.  Returns a length-``n_items`` label
    array with values in ``[0, s)``; parts may be empty.
    """
    n_items = check_pos_int(n_items, "n_items")
    s = check_pos_int(s, "s")
    gen = as_generator(rng)
    return gen.integers(0, s, size=n_items)


def partition_parts(labels: np.ndarray, s: int) -> list[np.ndarray]:
    """Materialise label array into ``s`` index arrays (ascending indices)."""
    labels = np.asarray(labels)
    s = check_pos_int(s, "s")
    if labels.size and (labels.min() < 0 or labels.max() >= s):
        raise ValueError(f"labels out of range [0, {s})")
    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    bounds = np.searchsorted(sorted_labels, np.arange(s + 1))
    return [np.sort(order[bounds[i] : bounds[i + 1]]) for i in range(s)]


def random_halves(
    items: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random balanced split of *items* into two halves (Zero Radius step 2)."""
    items = np.asarray(items)
    perm = rng.permutation(items)
    half = items.size // 2
    return np.sort(perm[:half]), np.sort(perm[half:])


def partition_players(
    n_players: int,
    n_groups: int,
    copies: int,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Large Radius step 1: assign each player to *copies* random groups.

    Each player joins ``copies`` distinct groups chosen uniformly.  Any
    group left empty afterwards is topped up with a random player so that
    downstream Small Radius invocations are well-defined (the paper's
    parameter regime makes empty groups vanishingly unlikely; at laptop
    scale we guard explicitly).
    """
    n_players = check_pos_int(n_players, "n_players")
    n_groups = check_pos_int(n_groups, "n_groups")
    copies = check_pos_int(copies, "copies")
    copies = min(copies, n_groups)
    gen = as_generator(rng)

    membership: list[list[int]] = [[] for _ in range(n_groups)]
    if copies == 1:
        labels = gen.integers(0, n_groups, size=n_players)
        for p in range(n_players):
            membership[labels[p]].append(p)
    else:
        for p in range(n_players):
            for g in gen.choice(n_groups, size=copies, replace=False):
                membership[int(g)].append(p)

    for g in range(n_groups):
        if not membership[g]:
            membership[g].append(int(gen.integers(0, n_players)))
    return [np.unique(np.asarray(members, dtype=np.intp)) for members in membership]


def is_partition_successful(
    vectors: np.ndarray,
    labels: np.ndarray,
    s: int,
    frac: float = 0.2,
) -> bool:
    """Lemma 4.1 success predicate.

    True iff for *every* part ``i`` there is a set of at least
    ``frac · M`` input rows that agree *exactly* on the coordinates of
    part ``i`` (the paper uses ``frac = 1/5``).

    Empty parts are vacuously successful (every vector agrees on zero
    coordinates).
    """
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    M = vectors.shape[0]
    if M == 0:
        raise ValueError("vectors must be non-empty")
    if not (0 < frac <= 1):
        raise ValueError(f"frac must be in (0, 1], got {frac}")
    need = math.ceil(frac * M)
    for part in partition_parts(labels, s):
        if part.size == 0:
            continue
        sub = np.ascontiguousarray(vectors[:, part])
        _, counts = unique_rows(sub, return_counts=True)
        if counts.max() < need:
            return False
    return True
