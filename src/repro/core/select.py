"""Algorithm Select — deterministic Choose-Closest with a distance bound.

Implements Fig. 3 of the paper.  Given a set ``V`` of ``k`` candidate
vectors (over ``{0, 1, ?}``; values may more generally be any small ints,
as in the super-object reuse) and a player who can probe coordinates of
its own hidden vector, Select returns the candidate closest to the
player's vector — *exactly*, provided some candidate is within the given
distance bound ``D`` (Theorem 3.2), probing at most ``k·(D+1)``
coordinates.

The procedure:

1. repeatedly probe the first not-yet-probed coordinate on which two
   surviving candidates differ (both non-"?" and unequal), discarding any
   candidate that accumulates more than ``D`` disagreements with the
   probed values;
2. stop when the surviving candidates agree on every unprobed coordinate
   (or all distinguishing coordinates are probed); output the
   lexicographically-first candidate among those closest to the player on
   the probed set.

Per the paper's remark, Select *disregards probes done before its
execution* — every probe here is a fresh, charged invocation, which is
exactly what the cost bound charges.

Off-nominal robustness (not covered by the paper's precondition): if
*every* candidate exceeds the bound, we return the best candidate over
the probed coordinates with ``exhausted=True`` instead of failing, so
outer layers with guessed bounds degrade gracefully.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from repro.core.result import SelectOutcome
from repro.metrics import kernels
from repro.metrics.bitpack import differing_columns, pack_rows
from repro.utils.validation import WILDCARD

__all__ = ["select", "select_coroutine", "select_candidate_index", "distinguishing_coords"]


def distinguishing_coords(candidates: np.ndarray) -> np.ndarray:
    """``X(V)``: coordinates on which some two candidate rows differ.

    "Differ" is in the ``d̃`` sense: both entries non-"?" and unequal.
    Returns coordinate indices in ascending order.

    Wildcard-free 0/1 candidate sets (the vote candidates every adopter
    Selects over) take the bit-packed OR/AND-reduce path
    (:func:`repro.metrics.bitpack.differing_columns`) — identical
    indices, an eighth of the memory traffic.
    """
    cand = np.asarray(candidates)
    if cand.ndim != 2:
        raise ValueError(f"candidates must be 2-D, got shape {cand.shape}")
    if cand.shape[0] <= 1:
        return np.empty(0, dtype=np.intp)
    if (
        cand.dtype.kind in "iub"
        and cand.shape[1] > 0
        and int(cand.min()) >= 0
        and int(cand.max()) <= 1
    ):
        return differing_columns(pack_rows(cand), cand.shape[1])
    valid = cand != WILDCARD
    # A column has two differing non-? entries iff both a non-? 0/…/max
    # minimum and maximum exist and differ: mask wildcards to +inf/-inf.
    as_f = cand.astype(np.float64)
    lo = np.where(valid, as_f, np.inf).min(axis=0)
    hi = np.where(valid, as_f, -np.inf).max(axis=0)
    return np.flatnonzero(hi > lo)


#: Content-keyed memo of ``X(V)`` results.  Select runs are per player
#: but the candidate sets are shared — every adopter of a vote Selects
#: over the *same* matrix — so the batched drivers and the serving
#: runtime hit this cache ``n - 1`` times out of ``n``.  FIFO-capped;
#: cached arrays are shared and must not be mutated by callers.
_X_CACHE: dict[tuple[int, int, str, bytes], np.ndarray] = {}
_X_CACHE_CAP = 256


def _x_coords_cached(cand: np.ndarray) -> np.ndarray:
    if cand.shape[0] <= 1:
        return np.empty(0, dtype=np.intp)
    key = (cand.shape[0], cand.shape[1], cand.dtype.str, cand.tobytes())
    hit = _X_CACHE.get(key)
    if hit is None:
        hit = distinguishing_coords(cand)
        if len(_X_CACHE) >= _X_CACHE_CAP:
            _X_CACHE.pop(next(iter(_X_CACHE)))
        _X_CACHE[key] = hit
    return hit


def _lex_first(candidates: np.ndarray, indices: np.ndarray) -> int:
    """Index (into *candidates*) of the lexicographically-first row among *indices*."""
    best = int(indices[0])
    best_key = candidates[best].tobytes()
    for i in indices[1:]:
        key = candidates[int(i)].tobytes()
        if key < best_key:
            best, best_key = int(i), key
    return best


def select_coroutine(
    candidates: np.ndarray,
    bound: int,
) -> Generator[int, int, SelectOutcome]:
    """Algorithm Select as a coroutine: yields coordinates, receives values.

    The single source of truth for Fig. 3's logic.  :func:`select`
    drives it with a probe callable; the round engine's player programs
    drive it by forwarding the yielded coordinates as ``Probe`` actions.
    The generator's return value is the :class:`SelectOutcome`.
    """
    cand = np.ascontiguousarray(candidates)
    if cand.ndim != 2 or cand.shape[0] < 1:
        raise ValueError(f"candidates must be a non-empty 2-D matrix, got shape {cand.shape}")
    if bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    k, L = cand.shape

    alive = np.ones(k, dtype=bool)
    disagreements = np.zeros(k, dtype=np.int64)
    probed = np.zeros(L, dtype=bool)
    n_probes = 0

    # Column-major int16 staging for the fused per-probe scan: the scan
    # kernel reads one contiguous column per probe, so the candidate
    # matrix is transposed once up front (when its values fit int16 —
    # always, for {0, 1, ?} and super-object alphabets; anything wider
    # scans the original columns through the kernel's generic path).
    scan_cols: np.ndarray | None = None
    if cand.dtype.kind in "iub" and (
        cand.size == 0 or (int(cand.min()) >= -(2**15) and int(cand.max()) < 2**15)
    ):
        scan_cols = np.asfortranarray(cand, dtype=np.int16)

    # Step 1: probe distinguishing coordinates in ascending order,
    # recomputing X(V) whenever the candidate set shrinks.
    x_coords = _x_coords_cached(cand)
    cursor = 0
    while True:
        # advance to the first unprobed coordinate of X(V)
        while cursor < x_coords.size and probed[x_coords[cursor]]:
            cursor += 1
        if cursor >= x_coords.size:
            break  # all of X(V) probed (or X(V) empty)
        j = int(x_coords[cursor])
        value = int((yield j))
        n_probes += 1
        probed[j] = True
        # Fused scan (repro.metrics.kernels.scan_column): bump every
        # contradicted candidate's disagreement count and retire those
        # that crossed the bound, in one pass over the column.
        col = scan_cols[:, j] if scan_cols is not None else cand[:, j]
        eliminated = kernels.scan_column(col, value, WILDCARD, bound, disagreements, alive)
        if eliminated:
            if not alive.any():
                break
            x_coords = _x_coords_cached(np.ascontiguousarray(cand[alive]))
            # distinguishing_coords indexes into the alive submatrix's
            # columns directly (columns are shared), so no remap needed —
            # but it returns column indices of the full matrix since we
            # passed full-width rows.
            cursor = 0

    # Step 2: among survivors, pick those closest on the probed set Y and
    # output the lexicographically first.  `disagreements` already counts
    # exactly the probed-coordinate mismatches.
    pool = np.flatnonzero(alive)
    exhausted = pool.size == 0
    if exhausted:
        pool = np.arange(k)
    dist_y = disagreements[pool]
    closest = pool[dist_y == dist_y.min()]
    winner = _lex_first(cand, closest)
    return SelectOutcome(index=winner, vector=cand[winner].copy(), probes=n_probes, exhausted=exhausted)


def select(
    candidates: np.ndarray,
    probe: Callable[[int], int],
    bound: int,
) -> SelectOutcome:
    """Run Algorithm Select (Fig. 3).

    Parameters
    ----------
    candidates:
        ``(k, L)`` integer matrix of candidate vectors; entries may be
        ``-1`` ("?").  ``k >= 1``.
    probe:
        Callable mapping a local coordinate index to the player's hidden
        value there.  Each call is one charged probe.
    bound:
        The distance bound ``D >= 0``; the guarantee requires some
        candidate within ``d̃``-distance ``D`` of the player.

    Returns
    -------
    SelectOutcome
        Chosen candidate (index + copy), probes spent, and whether the
        bound was exhausted (off-nominal).
    """
    gen = select_coroutine(candidates, bound)
    try:
        coord = next(gen)
        while True:
            coord = gen.send(probe(coord))
    except StopIteration as stop:
        return stop.value


def select_candidate_index(
    candidates: np.ndarray,
    probe: Callable[[int], int],
    bound: int,
) -> int:
    """Convenience wrapper around :func:`select` returning only the index."""
    return select(candidates, probe, bound).index


def __getattr__(name: str) -> object:
    # select_batched moved to repro.core.batching (the population-batched
    # execution layer) in the repro.api facade redesign.
    if name == "select_batched":
        import warnings

        warnings.warn(
            "repro.core.select.select_batched has moved to "
            "repro.core.batching.select_batched; import it from there "
            "(or use the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.batching import select_batched

        return select_batched
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
