"""Parameter estimation helpers (Section 6's budget-driven α).

Section 6: "Given a bound on the running time of the algorithm ... we
can compute the smallest possible α and run the algorithm with it", and
"for any given α and a player p, there exists a minimal D = D_p(α) such
that at least an α fraction of the players are within distance D from
p".  This module provides both directions:

* :func:`alpha_for_budget` — invert the Zero Radius cost formula
  ``rounds ≈ zr_leaf_c·ln n/α`` to the smallest α a round budget can
  afford (the knob the anytime loop turns);
* :func:`budget_for_alpha` — the forward direction;
* :func:`empirical_d_of_alpha` — the ground-truth ``D_p(α)`` profile of
  an instance (an *evaluation* helper: it reads the hidden matrix, so
  algorithms must not call it — experiments use it to choose planted
  parameters and to check how tight the guarantees are).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import Params
from repro.metrics.hamming import pairwise_hamming
from repro.utils.validation import check_binary_matrix, check_fraction, check_pos_int

__all__ = ["alpha_for_budget", "budget_for_alpha", "empirical_d_of_alpha"]


def budget_for_alpha(alpha: float, n: int, params: Params | None = None) -> int:
    """Zero Radius round budget needed for frequency *alpha* (cost formula)."""
    alpha = check_fraction(alpha, "alpha")
    n = check_pos_int(n, "n")
    p = params or Params.practical()
    return p.zr_leaf_threshold(n, alpha)


def alpha_for_budget(budget: int, n: int, params: Params | None = None) -> float:
    """Smallest α affordable within *budget* probing rounds (Section 6).

    Inverts ``rounds = max(min_leaf, zr_leaf_c·ln n/α)``; returns 1.0
    when even α = 1 does not fit (caller should go solo), and is clamped
    to the ``log n / n ≤ α`` validity floor of the algorithms.
    """
    budget = check_pos_int(budget, "budget")
    n = check_pos_int(n, "n")
    p = params or Params.practical()
    alpha = p.zr_leaf_c * math.log(max(n, 2)) / budget
    floor = math.log(max(n, 2)) / n
    return float(min(1.0, max(alpha, floor)))


def empirical_d_of_alpha(prefs: np.ndarray, player: int, alphas: list[float]) -> dict[float, int]:
    """Ground-truth ``D_p(α)`` for one player (evaluation-only).

    For each α, the minimal D such that at least ``⌈αn⌉`` players
    (including *p* itself) lie within Hamming distance D of *p*.
    """
    prefs = check_binary_matrix(prefs, "prefs")
    n = prefs.shape[0]
    if not (0 <= player < n):
        raise ValueError(f"player {player} out of range [0, {n})")
    dists = np.sort(pairwise_hamming(prefs)[player])
    profile: dict[float, int] = {}
    for alpha in alphas:
        alpha = check_fraction(alpha, "alpha")
        k = max(1, math.ceil(alpha * n))
        profile[alpha] = int(dists[min(k, n) - 1])
    return profile
