"""Algorithm Small Radius — low-diameter communities (Fig. 4).

Handles any ``D`` at probing cost polynomial in ``D`` (so it is used
with ``D = O(log n)``).  One iteration:

1. randomly partition the objects into ``s = Θ(D^{3/2})`` parts (public
   coin — Lemma 4.1 guarantees that with constant probability *every*
   part has a 1/5-fraction of the community agreeing exactly on it);
2. run Zero Radius on every part with frequency ``α/5``;
3. collect the *popular* output vectors of each part (≥ ``αn/5``
   voters) and let each player adopt the closest popular vector via
   ``Select`` with bound ``D``; concatenating the parts yields the
   iteration's stitched candidate ``u_t(p)``.

``K`` independent iterations boost the constant success probability to
``1 − 2^{−Ω(K)}``; each player finally selects among its ``K`` stitched
candidates with bound ``5D`` (Lemma 4.3 proves every stitched vector of a
successful iteration is within ``5D`` of *every* community member).
Theorem 4.4: error ≤ ``5D`` w.h.p. at ``O(K·D^{3/2}(D + log n)/α)``
probing rounds.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.batching import batching_enabled, select_batched
from repro.core.params import Params
from repro.core.partition import partition_parts, random_partition
from repro.core.result import SelectOutcome
from repro.core.select import select
from repro.core.zero_radius import NO_OUTPUT, PrimitiveSpace, zero_radius
from repro.utils.rng import as_generator, spawn
from repro.utils.rowset import popular_rows

__all__ = ["small_radius"]


def _popular_rows(rows: np.ndarray, min_votes: int) -> np.ndarray:
    """Unique rows with at least *min_votes* supporters (plurality
    fallback capped at ``|rows| // min_votes``, cf. the ``5/α`` candidate
    bound in Theorem 4.4's accounting; vectorized dedup in
    :func:`repro.utils.rowset.popular_rows`)."""
    return popular_rows(np.ascontiguousarray(rows), min_votes)


def _select_each(
    oracle: ProbeOracle,
    players: np.ndarray,
    candidates: np.ndarray | dict[int, np.ndarray],
    bound: int,
    coord_to_object: np.ndarray,
) -> dict[int, SelectOutcome]:
    """Sequential reference twin of :func:`select_batched` (one scalar
    ``select`` per player); same per-player probe sequences and outcomes."""
    per_player = isinstance(candidates, dict)
    outcomes = {}
    for pl in players:
        cand = candidates[int(pl)] if per_player else candidates

        def probe_coord(j: int, _pl: int = int(pl)) -> int:
            return oracle.probe(_pl, int(coord_to_object[j]))

        outcomes[int(pl)] = select(cand, probe_coord, bound)
    return outcomes


def small_radius(
    oracle: ProbeOracle,
    players: np.ndarray,
    objects: np.ndarray,
    alpha: float,
    D: int,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    K: int | None = None,
) -> np.ndarray:
    """Run Algorithm Small Radius (Fig. 4) on an object subset.

    Parameters
    ----------
    oracle:
        The probe gate over the full hidden matrix.
    players, objects:
        Global indices of the participating players / objects (Large
        Radius invokes this on its per-group subsets; the Fig. 1 main
        algorithm passes everyone).
    alpha:
        Community frequency *within* the participating players.
    D:
        Distance bound: the target community has diameter ≤ ``D`` on the
        given objects.
    params, rng:
        Constants and public-coin generator.
    K:
        Confidence parameter (defaults to ``Θ(log n)`` via params).

    Returns
    -------
    numpy.ndarray
        ``(n_global, len(objects))`` int8 matrix of outputs in the
        *local* object order (column ``j`` is ``objects[j]``); rows of
        non-participating players hold ``NO_OUTPUT``.
    """
    players = np.asarray(players, dtype=np.intp)
    objects = np.asarray(objects, dtype=np.intp)
    if players.ndim != 1 or players.size == 0:
        raise ValueError("players must be a non-empty 1-D index array")
    if objects.ndim != 1 or objects.size == 0:
        raise ValueError("objects must be a non-empty 1-D index array")
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if D < 0:
        raise ValueError(f"D must be non-negative, got {D}")
    p = params or Params.practical()
    gen = as_generator(rng)
    n_global = oracle.n_players
    L = objects.size
    K = p.sr_confidence(n_global) if K is None else int(K)
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    s = min(p.sr_num_parts(D), L)
    zr_alpha = min(1.0, alpha / p.sr_alpha_div)
    pop_threshold = p.sr_popularity_threshold(alpha, players.size)

    # Step 1: K independent partition-and-solve iterations.
    stitched = np.full((K, n_global, L), NO_OUTPUT, dtype=np.int16)
    for t in range(K):
        iter_rng = spawn(gen)
        labels = random_partition(L, s, iter_rng)
        for part in partition_parts(labels, s):
            if part.size == 0:
                continue
            part_objects = objects[part]
            # Step 1b: Zero Radius on this part with frequency α/5.
            space = PrimitiveSpace(oracle, part_objects)
            with oracle.phase("small_radius/zero_radius"):
                zr_out = zero_radius(
                    space, players, zr_alpha, n_global=n_global, params=p, rng=spawn(iter_rng)
                )
            candidates = _popular_rows(zr_out[players], pop_threshold)
            # Step 1c: each player adopts the closest popular vector
            # (population-batched; per-player sequences unchanged).
            with oracle.phase("small_radius/part_select"):
                if candidates.shape[0] == 1:
                    stitched[t][np.ix_(players, part)] = candidates[0]
                elif batching_enabled():
                    outcomes = select_batched(oracle, players, candidates, D, part_objects)
                    for player, outcome in outcomes.items():
                        stitched[t, player, part] = outcome.vector
                else:
                    outcomes = _select_each(oracle, players, candidates, D, part_objects)
                    for player, outcome in outcomes.items():
                        stitched[t, player, part] = outcome.vector

    # Step 2: each player selects among its K stitched candidates with
    # bound 5D (Lemma 4.3); candidates are per-player, probing is batched.
    final_bound = int(np.ceil(p.sr_final_bound_mult * max(D, 1)))
    out = np.full((n_global, L), NO_OUTPUT, dtype=np.int16)
    with oracle.phase("small_radius/final_select"):
        if K == 1:
            out[players] = stitched[0, players, :]
        else:
            cand_by_player = {
                int(player): np.ascontiguousarray(stitched[:, player, :]) for player in players
            }
            driver = select_batched if batching_enabled() else _select_each
            outcomes = driver(oracle, players, cand_by_player, final_bound, objects)
            for player, outcome in outcomes.items():
                out[player] = outcome.vector
    return out.astype(np.int16)
