"""Algorithm Coalesce — probe-free clustering of posted vectors (Fig. 6).

Input: a multiset ``V`` of ``M`` vectors (the Small Radius outputs posted
on the billboard for one object group), a distance parameter ``D`` and a
frequency parameter ``α``.  Output (Theorem 5.3): at most ``1/α`` vectors
over ``{0, 1, ?}`` such that, whenever a subset ``V_T ⊆ V`` of at least
``αM`` vectors has pairwise distance ≤ ``D``, there is a *unique* output
vector that is closest (within ``2D``) to every member of ``V_T``, with
at most ``5D/α`` wildcard entries.

Two phases:

1. **Cover** — repeatedly discard vectors whose ball ``ball(v, D)`` holds
   fewer than ``αM`` vectors, then greedily pick the lexicographically
   first remaining vector into ``A`` and delete its ball.
2. **Merge** — while two cover vectors are within ``5D`` (in ``d̃``),
   replace them by their consensus: common values kept, conflicts (and
   any existing "?") become "?".  Wildcards only grow, which is what
   makes Lemma 5.1 (``d̃(v, rep(v)) ≤ dist(v, u)``) sound.

Coalesce never probes; all players compute it from identical billboard
state, so — being deterministic — all players obtain the same output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.metrics.tilde import tilde_pairwise
from repro.utils.validation import WILDCARD, check_value_matrix

__all__ = ["coalesce", "CoalesceResult"]


@dataclass(frozen=True)
class CoalesceResult:
    """Output of one Coalesce run.

    Attributes
    ----------
    vectors:
        ``(K, L)`` output matrix over ``{0, 1, ?}``, rows sorted
        lexicographically (a set, deterministically ordered).
    cover:
        The intermediate greedy cover ``A`` (before merging), for
        diagnostics and the Theorem 5.3 tests.
    """

    vectors: np.ndarray
    cover: np.ndarray

    @property
    def size(self) -> int:
        """Number of output vectors (Theorem 5.3: ≤ 1/α)."""
        return self.vectors.shape[0]


def _lex_order(rows: np.ndarray) -> np.ndarray:
    """Indices sorting *rows* lexicographically by content."""
    keys = [rows[i].tobytes() for i in range(rows.shape[0])]
    return np.asarray(sorted(range(len(keys)), key=keys.__getitem__), dtype=np.intp)


def coalesce(
    vectors: np.ndarray,
    D: int,
    alpha: float,
    *,
    merge_radius: int | None = None,
) -> CoalesceResult:
    """Run Algorithm Coalesce.

    Parameters
    ----------
    vectors:
        ``(M, L)`` multiset of vectors over ``{0, 1, ?}`` (paper: 0/1
        inputs; wildcards in inputs are tolerated and treated by ``d̃``).
    D:
        Ball radius (distance parameter).
    alpha:
        Frequency parameter; a vector survives phase 1 only if its ball
        holds at least ``ceil(α·M)`` vectors.
    merge_radius:
        Phase-2 merge threshold; defaults to the paper's ``5·D``.

    Returns
    -------
    CoalesceResult
    """
    V = check_value_matrix(vectors, "vectors")
    M = V.shape[0]
    if M == 0:
        raise ValueError("vectors must be non-empty")
    if D < 0:
        raise ValueError(f"D must be non-negative, got {D}")
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    radius = 5 * D if merge_radius is None else int(merge_radius)
    if radius < 0:
        raise ValueError(f"merge_radius must be non-negative, got {radius}")
    min_ball = math.ceil(alpha * M)

    # ------------------------------------------------------------------
    # Phase 1: greedy cover (steps 1-2 of Fig. 6)
    # ------------------------------------------------------------------
    dmat = tilde_pairwise(V)  # (M, M) d̃ distances, computed once
    within = dmat <= D
    alive = np.ones(M, dtype=bool)
    cover_rows: list[np.ndarray] = []
    while alive.any():
        # 2a: drop every vector whose ball within the current V is small.
        ball_sz = within[:, alive].sum(axis=1)
        drop = alive & (ball_sz < min_ball)
        if drop.any():
            alive &= ~drop
            if not alive.any():
                break
            continue  # re-check: removals may push others below threshold
        # 2b: lexicographically first remaining vector.
        idx_alive = np.flatnonzero(alive)
        first = idx_alive[_lex_order(V[idx_alive])[0]]
        # 2c: add to A, delete its ball.
        cover_rows.append(V[first].copy())
        alive &= ~within[first]
    cover = np.asarray(cover_rows, dtype=np.int8) if cover_rows else np.empty((0, V.shape[1]), dtype=np.int8)

    # ------------------------------------------------------------------
    # Phase 2: merge near pairs into consensus-with-wildcards (step 4)
    # ------------------------------------------------------------------
    B: list[np.ndarray] = [row.copy() for row in cover]
    merged = True
    while merged and len(B) > 1:
        merged = False
        for i in range(len(B)):
            for j in range(i + 1, len(B)):
                u, v = B[i], B[j]
                both = (u != WILDCARD) & (v != WILDCARD)
                if int(np.count_nonzero(both & (u != v))) <= radius:
                    consensus = np.where(both & (u == v), u, WILDCARD).astype(np.int8)
                    # Replace the pair by the consensus vector.
                    B = [B[t] for t in range(len(B)) if t not in (i, j)]
                    B.append(consensus)
                    merged = True
                    break
            if merged:
                break

    if B:
        out = np.asarray(B, dtype=np.int8)
        out = out[_lex_order(out)]
    else:
        out = np.empty((0, V.shape[1]), dtype=np.int8)
    return CoalesceResult(vectors=out, cover=cover)
