"""Problem-instance data model.

* :class:`~repro.model.community.Community` — a planted ``(α, D)``-typical
  set of players (Section 3's "simplifying assumptions").
* :class:`~repro.model.instance.Instance` — a hidden preference matrix plus
  the planted communities used for evaluation.
"""

from repro.model.community import Community
from repro.model.instance import Instance

__all__ = ["Community", "Instance"]
