"""The ``(α, D)``-typical set abstraction.

Section 3 of the paper: a set ``P*`` of players is *(α, D)-typical* when
``|P*| ≥ αn`` and its preference diameter is at most ``D``.  Workload
generators plant such sets and record them here so experiments can score
discrepancy/stretch exactly on the planted community.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Community"]


@dataclass(frozen=True)
class Community:
    """A planted typical set.

    Attributes
    ----------
    members:
        Sorted array of player indices in ``P*``.
    diameter:
        True Hamming diameter ``D(P*)`` of the members' preference vectors
        (measured, not just the generator's target).
    center:
        The generator's canonical preference vector for this community
        (useful for debugging; algorithms never see it).
    label:
        Human-readable tag (e.g. ``"community-0"``).
    """

    members: np.ndarray
    diameter: int
    center: np.ndarray | None = None
    label: str = "community"
    _hash_cache: int | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        members = np.asarray(self.members, dtype=np.intp)
        if members.ndim != 1 or members.size == 0:
            raise ValueError("members must be a non-empty 1-D index array")
        if np.unique(members).size != members.size:
            raise ValueError("members must be distinct")
        object.__setattr__(self, "members", np.sort(members))
        if self.diameter < 0:
            raise ValueError(f"diameter must be non-negative, got {self.diameter}")
        if self.center is not None:
            object.__setattr__(self, "center", np.asarray(self.center, dtype=np.int8))

    @property
    def size(self) -> int:
        """Number of players in the community."""
        return int(self.members.size)

    def alpha(self, n: int) -> float:
        """The frequency ``|P*| / n`` of this set within a population of *n*."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return self.size / n

    def contains(self, player: int) -> bool:
        """Whether *player* belongs to the community."""
        idx = np.searchsorted(self.members, player)
        return bool(idx < self.members.size and self.members[idx] == player)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Community):
            return NotImplemented
        return (
            self.diameter == other.diameter
            and self.label == other.label
            and np.array_equal(self.members, other.members)
        )

    def __hash__(self) -> int:
        return hash((self.label, self.diameter, self.members.tobytes()))
