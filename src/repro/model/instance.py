"""Problem instances: hidden preference matrix + planted ground truth.

An :class:`Instance` is what the *environment* knows; algorithms only
ever see it through a :class:`~repro.billboard.oracle.ProbeOracle`, which
enforces the paper's information model (player ``p`` can only reveal
entries of row ``v(p)``, one probe at a time, at unit cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.model.community import Community
from repro.utils.validation import check_binary_matrix

__all__ = ["Instance"]


@dataclass
class Instance:
    """A hidden ``n × m`` 0/1 preference matrix with planted communities.

    Attributes
    ----------
    prefs:
        The hidden matrix; ``prefs[p, o]`` is player *p*'s grade of
        object *o*.  Never handed to algorithms directly.
    communities:
        Planted :class:`Community` objects (possibly overlapping), used
        only for evaluation.
    name:
        Workload label for experiment tables.
    """

    prefs: np.ndarray
    communities: list[Community] = field(default_factory=list)
    name: str = "instance"

    def __post_init__(self) -> None:
        self.prefs = check_binary_matrix(self.prefs, "prefs")
        n = self.prefs.shape[0]
        for c in self.communities:
            if c.members.max(initial=-1) >= n:
                raise ValueError(f"community {c.label!r} references player >= n={n}")

    @property
    def n_players(self) -> int:
        """Number of players ``n``."""
        return self.prefs.shape[0]

    @property
    def n_objects(self) -> int:
        """Number of objects ``m``."""
        return self.prefs.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n, m)``."""
        return self.prefs.shape

    def main_community(self) -> Community:
        """The largest planted community (the ``P*`` experiments score on)."""
        if not self.communities:
            raise ValueError(f"instance {self.name!r} has no planted communities")
        return max(self.communities, key=lambda c: c.size)

    def community_alpha(self, community: Community | None = None) -> float:
        """Frequency ``α = |P*|/n`` of *community* (default: main community)."""
        c = community or self.main_community()
        return c.alpha(self.n_players)

    def measured_diameter(self, community: Community | None = None) -> int:
        """Recompute the true Hamming diameter of a community from ``prefs``."""
        c = community or self.main_community()
        return _diameter(self.prefs[c.members])

    def restrict_objects(self, objects: np.ndarray) -> "Instance":
        """A new instance over a subset of objects (community diameters re-measured)."""
        objects = np.asarray(objects, dtype=np.intp)
        sub = self.prefs[:, objects]
        comms = [
            Community(
                members=c.members,
                diameter=_diameter(sub[c.members]),
                center=None if c.center is None else np.asarray(c.center)[objects],
                label=c.label,
            )
            for c in self.communities
        ]
        return Instance(prefs=sub, communities=comms, name=f"{self.name}[{objects.size} objs]")

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Instance(name={self.name!r}, n={self.n_players}, m={self.n_objects}, communities={len(self.communities)})"
