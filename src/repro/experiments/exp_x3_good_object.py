"""X3 (extension) — the "one good object" protocol of reference [4].

Section 2 cites Awerbuch–Patt-Shamir–Peleg–Tuttle (SODA 2005): with a
set ``P`` of players sharing a common liked object,
``O(m + n log |P|)`` total probes suffice for *every* member of ``P`` to
find some liked object — against ``Θ(n·m/L)`` (``L`` = liked objects per
player) for blind solo exploration.

We sweep the sharing-set fraction ``α`` on sparse-likes matrices and
compare the recommendation protocol's total probes against the
solo-exploration baseline:

* members must always end satisfied;
* the protocol's advantage (baseline probes / protocol probes) must
  grow with ``|P|`` — the community amortises the ``m`` exploration cost.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.experiments.harness import ExperimentResult, register
from repro.extensions.good_object import good_object_protocol, solo_good_object
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.sparse import sparse_likes_instance

__all__ = ["run"]


@register("X3")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, **_: object) -> ExperimentResult:
    """Run extension experiment X3 (see module docstring)."""
    gen = as_generator(rng)
    n, m = (192, 768) if quick else (384, 1536)
    like_prob = 2.0 / m
    alphas = [0.125, 0.5] if quick else [0.0625, 0.125, 0.25, 0.5, 1.0]

    table = Table(
        title="X3: good-object protocol vs solo exploration (total probes)",
        columns=["alpha", "protocol_probes", "solo_probes", "advantage",
                 "members_satisfied", "solo_members_satisfied"],
    )
    advantages = []
    members_ok = True
    for alpha in alphas:
        inst, _common = sparse_likes_instance(n, m, alpha, like_prob, rng=int(gen.integers(2**31)))
        members = inst.main_community().members

        o1 = ProbeOracle(inst.prefs)
        proto = good_object_protocol(o1, rng=int(gen.integers(2**31)))
        o2 = ProbeOracle(inst.prefs)
        solo = solo_good_object(o2, rng=int(gen.integers(2**31)))

        adv = solo.total_probes / max(proto.total_probes, 1)
        advantages.append(adv)
        sat = float(proto.satisfied[members].mean())
        members_ok &= sat == 1.0
        table.add(
            alpha=alpha,
            protocol_probes=proto.total_probes,
            solo_probes=solo.total_probes,
            advantage=adv,
            members_satisfied=sat,
            solo_members_satisfied=float(solo.satisfied[members].mean()),
        )

    checks = {
        "every sharing-set member finds a liked object": members_ok,
        "protocol advantage grows with the sharing set": advantages[-1] > advantages[0],
        "protocol never worse than solo": all(a >= 1.0 for a in advantages),
    }
    return ExperimentResult(
        experiment="X3",
        claim="Billboard recommendations amortise exploration across the sharing set (ref. [4], §2)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n={n}, m={m}, like_prob={like_prob:.4f}",
    )
