"""E9 — the comparison the paper makes in prose: collaborative probing vs
prior approaches.

Three panels:

1. **Equal-budget quality** (planted ``D=0`` minority-community matrix):
   run Zero Radius, then give every baseline the *same* per-player probe
   budget Zero Radius used; compare member errors.  Claim: the paper's
   algorithm is exact at a budget where assumption-based baselines are
   far off, and go-it-alone needs the full ``m``.
2. **Equal-budget quality** (low-rank mixture matrix): same comparison on
   the SVD-friendly regime — honest reporting: here the spectral method
   is competitive, which is exactly the generative assumption it needs
   (Section 2).
3. **Speedup growth**: Zero Radius rounds vs ``m`` as ``n = m`` grows —
   the "who wins by what factor, where's the crossover" series.  The
   speedup must grow with ``n`` (crossover is at tiny ``n``; asymptotics
   dominate early for the ``D=0`` regime).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.knn import knn_baseline
from repro.baselines.majority import majority_baseline
from repro.baselines.solo import solo_baseline
from repro.baselines.svd import svd_baseline
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.model.instance import Instance
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.mixtures import mixture_instance
from repro.workloads.planted import planted_instance

__all__ = ["run"]


def _panel(
    table: Table,
    panel: str,
    inst: Instance,
    alpha: float,
    p: Params,
    gen: np.random.Generator,
) -> dict[str, float]:
    """Run ours + all baselines at matched budget; add rows, return mean errors."""
    comm = inst.main_community()
    n, m = inst.shape

    oracle = ProbeOracle(inst)
    ours = find_preferences(oracle, alpha, 0, params=p, rng=int(gen.integers(2**31)))
    budget = max(ours.rounds, 8)
    rows: dict[str, float] = {}

    def add(name: str, outputs: np.ndarray, rounds: int) -> None:
        rep = evaluate(outputs, inst.prefs, comm.members, diam=comm.diameter)
        table.add(panel=panel, algorithm=name, budget=rounds, mean_err=rep.mean_error,
                  worst_err=rep.discrepancy)
        rows[name] = rep.mean_error

    add("zero_radius (ours)", ours.outputs, ours.rounds)
    o2 = ProbeOracle(inst)
    add("solo(full)", solo_baseline(o2).outputs, m)
    o3 = ProbeOracle(inst)
    add("solo(budget)", solo_baseline(o3, budget=budget, rng=gen).outputs, budget)
    o4 = ProbeOracle(inst)
    add("majority", majority_baseline(o4, budget, rng=gen).outputs, budget)
    o5 = ProbeOracle(inst)
    add("knn", knn_baseline(o5, budget // 2, budget - budget // 2, rng=gen).outputs, budget)
    o6 = ProbeOracle(inst)
    add("svd", svd_baseline(o6, budget, rank=4, rng=gen).outputs, budget)
    return rows


@register("E9")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E9 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512

    table = Table(
        title="E9: ours vs baselines at matched probe budget",
        columns=["panel", "algorithm", "budget", "mean_err", "worst_err"],
    )

    adversarial = planted_instance(n, n, 0.25, 0, background="uniform", rng=int(gen.integers(2**31)))
    errs_adv = _panel(table, "planted-D0", adversarial, 0.25, p, gen)

    mix = mixture_instance(n, n, 4, noise=0.02, rng=int(gen.integers(2**31)))
    mix_alpha = mix.main_community().size / n
    errs_mix = _panel(table, "mixture", mix, mix_alpha, p, gen)

    # Panel 3: speedup growth of Zero Radius over solo.
    speed_table_rows = []
    ns = [128, 256, 512] if quick else [128, 256, 512, 1024, 2048]
    speedups = []
    for nn in ns:
        inst = planted_instance(nn, nn, 0.5, 0, rng=int(gen.integers(2**31)))
        oracle = ProbeOracle(inst)
        res = find_preferences(oracle, 0.5, 0, params=p, rng=int(gen.integers(2**31)))
        rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
        speedups.append(nn / res.rounds)
        table.add(panel="speedup", algorithm=f"zero_radius n={nn}", budget=res.rounds,
                  mean_err=rep.mean_error, worst_err=rep.discrepancy)
        speed_table_rows.append((nn, res.rounds))

    checks = {
        "ours exact on adversarial planted matrix": errs_adv["zero_radius (ours)"] == 0.0,
        "every equal-budget baseline worse on adversarial matrix": all(
            errs_adv[k] > 0 for k in ("solo(budget)", "majority", "knn", "svd")
        ),
        "speedup over solo grows with n": speedups[-1] > speedups[0],
    }
    notes = (
        "mixture panel: svd mean err "
        f"{errs_mix['svd']:.1f} vs ours {errs_mix['zero_radius (ours)']:.1f} — "
        "spectral methods are fine exactly when their generative assumption holds (cf. §2). "
        f"speedups over solo: {', '.join(f'n={a}: {s:.1f}x' for (a, _), s in zip(speed_table_rows, speedups))}"
    )
    return ExperimentResult(
        experiment="E9",
        claim="Collaborative probing beats equal-budget baselines on assumption-free inputs",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=notes,
    )
