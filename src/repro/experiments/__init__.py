"""Experiment suite E1–E12 (see DESIGN.md §2 for the index).

The paper is a theory extended abstract with no numeric tables of its
own; its evaluation surface is the set of theorems/lemmas.  Each module
here validates one of them empirically and prints the table/series a
systems paper would have shown.  ``benchmarks/`` wraps each experiment in
a pytest-benchmark target; EXPERIMENTS.md records claim-vs-measured.

Usage::

    from repro.experiments import run_experiment
    print(run_experiment("E1", quick=True).render())
"""

# Importing the modules registers them in the REGISTRY.
from repro.experiments import (  # noqa: F401
    exp_ablation_s,
    exp_anytime,
    exp_baselines,
    exp_coalesce,
    exp_large_radius,
    exp_lemma41,
    exp_rselect,
    exp_select,
    exp_small_radius,
    exp_svd_breakdown,
    exp_unknown_d,
    exp_x1_leaf_constant,
    exp_x2_dynamic,
    exp_x3_good_object,
    exp_x4_engine,
    exp_x5_confidence,
    exp_x6_repeats,
    exp_x7_byzantine,
    exp_x8_virtual,
    exp_zero_radius,
)
from repro.experiments.harness import REGISTRY, ExperimentResult, run_experiment

__all__ = ["REGISTRY", "ExperimentResult", "run_experiment"]
