"""Experiment harness shared by E1–E12.

Every experiment module exposes ``run(quick=True, rng=0) ->
ExperimentResult`` (``rng`` following the uniform ``int | Generator |
None`` contract, enforced by lint rule RPL008): a parameter sweep
producing a table (the paper has no numeric tables of its own — this
*is* the evaluation surface, one experiment per theorem/lemma, see
DESIGN.md §2) plus an automated
*shape check*: the pass/fail predicate asserting the theorem's claim on
the measured rows.

``quick=True`` shrinks sweeps to bench-friendly sizes; ``quick=False``
is the full sweep recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import obs
from repro.model.instance import Instance
from repro.parallel import SharedInstanceStore, run_trials
from repro.utils.tables import Table

__all__ = ["ExperimentResult", "REGISTRY", "register", "run_experiment", "sweep_trials"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    experiment:
        Experiment id, e.g. ``"E1"``.
    claim:
        One-line statement of the paper claim being validated.
    table:
        The measured sweep (what the bench prints).
    passed:
        Whether the automated shape check held.
    checks:
        Individual named check outcomes (name → bool).
    notes:
        Free-form commentary (fit exponents, caveats).
    """

    experiment: str
    claim: str
    table: Table
    passed: bool
    checks: dict[str, bool] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Human-readable report: claim, table, checks."""
        lines = [f"[{self.experiment}] {self.claim}", ""]
        lines.append(self.table.render())
        lines.append("")
        for name, ok in self.checks.items():
            lines.append(f"  check {name}: {'PASS' if ok else 'FAIL'}")
        lines.append(f"  overall: {'PASS' if self.passed else 'FAIL'}")
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)


#: Registry of experiment runners, id → run callable.
REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(
    experiment_id: str,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment ``run`` function under an id."""

    def deco(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in REGISTRY:
            raise ValueError(f"experiment {experiment_id} already registered")
        REGISTRY[experiment_id] = fn
        return fn

    return deco


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment by id (importing brings registration)."""
    if experiment_id not in REGISTRY:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}")
    with obs.span(f"experiment/{experiment_id}") as sp:  # repro: noqa[RPL011] — once per experiment, not a hot path
        result = REGISTRY[experiment_id](**kwargs)
        sp.set(passed=result.passed)
        obs.event("experiment.result", experiment=experiment_id, passed=result.passed)
    return result


def sweep_trials(
    worker: Callable[..., Any],
    instance: Instance,
    seeds: Sequence[int],
    *,
    parallel: bool | None = None,
    max_workers: int | None = None,
) -> list[Any]:
    """Run ``worker(handle, seed)`` for each seed against one shared instance.

    The sweep pattern every experiment repeats — many trials over one
    planted instance — with the instance published to shared memory
    once: *worker* (a module-level, picklable function) receives a
    :class:`~repro.parallel.SharedInstanceHandle` plus its trial seed
    and rebuilds the instance via ``handle.instance()``, instead of the
    dense matrix crossing the process-pool pipe per trial.  The segment
    is unlinked after the last trial returns.
    """
    with obs.span("sweep_trials", trials=len(seeds)) as sp:
        with SharedInstanceStore() as store:
            handle = store.publish(instance)
            results = run_trials(
                worker,
                [(handle, seed) for seed in seeds],
                parallel=parallel,
                max_workers=max_workers,
            )
        sp.set(n=int(instance.prefs.shape[0]), m=int(instance.prefs.shape[1]))
    return results
