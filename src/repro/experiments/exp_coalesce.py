"""E5 — Theorem 5.3: Coalesce's output invariants.

Build vector multisets with planted clusters (a ``VT`` of ≥ αM vectors
at pairwise distance ≤ D plus arbitrary chaff) and verify on every
instance:

* at most ``1/α`` output vectors;
* a *unique* output vector is the closest to all of ``VT``, within
  ``2D`` of each member (``d̃``);
* the representative carries at most ``5D/α`` wildcards;
* determinism: same input → identical output (all players agree).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import coalesce_max_outputs, coalesce_max_wildcards
from repro.core.coalesce import coalesce
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.tilde import tilde_dist_to_each, wildcard_count
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["run"]


def _clustered_multiset(
    M: int, L: int, D: int, alpha: float, n_chaff_clusters: int, gen: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Multiset with one planted VT of ceil(alpha*M) vectors; returns (V, VT_idx)."""
    size = int(np.ceil(alpha * M))
    center = gen.integers(0, 2, size=L, dtype=np.int8)
    V = gen.integers(0, 2, size=(M, L), dtype=np.int8)
    # chaff clusters (each below the alpha*M threshold)
    chaff_size = max(1, size // 2 - 1)
    cursor = size
    for _ in range(n_chaff_clusters):
        if cursor + chaff_size > M:
            break
        c = gen.integers(0, 2, size=L, dtype=np.int8)
        for i in range(cursor, cursor + chaff_size):
            row = c.copy()
            flips = gen.integers(0, D // 2 + 1)
            if flips:
                row[gen.choice(L, size=flips, replace=False)] ^= 1
            V[i] = row
        cursor += chaff_size
    for i in range(size):
        row = center.copy()
        flips = gen.integers(0, D // 2 + 1)
        if flips:
            row[gen.choice(L, size=flips, replace=False)] ^= 1
        V[i] = row
    return V, np.arange(size)


@register("E5")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, **_: object) -> ExperimentResult:
    """Run experiment E5 (see module docstring)."""
    gen = as_generator(rng)
    M, L = (60, 256) if quick else (150, 1024)
    cases = [(0.5, 4, 0), (0.4, 8, 1), (0.25, 8, 2)] if quick else [
        (0.5, 4, 0), (0.4, 8, 1), (0.25, 8, 2), (0.2, 16, 3), (0.34, 2, 2),
    ]
    trials = 5 if quick else 20

    table = Table(
        title="E5: Coalesce (Theorem 5.3) — <= 1/alpha outputs, unique 2D-close rep, <= 5D/alpha wildcards",
        columns=["alpha", "D", "n_outputs", "cap_1/alpha", "max_rep_dist", "cap_2D", "max_wildcards", "cap_5D/alpha"],
    )
    size_ok = close_ok = unique_ok = wild_ok = det_ok = True
    for alpha, D, chaff in cases:
        worst_outputs = 0
        worst_dist = 0
        worst_wild = 0
        for _ in range(trials):
            V, vt_idx = _clustered_multiset(M, L, D, alpha, chaff, gen)
            res = coalesce(V, D, alpha)
            res2 = coalesce(V, D, alpha)
            det_ok &= np.array_equal(res.vectors, res2.vectors)
            worst_outputs = max(worst_outputs, res.size)
            size_ok &= res.size <= coalesce_max_outputs(alpha)
            if res.size == 0:
                close_ok = False
                continue
            # For each VT member find its closest output; Theorem 5.3
            # requires a single common closest vector within 2D.
            closest_idx = set()
            for i in vt_idx:
                dists = tilde_dist_to_each(V[i], res.vectors)
                closest_idx.add(int(np.argmin(dists)))
                worst_dist = max(worst_dist, int(dists.min()))
            unique_ok &= len(closest_idx) == 1
            close_ok &= worst_dist <= 2 * D
            rep = res.vectors[next(iter(closest_idx))]
            worst_wild = max(worst_wild, wildcard_count(rep))
            wild_ok &= worst_wild <= coalesce_max_wildcards(D, alpha)
        table.add(
            alpha=alpha,
            D=D,
            n_outputs=worst_outputs,
            **{"cap_1/alpha": coalesce_max_outputs(alpha)},
            max_rep_dist=worst_dist,
            cap_2D=2 * D,
            max_wildcards=worst_wild,
            **{"cap_5D/alpha": coalesce_max_wildcards(D, alpha)},
        )

    checks = {
        "output size <= 1/alpha": size_ok,
        "unique closest representative for VT": unique_ok,
        "representative within 2D of every VT member": close_ok,
        "representative wildcards <= 5D/alpha": wild_ok,
        "deterministic (all players agree)": det_ok,
    }
    return ExperimentResult(
        experiment="E5",
        claim="Coalesce outputs <= 1/alpha vectors with a unique 2D-close representative (Thm 5.3)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"M={M} vectors, L={L} coords, {trials} trials per case",
    )
