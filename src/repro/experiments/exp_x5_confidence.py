"""X5 (extension) — ablation of the confidence parameter ``K``.

Small Radius repeats its partition-and-solve iteration ``K`` times and
lets each player pick the best stitched candidate; the paper sets
``K = Θ(log n)`` for a ``1 − 2^{−Ω(K)}`` success probability
(Corollary 4.2).  Cost is *linear* in ``K``, so the constant matters:
this ablation sweeps ``K`` and measures

* the fraction of trials meeting the ``5D`` error bound;
* probing rounds (linear in ``K``).

Measured outcome (recorded in EXPERIMENTS.md): at laptop scale the
``5D`` bound holds **even at K = 1** — the bound's slack (Lemma 4.3's
factor 5 plus the Select fallback) absorbs occasional partition
failures — while cost is exactly linear in ``K``.  ``K`` is therefore
pure insurance here, which is why ``Params.practical()`` uses a modest
``K = Θ(log n)`` constant; the checks assert the bound holds at every
``K`` and that the cost is the only thing ``K`` changes.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("X5")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X5 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 128 if quick else 256
    alpha, D = 0.5, 3
    Ks = [1, 2, 4] if quick else [1, 2, 4, 8]
    trials = 6 if quick else 15

    table = Table(
        title="X5: Small Radius confidence K — reliability vs linear cost",
        columns=["K", "within_5D_frac", "worst_err", "bound_5D", "rounds"],
    )
    fracs, rounds_seen = [], []
    for K in Ks:
        ok = 0
        worst = 0
        rounds = 0
        for _ in range(trials):
            inst = planted_instance(n, n, alpha, D, rng=int(gen.integers(2**31)))
            comm = inst.main_community()
            oracle = ProbeOracle(inst)
            out = small_radius(
                oracle, np.arange(n), np.arange(n), alpha, D,
                params=p, rng=int(gen.integers(2**31)), K=K,
            )
            rep = evaluate(out.astype(np.int8), inst.prefs, comm.members, diam=comm.diameter)
            worst = max(worst, rep.discrepancy)
            ok += rep.discrepancy <= 5 * D
            rounds = oracle.stats().rounds
        frac = ok / trials
        fracs.append(frac)
        rounds_seen.append(rounds)
        table.add(K=K, within_5D_frac=frac, worst_err=worst, bound_5D=5 * D, rounds=rounds)

    monotone = all(b >= a - 0.2 for a, b in zip(fracs, fracs[1:]))
    linear_cost = rounds_seen[-1] >= rounds_seen[0] * (Ks[-1] / Ks[0]) * 0.5
    checks = {
        "5D bound holds at every K (reliability non-decreasing)": monotone and fracs[-1] == 1.0,
        "smallest K already within bound at this scale": fracs[0] >= 0.8,
        "cost grows ~linearly with K": linear_cost,
    }
    return ExperimentResult(
        experiment="X5",
        claim="K iterations buy 1 - 2^{-Ω(K)} confidence at linear cost (Cor. 4.2); at laptop scale K=1 already meets 5D",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha}, D={D}, {trials} trials per K",
    )
