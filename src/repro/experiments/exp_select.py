"""E2 — Theorem 3.2: Select is exact within ``k·(D+1)`` probes.

Monte-Carlo over random candidate sets: plant a hidden vector, place one
candidate within distance ``D`` of it and ``k−1`` arbitrary others;
check that Select returns the (lexicographically-first) true closest
candidate and never exceeds the ``k(D+1)`` probe cap.  Sweep ``k`` and
``D``, reporting worst-case probes against the bound.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import select_probe_bound
from repro.core.select import select
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.hamming import hamming_to_each
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["run"]


def _make_case(k: int, L: int, D: int, gen: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Hidden vector + k candidates, one guaranteed within distance D."""
    hidden = gen.integers(0, 2, size=L, dtype=np.int8)
    cands = gen.integers(0, 2, size=(k, L), dtype=np.int8)
    near = hidden.copy()
    flips = gen.integers(0, D + 1)
    if flips:
        coords = gen.choice(L, size=flips, replace=False)
        near[coords] ^= 1
    cands[gen.integers(0, k)] = near
    return hidden, cands


@register("E2")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, **_: object) -> ExperimentResult:
    """Run experiment E2 (see module docstring)."""
    gen = as_generator(rng)
    ks = [2, 4, 8] if quick else [2, 4, 8, 16]
    Ds = [0, 2, 8] if quick else [0, 1, 2, 4, 8, 16]
    L = 256
    trials = 50 if quick else 300

    table = Table(
        title="E2: Select (Theorem 3.2) — exact Choose-Closest, <= k(D+1) probes",
        columns=["k", "D", "trials", "correct_frac", "max_probes", "bound_k(D+1)", "within_bound"],
    )
    all_correct = True
    all_bounded = True
    for k in ks:
        for D in Ds:
            correct = 0
            max_probes = 0
            bound = select_probe_bound(k, D)
            for _ in range(trials):
                hidden, cands = _make_case(k, L, D, gen)
                probes_done = []

                def probe(j: int) -> int:
                    probes_done.append(j)
                    return int(hidden[j])

                outcome = select(cands, probe, D)
                max_probes = max(max_probes, outcome.probes)
                dists = hamming_to_each(hidden, cands)
                best = dists.min()
                # Theorem: the output is the lexicographically-first
                # candidate among those closest to the hidden vector.
                closest = np.flatnonzero(dists == best)
                lex_first = min(closest, key=lambda i: cands[i].tobytes())
                if outcome.index == lex_first:
                    correct += 1
            frac = correct / trials
            ok = max_probes <= bound
            table.add(
                k=k, D=D, trials=trials, correct_frac=frac,
                max_probes=max_probes, **{"bound_k(D+1)": bound}, within_bound=ok,
            )
            all_correct &= frac == 1.0
            all_bounded &= ok

    checks = {
        "always returns lexicographically-first closest": all_correct,
        "probe count never exceeds k(D+1)": all_bounded,
    }
    return ExperimentResult(
        experiment="E2",
        claim="Select returns the exact closest candidate with <= k(D+1) probes (Thm 3.2)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
    )
