"""E7 — Theorem 6.1: RSelect is O(D)-close with O(k² log n) probes.

Monte-Carlo over adversarial candidate sets: one candidate at distance
``D_min`` from the hidden vector, decoys at various multiples of it
(including *near* decoys the 2/3-majority game could plausibly confuse).
Claims checked per (k, D_min) cell:

* the chosen candidate's distance is within a constant multiple of
  ``D_min`` in ≥ 95% of trials (w.h.p. O(D) guarantee);
* probes never exceed ``C(k,2)·ceil(c log2 n)`` (the Fig. 7 budget).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import rselect_probe_bound
from repro.core.params import Params
from repro.core.rselect import rselect
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.hamming import hamming, hamming_to_each
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["run"]

#: Acceptance multiple for the O(D) closeness guarantee.
CLOSENESS_FACTOR = 4.0


def _adversarial_case(
    k: int, L: int, d_min: int, gen: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Hidden vector + k candidates: one at distance d_min, decoys at 2x..8x."""
    hidden = gen.integers(0, 2, size=L, dtype=np.int8)

    def at_distance(d: int) -> np.ndarray:
        row = hidden.copy()
        d = min(d, L)
        if d:
            row[gen.choice(L, size=d, replace=False)] ^= 1
        return row

    rows = [at_distance(d_min)]
    for i in range(k - 1):
        mult = 2 + (i % 4) * 2  # decoys at 2x, 4x, 6x, 8x d_min
        rows.append(at_distance(max(d_min * mult, d_min + 1)))
    cands = np.asarray(rows, dtype=np.int8)
    return hidden, cands


@register("E7")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E7 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n_pop = 1024
    L = 512 if quick else 2048
    ks = [2, 4, 8]
    d_mins = [4, 16] if quick else [4, 16, 64]
    trials = 30 if quick else 150

    table = Table(
        title="E7: RSelect (Theorem 6.1) — O(D)-close output, O(k^2 log n) probes",
        columns=["k", "D_min", "good_frac", "worst_ratio", "max_probes", "probe_bound"],
    )
    quality_ok = True
    budget_ok = True
    for k in ks:
        for d_min in d_mins:
            good = 0
            worst_ratio = 0.0
            max_probes = 0
            bound = rselect_probe_bound(k, n_pop, c=p.rs_probes_c)
            for _ in range(trials):
                hidden, cands = _adversarial_case(k, L, d_min, gen)
                count = [0]

                def probe(j: int) -> int:
                    count[0] += 1
                    return int(hidden[j])

                outcome = rselect(cands, probe, n_pop, params=p, rng=gen)
                chosen_dist = hamming(outcome.vector.astype(np.int8), hidden)
                true_min = int(hamming_to_each(hidden, cands).min())
                ratio = chosen_dist / max(true_min, 1)
                worst_ratio = max(worst_ratio, ratio)
                if ratio <= CLOSENESS_FACTOR:
                    good += 1
                max_probes = max(max_probes, count[0])
            frac = good / trials
            table.add(k=k, D_min=d_min, good_frac=frac, worst_ratio=worst_ratio,
                      max_probes=max_probes, probe_bound=bound)
            quality_ok &= frac >= 0.95
            budget_ok &= max_probes <= bound

    checks = {
        f"output within {CLOSENESS_FACTOR}x of closest in >= 95% of trials": quality_ok,
        "probes within the C(k,2)*c*log n budget": budget_ok,
    }
    return ExperimentResult(
        experiment="E7",
        claim="RSelect outputs an O(D)-close candidate w.h.p. using O(k^2 log n) probes (Thm 6.1)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"population n={n_pop}, L={L}, decoys at 2-8x D_min",
    )
