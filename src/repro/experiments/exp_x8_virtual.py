"""X8 (extension) — the §3 virtual-player reduction for ``m ≫ n``.

"when ``m > n`` we can let each real player simulate ``⌈m/n⌉`` players
of the algorithm" — and Theorem 5.4's cost statement carries the
corresponding "(for ``n < m`` we lose a factor of ``m/n``)".  We sweep
the aspect ratio ``m/n`` at fixed ``n`` on ``D = 0`` instances and
measure the reduction end to end:

* correctness is preserved at every ratio (community members exact);
* the per-real-player round count scales linearly with the simulation
  factor ``⌈m/n⌉`` (each round of the virtual algorithm costs a real
  player ``⌈m/n⌉`` probes), i.e. ``rounds / factor`` stays flat;
* the reduction still beats solo: rounds stay well below ``m``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.shapes import fit_loglog_slope
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.virtual import find_preferences_virtual, virtual_factor
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("X8")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X8 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 128 if quick else 256
    ratios = [1, 2, 4] if quick else [1, 2, 4, 8]
    trials = 2 if quick else 4
    alpha = 0.5

    table = Table(
        title="X8: virtual-player reduction (§3) — cost scales with ceil(m/n), correctness intact",
        columns=["m/n", "m", "factor", "exact_frac", "rounds", "rounds/factor", "solo_cost"],
    )
    factors, rounds_seen = [], []
    all_exact = True
    beats_solo = True
    for ratio in ratios:
        m = n * ratio
        factor = virtual_factor(n, m)
        exact = 0
        rounds_acc = []
        for _ in range(trials):
            inst = planted_instance(n, m, alpha, 0, rng=int(gen.integers(2**31)))
            oracle = ProbeOracle(inst)
            res = find_preferences_virtual(oracle, alpha, 0, params=p, rng=int(gen.integers(2**31)))
            rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
            exact += rep.discrepancy == 0
            rounds_acc.append(res.rounds)
        frac = exact / trials
        rounds = float(np.mean(rounds_acc))
        all_exact &= frac == 1.0
        beats_solo &= rounds < m / 2
        factors.append(factor)
        rounds_seen.append(rounds)
        table.add(**{"m/n": ratio}, m=m, factor=factor, exact_frac=frac, rounds=rounds,
                  **{"rounds/factor": rounds / factor}, solo_cost=m)

    slope = fit_loglog_slope(factors, rounds_seen)
    checks = {
        "exact recovery at every aspect ratio": all_exact,
        "cost scales ~linearly with the simulation factor": 0.6 <= slope <= 1.4,
        "stays below half the solo cost at every ratio": beats_solo,
    }
    return ExperimentResult(
        experiment="X8",
        claim="Each real player simulating ceil(m/n) players restores m = Θ(n) at an m/n cost factor (§3)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n={n}, alpha={alpha}; fitted rounds~factor^p slope p={slope:.2f}",
    )
