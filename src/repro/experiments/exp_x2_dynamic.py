"""X2 (extension) — tracking drifting preferences.

The introduction motivates the interactive model with "tracking dynamic
environment by unreliable sensors" and time-varying taste.  We realise
it: a planted community whose center drifts by a bounded number of
coordinate flips per epoch, tracked by re-running the main algorithm
each epoch (:func:`repro.workloads.dynamic.track_preferences`).

Measured per epoch: discrepancy of the community (the drift preserves
the diameter bound, so every epoch's run keeps the paper's guarantee)
and the probing rounds — a polylog cost per epoch vs. ``m`` for
re-probing everything.

Checks: the error bound holds at *every* epoch, and the per-epoch cost
beats the solo re-probe cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.dynamic import DynamicInstance, track_preferences

__all__ = ["run"]


@register("X2")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X2 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512
    alpha, D = 0.5, 0
    drift = 8
    epochs = 4 if quick else 8

    dyn = DynamicInstance.planted(n, n, alpha, D, drift, rng=int(gen.integers(2**31)))
    history = track_preferences(dyn, alpha, D, epochs, params=p, rng=int(gen.integers(2**31)))

    table = Table(
        title="X2: tracking a drifting community (drift flips per epoch, fresh run per epoch)",
        columns=["epoch", "diam", "discrepancy", "rounds", "solo_cost"],
    )
    all_exact = True
    all_cheap = True
    for epoch, (inst, res) in enumerate(history):
        comm = inst.main_community()
        rep = evaluate(res.outputs, inst.prefs, comm.members, diam=comm.diameter)
        table.add(epoch=epoch, diam=comm.diameter, discrepancy=rep.discrepancy,
                  rounds=res.rounds, solo_cost=n)
        all_exact &= rep.discrepancy == 0
        all_cheap &= res.rounds < n / 2

    checks = {
        "exact recovery at every epoch despite drift": all_exact,
        "per-epoch cost below half the solo re-probe cost": all_cheap,
    }
    return ExperimentResult(
        experiment="X2",
        claim="Re-running per epoch tracks drifting preferences at polylog cost per epoch (extension)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha}, drift={drift} flips/epoch, {epochs} epochs",
    )
