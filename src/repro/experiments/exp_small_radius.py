"""E4 — Theorem 4.4: Small Radius error ≤ 5D at O(K·D^{3/2}(D+log n)/α) cost.

Sweep the community diameter ``D`` on planted instances and measure:

* the worst member error against the ``5D`` guarantee;
* probing rounds against the theorem's cost formula — the *shape* check
  fits the measured rounds-vs-D exponent and requires it to stay at or
  below the theorem's ``D^{3/2}·(D + log n)`` growth (≈ ``D^{2.5}`` for
  ``D ≫ log n``, flatter in the small-D regime we probe).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import small_radius_error_bound, small_radius_round_bound
from repro.analysis.shapes import fit_loglog_slope
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("E4")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E4 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512
    alpha = 0.5
    Ds = [1, 2, 4] if quick else [1, 2, 4, 8, 12]
    trials = 2 if quick else 5
    K = p.sr_confidence(n)

    table = Table(
        title="E4: Small Radius (Theorem 4.4) — error <= 5D, rounds ~ K D^{3/2}(D+log n)/alpha",
        columns=["D", "measured_diam", "worst_err", "bound_5D", "within", "rounds", "cost_formula"],
    )
    all_within = True
    ds_seen, rounds_seen = [], []
    for D in Ds:
        worst = 0
        rounds_acc = []
        diam = 0
        for _ in range(trials):
            inst = planted_instance(n, n, alpha, D, rng=int(gen.integers(2**31)))
            comm = inst.main_community()
            diam = max(diam, comm.diameter)
            oracle = ProbeOracle(inst)
            out = small_radius(
                oracle,
                np.arange(n),
                np.arange(n),
                alpha,
                D,
                params=p,
                rng=int(gen.integers(2**31)),
            )
            rep = evaluate(out.astype(np.int8), inst.prefs, comm.members, diam=comm.diameter)
            worst = max(worst, rep.discrepancy)
            rounds_acc.append(oracle.stats().rounds)
        bound = small_radius_error_bound(D)
        rounds = float(np.mean(rounds_acc))
        within = worst <= bound
        all_within &= within
        ds_seen.append(D)
        rounds_seen.append(rounds)
        table.add(
            D=D,
            measured_diam=diam,
            worst_err=worst,
            bound_5D=bound,
            within=within,
            rounds=rounds,
            cost_formula=small_radius_round_bound(n, alpha, D, K),
        )

    slope = fit_loglog_slope(ds_seen, rounds_seen)
    # Theorem growth in D is D^{3/2}(D + log n): between ~1.5 (D << log n)
    # and ~2.5 (D >> log n).  Require the measured exponent not to exceed
    # the theorem's ceiling (with slack for the discreteness of s).
    shape_ok = slope <= 2.8

    checks = {
        "worst member error <= 5D for every D": all_within,
        "rounds grow no faster than the theorem in D": shape_ok,
    }
    return ExperimentResult(
        experiment="E4",
        claim="Small Radius: error <= 5D w.h.p.; rounds O(K D^{3/2}(D + log n)/alpha) (Thm 4.4)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha}, K={K}; fitted rounds~D^p exponent p={slope:.2f}",
    )
