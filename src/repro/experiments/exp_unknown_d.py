"""E10 — Section 6: dropping the known-``D`` assumption costs a log factor.

Compare, on the same planted instances, the known-``D`` main algorithm
against the doubling + RSelect wrapper:

* **cost overhead**: the unknown-``D`` run's rounds divided by its own
  *most expensive single version* — must be bounded by the number of
  versions plus RSelect slack, i.e. ``O(log d_max)``.  (The paper states
  the overhead relative to the known-``D`` algorithm; in its asymptotic
  regime every branch costs the same polylog, so "vs the worst version"
  and "vs the true-D version" coincide.  At laptop scale the Small
  Radius branch's cost grows with ``D``, so the worst version is the
  honest yardstick — the table reports both.);
* **quality overhead**: the unknown-``D`` discrepancy divided by the
  known-``D`` discrepancy — the paper claims only "a constant factor"
  loss.
"""

from __future__ import annotations

import math

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences, find_preferences_unknown_d
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]

QUALITY_FACTOR_CEILING = 5.0


@register("E10")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E10 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 128 if quick else 256
    alpha = 0.5
    Ds = [0, 2] if quick else [0, 2, 4, 8]
    d_max = 16 if quick else 32

    table = Table(
        title="E10: unknown-D doubling (Section 6) — log-factor cost, constant-factor quality",
        columns=["true_D", "known_rounds", "unknown_rounds", "n_versions", "worst_version",
                 "overhead", "cap", "known_err", "unknown_err"],
    )
    cost_ok = True
    quality_ok = True
    for D in Ds:
        inst = planted_instance(n, n, alpha, D, rng=int(gen.integers(2**31)))
        comm = inst.main_community()

        o_known = ProbeOracle(inst)
        known = find_preferences(o_known, alpha, D, params=p, rng=int(gen.integers(2**31)))
        rep_known = evaluate(known.outputs, inst.prefs, comm.members, diam=comm.diameter)

        o_unknown = ProbeOracle(inst)
        unknown = find_preferences_unknown_d(
            o_unknown, alpha, params=p, rng=int(gen.integers(2**31)), d_max=d_max
        )
        rep_unknown = evaluate(unknown.outputs, inst.prefs, comm.members, diam=comm.diameter)

        n_versions = len(unknown.meta["schedule"])
        worst_version = max(unknown.meta["per_d_rounds"])
        # Overhead relative to the worst single version: bounded by the
        # version count (= O(log d_max)) plus RSelect slack.
        overhead = unknown.rounds / max(worst_version, 1)
        cap = n_versions + 2.0
        cost_ok &= overhead <= cap
        quality_ok &= rep_unknown.discrepancy <= max(
            QUALITY_FACTOR_CEILING * max(rep_known.discrepancy, 1), 5 * max(D, 1)
        )
        table.add(
            true_D=D,
            known_rounds=known.rounds,
            unknown_rounds=unknown.rounds,
            n_versions=n_versions,
            worst_version=worst_version,
            overhead=overhead,
            cap=cap,
            known_err=rep_known.discrepancy,
            unknown_err=rep_unknown.discrepancy,
        )

    checks = {
        "cost overhead bounded by the log factor": cost_ok,
        "quality within a constant factor of known-D": quality_ok,
    }
    return ExperimentResult(
        experiment="E10",
        claim="Unknown D costs a log-factor in time and a constant factor in quality (§6)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha}, doubling schedule capped at D={d_max}",
    )
