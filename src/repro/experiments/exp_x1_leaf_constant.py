"""X1 (extension) — ablation of the Zero Radius leaf constant.

The paper's Fig. 2 threshold is ``8c·ln n/α``; our practical preset uses
a much smaller leading constant.  This ablation shows what the constant
buys: on a *hard* workload (three structured communities, target ``α``
exactly the smallest community's share — no slack), sweep ``zr_leaf_c``
and measure

* the fraction of (trial × community) cells recovered exactly, against
  the Chernoff prediction from
  :mod:`repro.analysis.concentration` (failures should vanish roughly
  like ``exp(-c·ln n/16)`` per vote);
* the probing rounds (cost of the larger leaves).

Checks: reliability is monotone in the constant, the largest constant is
fully reliable, and cost grows with the constant.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.concentration import zero_radius_vote_failure_bound
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.mixtures import mixture_instance

__all__ = ["run"]


@register("X1")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X1 (see module docstring)."""
    base = params or Params.practical()
    gen = as_generator(rng)
    n = 512
    constants = [1.0, 2.0, 5.0] if quick else [1.0, 2.0, 3.0, 5.0, 8.0]
    trials = 4 if quick else 12

    inst = mixture_instance(n, n, 3, noise=0.0, weights=[0.5, 0.3, 0.2],
                            rng=int(gen.integers(2**31)))
    alpha = min(c.size for c in inst.communities) / n

    table = Table(
        title="X1: Zero Radius leaf constant — reliability vs cost on a tight-alpha 3-community matrix",
        columns=["zr_leaf_c", "exact_frac", "chernoff_vote_bound", "rounds"],
    )
    fracs, rounds_seen = [], []
    for c_leaf in constants:
        p = base.with_overrides(zr_leaf_c=c_leaf)
        exact = 0
        cells = 0
        rounds = 0
        for _ in range(trials):
            oracle = ProbeOracle(inst)
            res = find_preferences(oracle, alpha, 0, params=p, rng=int(gen.integers(2**31)))
            rounds = res.rounds
            for comm in inst.communities:
                rep = evaluate(res.outputs, inst.prefs, comm.members)
                cells += 1
                exact += rep.discrepancy == 0
        frac = exact / cells
        fracs.append(frac)
        rounds_seen.append(rounds)
        table.add(
            zr_leaf_c=c_leaf,
            exact_frac=frac,
            chernoff_vote_bound=min(1.0, zero_radius_vote_failure_bound(c_leaf, alpha, n)),
            rounds=rounds,
        )

    monotone = all(b >= a - 0.15 for a, b in zip(fracs, fracs[1:]))
    checks = {
        "reliability (weakly) increases with the constant": monotone,
        "largest constant is fully reliable": fracs[-1] == 1.0,
        "cost grows with the constant": rounds_seen[-1] > rounds_seen[0],
    }
    return ExperimentResult(
        experiment="X1",
        claim="The Fig. 2 leaf constant trades probing cost for vote reliability (extension ablation)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha:.3f} (tight), {trials} trials x 3 communities per cell",
    )
