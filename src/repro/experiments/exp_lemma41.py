"""E3 — Lemma 4.1: random partitions of low-diameter vector sets succeed.

The figure-style experiment: for vector sets of pairwise diameter ``d``,
sweep the part count ``s`` as a multiple of ``d^{3/2}`` and estimate the
probability that *every* part has a 1/5-fraction of vectors agreeing
exactly (the lemma's success event).

Claims checked:

* at the lemma's prescription (``s = 100·d^{3/2}``, here approached from
  below) success probability exceeds 1/2 — in fact it does so at much
  smaller ``s``, which is what justifies the ``sr_s_factor`` knob;
* success probability is monotone-increasing in ``s`` (shape of the
  ``d³/s²`` failure bound);
* the lemma's analytic bound is never violated (failure ≤ bound wherever
  the bound is < 1).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lemma41 import estimate_success_probability, lemma41_failure_bound
from repro.experiments.harness import ExperimentResult, register
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["run"]


def _low_diameter_set(M: int, L: int, d: int, gen: np.random.Generator) -> np.ndarray:
    """M vectors at pairwise distance <= d with *concentrated* disagreements.

    Flips (exactly ``d/2`` per vector) are confined to a window of ``2d``
    coordinates.  Spreading flips uniformly over all L coordinates makes
    every partition trivially successful (each part sees almost no
    disagreement); the lemma's interesting regime — which its ``d³/s²``
    bound covers — is when the parts must actually *separate* the
    disagreement mass, which the window forces.
    """
    center = gen.integers(0, 2, size=L, dtype=np.int8)
    w = min(L, 2 * d)
    window = gen.choice(L, size=w, replace=False)
    V = np.tile(center, (M, 1))
    flips = max(1, d // 2)
    for i in range(M):
        coords = gen.choice(window, size=flips, replace=False)
        V[i, coords] ^= 1
    return V


@register("E3")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, **_: object) -> ExperimentResult:
    """Run experiment E3 (see module docstring)."""
    gen = as_generator(rng)
    M, L = (40, 512) if quick else (100, 2048)
    ds = [4, 9] if quick else [4, 9, 16, 25]
    ratios = [0.25, 0.5, 1.0, 2.0, 4.0]
    trials = 40 if quick else 200

    table = Table(
        title="E3: Lemma 4.1 — success probability of random coordinate partitions",
        columns=["d", "s", "s_over_d1.5", "success_prob", "lemma_failure_bound"],
    )
    monotone_ok = True
    bound_ok = True
    reaches_half = True
    for d in ds:
        vectors = _low_diameter_set(M, L, d, gen)
        prev = -1.0
        for r in ratios:
            s = max(1, int(round(r * d**1.5)))
            prob = estimate_success_probability(vectors, s, trials, rng=gen)
            bound = lemma41_failure_bound(d, s)
            table.add(d=d, s=s, **{"s_over_d1.5": r}, success_prob=prob, lemma_failure_bound=min(bound, 1.0))
            if prob < prev - 0.15:  # allow Monte-Carlo noise
                monotone_ok = False
            prev = max(prev, prob)
            if bound < 1.0 and (1.0 - prob) > bound + 0.1:
                bound_ok = False
        if prev < 0.5:
            reaches_half = False

    checks = {
        "success prob reaches > 1/2 well below s = 100 d^1.5": reaches_half,
        "success prob (weakly) increases with s": monotone_ok,
        "measured failure never exceeds the lemma bound": bound_ok,
    }
    return ExperimentResult(
        experiment="E3",
        claim="Random partition succeeds w.p. > 1/2 for s = Θ(d^{3/2}); failure ~ d³/s² (Lemma 4.1)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"M={M} vectors, L={L} coords, {trials} trials per cell",
    )
