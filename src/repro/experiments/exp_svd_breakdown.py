"""E12 — Section 2's claim: spectral methods need "few canonical types";
the paper's algorithms don't.

The non-interactive literature assumes a *constant* number of canonical
preference vectors (a low-rank matrix with a singular-value gap at the
assumed rank).  We compare the masked-SVD baseline and Zero Radius on:

* **k = 4 types** — the friendly regime: SVD at its assumed rank-4 is
  accurate;
* **k = 16 types** — still perfectly clustered (each type is its own
  ``(1/16, 0)``-typical set, so the paper's precondition holds
  unchanged), but the rank exceeds the spectral method's assumption:
  SVD's error blows up at the assumed rank 4 *and stays poor even when
  told the true rank* at the same sampling budget, while Zero Radius —
  which never looks at the spectrum — reconstructs all 16 communities
  simultaneously.

Checks: SVD degrades ≥ 3× moving from 4 to 16 types; Zero Radius's
population mean error on the 16-type family stays below SVD's by ≥ 3×.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.svd import svd_baseline
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import errors
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.mixtures import mixture_instance

__all__ = ["run"]


def _sv_gap(prefs: np.ndarray, rank: int) -> float:
    """Ratio σ_rank / σ_{rank+1} of the centered matrix (gap ⇒ low rank)."""
    centered = 2.0 * prefs.astype(np.float64) - 1.0
    s = np.linalg.svd(centered, compute_uv=False)
    return float(s[rank - 1] / max(s[rank], 1e-12))


@register("E12")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E12 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512
    assumed_rank = 4
    budget = 48 if quick else 64

    table = Table(
        title="E12: SVD breakdown when the 'few canonical types' assumption fails",
        columns=["family", "algorithm", "budget", "mean_err", "median_err", "sv_gap@4"],
    )

    mean_errs: dict[tuple[str, str], float] = {}
    for k_types in (4, 16):
        family = f"{k_types}-types"
        inst = mixture_instance(n, n, k_types, noise=0.0, rng=int(gen.integers(2**31)))
        gap = _sv_gap(inst.prefs, assumed_rank)
        alpha = min(c.size for c in inst.communities) / n

        for rank, label in ((assumed_rank, "svd(rank=4)"), (k_types, f"svd(rank={k_types})")):
            oracle = ProbeOracle(inst)
            res = svd_baseline(oracle, budget, rank=rank, rng=int(gen.integers(2**31)))
            errs = errors(res.outputs, inst.prefs)
            table.add(family=family, algorithm=label, budget=budget,
                      mean_err=float(errs.mean()), median_err=float(np.median(errs)),
                      **{"sv_gap@4": gap})
            mean_errs[(family, label)] = float(errs.mean())

        oracle = ProbeOracle(inst)
        ours = find_preferences(oracle, alpha, 0, params=p, rng=int(gen.integers(2**31)))
        errs = errors(ours.outputs, inst.prefs)
        table.add(family=family, algorithm="zero_radius (ours)", budget=ours.rounds,
                  mean_err=float(errs.mean()), median_err=float(np.median(errs)),
                  **{"sv_gap@4": gap})
        mean_errs[(family, "ours")] = float(errs.mean())

    degradation = mean_errs[("16-types", "svd(rank=4)")] / max(mean_errs[("4-types", "svd(rank=4)")], 0.5)
    advantage = mean_errs[("16-types", "svd(rank=4)")] / max(mean_errs[("16-types", "ours")], 0.5)
    checks = {
        "svd degrades >= 3x from 4 to 16 types": degradation >= 3.0,
        "ours beats svd >= 3x on the 16-type family": advantage >= 3.0,
    }
    return ExperimentResult(
        experiment="E12",
        claim="Spectral methods break past their assumed type count; probing algorithms don't (§2)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=(
            f"n=m={n}, budget={budget}; svd degradation {degradation:.1f}x, "
            f"our advantage on 16 types {advantage:.1f}x (errors over the whole population)"
        ),
    )
