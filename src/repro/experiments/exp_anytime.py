"""E8 — Theorem 1.1 (figure): the anytime stretch-vs-rounds curve.

The paper's headline: constant stretch after polylog rounds, for *every*
sufficiently large typical set simultaneously — "the probing budget
defines the size of the community".  We plant *nested* communities
(rings of growing radius around one center) and run the Section 6
anytime algorithm, snapshotting after each ``α``-phase:

* series rows: cumulative rounds vs per-ring discrepancy and stretch
  (this is the "figure": one series per ring);
* checks: every ring ends with bounded stretch, and the tighter ring's
  final discrepancy is (weakly) smaller — finer communities yield finer
  answers, the trade-off of Section 1.1.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.main import anytime_find_preferences
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import nested_instance

__all__ = ["run"]

STRETCH_CEILING = 10.0


@register("E8")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E8 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 128 if quick else 256
    radii = [2, 12]
    fractions = [0.45, 0.8]
    inst = nested_instance(n, n, radii, fractions, rng=int(gen.integers(2**31)))
    oracle = ProbeOracle(inst)

    table = Table(
        title="E8: anytime curve (Theorem 1.1) — stretch vs cumulative rounds, per ring",
        columns=["phase", "alpha_phase", "rounds_so_far", "ring", "ring_diam", "discrepancy", "stretch"],
    )
    snapshots: list[tuple[int, float, np.ndarray, int]] = []

    def on_phase(j: int, alpha_j: float, outputs: np.ndarray) -> None:
        snapshots.append((j, alpha_j, outputs, oracle.stats().rounds))

    res = anytime_find_preferences(
        oracle,
        params=p,
        rng=int(gen.integers(2**31)),
        max_phases=2 if quick else 3,
        d_max=max(radii) * 2,
        phase_callback=on_phase,
    )

    final_by_ring: dict[str, float] = {}
    final_disc: dict[str, int] = {}
    for j, alpha_j, outputs, rounds in snapshots:
        for comm in inst.communities:
            rep = evaluate(outputs, inst.prefs, comm.members, diam=comm.diameter)
            table.add(
                phase=j,
                alpha_phase=alpha_j,
                rounds_so_far=rounds,
                ring=comm.label,
                ring_diam=comm.diameter,
                discrepancy=rep.discrepancy,
                stretch=rep.stretch,
            )
            final_by_ring[comm.label] = rep.stretch
            final_disc[comm.label] = rep.discrepancy

    rings = sorted(final_by_ring)
    bounded = all(s <= STRETCH_CEILING for s in final_by_ring.values())
    ordered = final_disc[rings[0]] <= final_disc[rings[-1]] if len(rings) > 1 else True
    checks = {
        f"every ring ends with stretch <= {STRETCH_CEILING}": bounded,
        "tighter ring achieves (weakly) smaller discrepancy": ordered,
    }
    return ExperimentResult(
        experiment="E8",
        claim="Anytime algorithm: constant stretch for every typical set after polylog rounds (Thm 1.1, §6)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, rings radii={radii} fractions={fractions}; phases={res.meta['phases']}",
    )
