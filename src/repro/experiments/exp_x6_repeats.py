"""X6 (extension) — how much does re-probing cost?

The paper's cost model charges *every* probe, and its Select explicitly
"disregards probes done before its execution" — the bounds price full
re-probing.  A real client would reuse its own billboard posts for free.
This ablation runs the identical algorithms under both cost models
(:class:`ProbeOracle`'s ``charge_repeats`` flag; outputs are unaffected
— only the accounting changes) and measures the waste:

* Zero Radius probes almost no coordinate twice (leaves partition the
  object space; adoption Selects probe fresh coordinates), so the
  saving should be small;
* Small Radius re-probes heavily: step 1c's Select re-asks coordinates
  the part's Zero Radius already revealed, and step 2's final Select
  re-asks again — the measured gap quantifies the slack in Theorem
  4.4's accounting.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.experiments.harness import ExperimentResult, register
from repro.utils.rng import as_generator
from repro.utils.tables import Table

__all__ = ["run"]


@register("X6")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X6 (see module docstring)."""
    from repro.workloads.planted import planted_instance

    p = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512
    cases = [("zero_radius", 0), ("small_radius", 2), ("small_radius", 4)]

    table = Table(
        title="X6: paper cost model (charge repeats) vs smart client (reuse own posts)",
        columns=["algorithm", "D", "rounds_charged", "rounds_smart", "saving"],
    )
    outputs_identical = True
    savings = {}
    for algo, D in cases:
        inst = planted_instance(n, n, 0.5, D, rng=int(gen.integers(2**31)))
        coin_seed = int(gen.integers(2**31))
        results = {}
        for charge in (True, False):
            oracle = ProbeOracle(inst, charge_repeats=charge)
            if algo == "zero_radius":
                space = PrimitiveSpace(oracle, np.arange(n))
                out = zero_radius(space, np.arange(n), 0.5, n_global=n, params=p, rng=coin_seed)
            else:
                out = small_radius(
                    oracle, np.arange(n), np.arange(n), 0.5, D, params=p, rng=coin_seed
                )
            results[charge] = (out, oracle.stats().rounds)
        outputs_identical &= np.array_equal(results[True][0], results[False][0])
        charged, smart = results[True][1], results[False][1]
        saving = 1.0 - smart / max(charged, 1)
        savings[(algo, D)] = saving
        table.add(algorithm=algo, D=D, rounds_charged=charged, rounds_smart=smart,
                  saving=f"{100 * saving:.0f}%")

    zr_saving = savings[("zero_radius", 0)]
    sr_savings = [v for (a, _), v in savings.items() if a == "small_radius"]
    checks = {
        "cost model never changes outputs": outputs_identical,
        "Zero Radius wastes little (< 20% re-probes)": zr_saving < 0.2,
        "Small Radius re-probes more than Zero Radius": min(sr_savings) >= zr_saving,
    }
    return ExperimentResult(
        experiment="X6",
        claim="The paper's charge-every-probe accounting is loose for Small Radius, tight for Zero Radius",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha=0.5; saving = 1 - smart/charged rounds",
    )
