"""X4 (extension) — the distributed engine vs the fast simulation.

The library's main implementations simulate the population globally;
:mod:`repro.engine` executes the paper's model *literally* (player
coroutines, one probe per lockstep round, waits for billboard posts).
This experiment validates and prices that fidelity:

* **bitwise equivalence**: engine and global Zero/Small Radius produce
  identical outputs and identical per-player probe counts for the same
  public-coin seed;
* **synchronization overhead**: the engine's lockstep round count
  exceeds the probe-based round metric only by the waits — measured
  here as the rounds ratio, which must stay small (players mostly probe
  in step; the recursion's barriers are shallow).
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.large_radius import large_radius
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.core.zero_radius import PrimitiveSpace, zero_radius
from repro.engine import (
    run_large_radius_engine,
    run_small_radius_engine,
    run_zero_radius_engine,
)
from repro.experiments.harness import ExperimentResult, register
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("X4")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X4 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    ns = [48, 96] if quick else [48, 96, 192]

    table = Table(
        title="X4: distributed engine vs fast simulation (Zero/Small/Large Radius)",
        columns=["algorithm", "n", "bitwise_equal", "probe_rounds", "lockstep_rounds", "sync_overhead"],
    )
    all_equal = True
    overheads = []
    for n in ns:
        inst = planted_instance(n, n, 0.5, 0, rng=int(gen.integers(2**31)))
        coin_seed = int(gen.integers(2**31))
        o1 = ProbeOracle(inst)
        space = PrimitiveSpace(o1, np.arange(n))
        g = zero_radius(space, np.arange(n), 0.5, n_global=n, params=p, rng=coin_seed)
        o2 = ProbeOracle(inst)
        e, result = run_zero_radius_engine(o2, np.arange(n), 0.5, params=p, rng=coin_seed)
        equal = bool(np.array_equal(g, e)) and bool(
            np.array_equal(o1.stats().per_player, o2.stats().per_player)
        )
        all_equal &= equal
        overhead = result.rounds / max(result.probe_rounds, 1)
        overheads.append(overhead)
        table.add(algorithm="zero_radius", n=n, bitwise_equal=equal,
                  probe_rounds=result.probe_rounds, lockstep_rounds=result.rounds,
                  sync_overhead=overhead)

        inst2 = planted_instance(n, n, 0.5, 2, rng=int(gen.integers(2**31)))
        coin_seed2 = int(gen.integers(2**31))
        o3 = ProbeOracle(inst2)
        g2 = small_radius(o3, np.arange(n), np.arange(n), 0.5, 2, params=p, rng=coin_seed2, K=2)
        o4 = ProbeOracle(inst2)
        e2, result2 = run_small_radius_engine(
            o4, np.arange(n), np.arange(n), 0.5, 2, params=p, rng=coin_seed2, K=2
        )
        equal2 = bool(np.array_equal(g2, e2)) and bool(
            np.array_equal(o3.stats().per_player, o4.stats().per_player)
        )
        all_equal &= equal2
        overhead2 = result2.rounds / max(result2.probe_rounds, 1)
        overheads.append(overhead2)
        table.add(algorithm="small_radius", n=n, bitwise_equal=equal2,
                  probe_rounds=result2.probe_rounds, lockstep_rounds=result2.rounds,
                  sync_overhead=overhead2)

        D_large = max(16, n // 4)
        inst3 = planted_instance(n, n, 0.5, D_large, rng=int(gen.integers(2**31)))
        coin_seed3 = int(gen.integers(2**31))
        o5 = ProbeOracle(inst3)
        g3 = large_radius(o5, 0.5, D_large, params=p, rng=coin_seed3)
        o6 = ProbeOracle(inst3)
        e3, result3 = run_large_radius_engine(o6, 0.5, D_large, params=p, rng=coin_seed3)
        equal3 = bool(np.array_equal(g3, e3)) and bool(
            np.array_equal(o5.stats().per_player, o6.stats().per_player)
        )
        all_equal &= equal3
        overhead3 = result3.rounds / max(result3.probe_rounds, 1)
        overheads.append(overhead3)
        table.add(algorithm="large_radius", n=n, bitwise_equal=equal3,
                  probe_rounds=result3.probe_rounds, lockstep_rounds=result3.rounds,
                  sync_overhead=overhead3)

    checks = {
        "engine bitwise-equal to the fast simulation": all_equal,
        "synchronization overhead below 2x": max(overheads) < 2.0,
    }
    return ExperimentResult(
        experiment="X4",
        claim="The literal lockstep execution matches the fast simulation bitwise at small sync cost",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"max sync overhead {max(overheads):.2f}x across {len(overheads)} runs",
    )
