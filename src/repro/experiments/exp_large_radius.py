"""E6 — Theorem 5.4: Large Radius achieves O(D/α) error (constant stretch).

Two sweeps on planted large-diameter instances:

* **D-sweep** at fixed ``n``: stretch ``Δ/D`` must stay bounded by a
  constant (the theorem's ``O(D/α)`` with ``α`` fixed) as ``D`` grows —
  this is the "constant stretch" headline of Theorem 1.1;
* **n-sweep** at ``D = Θ(n^{2/3})`` (growing diameter): per-player
  rounds must grow sub-linearly in ``m`` (the polylog claim is
  asymptotic; the measurable laptop-scale shape is rounds/m shrinking).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.shapes import fit_loglog_slope
from repro.billboard.oracle import ProbeOracle
from repro.core.large_radius import large_radius
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]

#: Constant-stretch acceptance ceiling.  Theorem 5.4 proves O(D/alpha);
#: with alpha = 1/2 and our practical constants the measured stretch
#: lands around 2-5; anything bounded as D grows validates the shape.
STRETCH_CEILING = 8.0


@register("E6")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E6 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    alpha = 0.5
    n_fixed = 256 if quick else 512
    Ds = [32, 64] if quick else [32, 64, 128, 192]
    ns = [128, 256, 512] if quick else [256, 512, 1024]

    table = Table(
        title="E6: Large Radius (Theorem 5.4) — stretch O(1/alpha), sublinear rounds",
        columns=["sweep", "n", "D", "stretch", "rounds", "rounds/m"],
    )
    stretches = []
    for D in Ds:
        inst = planted_instance(n_fixed, n_fixed, alpha, D, rng=int(gen.integers(2**31)))
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, alpha, D, params=p, rng=int(gen.integers(2**31)))
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        stretches.append(rep.stretch)
        r = oracle.stats().rounds
        table.add(sweep="D", n=n_fixed, D=D, stretch=rep.stretch, rounds=r, **{"rounds/m": r / n_fixed})

    ns_seen, rounds_seen = [], []
    for n in ns:
        D = max(8, int(round(n ** (2 / 3))))
        inst = planted_instance(n, n, alpha, D, rng=int(gen.integers(2**31)))
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out = large_radius(oracle, alpha, D, params=p, rng=int(gen.integers(2**31)))
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        r = oracle.stats().rounds
        ns_seen.append(n)
        rounds_seen.append(r)
        table.add(sweep="n", n=n, D=D, stretch=rep.stretch, rounds=r, **{"rounds/m": r / n})

    slope = fit_loglog_slope(ns_seen, rounds_seen)
    checks = {
        f"stretch bounded (<= {STRETCH_CEILING}) across D sweep": max(stretches) <= STRETCH_CEILING,
        "rounds sublinear in n for D = n^{2/3} (slope < 1)": slope < 1.0,
    }
    return ExperimentResult(
        experiment="E6",
        claim="Large Radius: error O(D/alpha) — constant stretch — at sublinear probing cost (Thm 5.4)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"alpha={alpha}; fitted rounds~n^p slope p={slope:.2f} on the n-sweep",
    )
