"""X7 (extension) — Byzantine resilience of the billboard protocol.

The introduction motivates the model with marketplaces where "some eBay
users may be dishonest".  Probe results are ground truth, but the
*vectors players post* during the Zero Radius recursion are
self-reported — a dishonest player can post anything.  We run the
distributed engine with a fraction ``f`` of players replaced by liars
(:mod:`repro.extensions.byzantine`) and measure honest community
members' recovery.

Prediction from the vote rule: a candidate needs a ``vote_frac · α``
fraction of each voting half.  Honest community members make up
``α(1−f)`` of a random half, so the truthful candidate survives iff
``1 − f ≥ vote_frac`` — breakdown at ``f* = 1 − vote_frac`` (= 1/2 for
the paper's ``α/2`` rule), *independent of α*.  Liars below ``f*`` can
only add garbage candidates (a few extra Select probes), never remove
the truth.

At finite ``n`` the breakdown is a *band*, not a point: near ``f*`` the
honest-member vote margin shrinks to 1× and leaf-level Chernoff
fluctuations (cf. X1) produce occasional failures.  The checks therefore
assert exact recovery in the *comfortable* zone (margin ≥ 1.5×, i.e.
``f ≤ 1 − 1.5·vote_frac`` … in practice ``f ≤ 0.25`` for the paper's
1/2 rule), visible degradation above ``f*``, and small cost inflation
in the clean zone; the transition band is reported, not gated.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.extensions.byzantine import run_zero_radius_with_byzantine
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("X7")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run extension experiment X7 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    n = 128 if quick else 256
    alpha = 0.5
    fractions = [0.0, 0.1, 0.2, 0.4, 0.6] if quick else [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    trials = 3 if quick else 6
    f_star = 1.0 - p.zr_vote_frac
    # Comfortable zone: honest-member vote margin >= 1.5x the threshold.
    f_clean = 1.0 - 1.5 * p.zr_vote_frac

    inst = planted_instance(n, n, alpha, 0, rng=int(gen.integers(2**31)))
    comm = inst.main_community()

    table = Table(
        title="X7: Zero Radius under Byzantine posts (honest community members scored)",
        columns=["byz_fraction", "zone", "worst_err", "mean_err", "rounds"],
    )
    clean_ok = True
    clean_mean = 0.0
    broken_mean = 0.0
    rounds_clean = None
    rounds_in_clean_zone = 0
    for f in fractions:
        worst = 0
        exact_trials = 0
        means = []
        rounds = 0
        for _ in range(trials):
            oracle = ProbeOracle(inst)
            out, bad, result = run_zero_radius_with_byzantine(
                oracle, alpha, f, params=p, rng=int(gen.integers(2**31))
            )
            honest = np.asarray([pl for pl in comm.members if not bad[pl]])
            errs = (out[honest] != inst.prefs[honest]).sum(axis=1)  # repro: noqa[RPL002] — post-hoc evaluation against ground truth, not a probe
            worst = max(worst, int(errs.max()))
            exact_trials += int(errs.max()) == 0
            means.append(float(errs.mean()))
            rounds = result.probe_rounds
        mean_err = float(np.mean(means))
        zone = "clean" if f <= f_clean + 1e-9 else ("transition" if f < f_star + 0.05 else "broken")
        table.add(byz_fraction=f, zone=zone, worst_err=worst, mean_err=mean_err, rounds=rounds)
        if zone == "clean":
            # w.h.p., not "always": require a majority of exact trials and
            # a tiny mean error (finite-n leaf fluctuations, cf. X1).
            clean_ok &= exact_trials * 2 >= trials and mean_err <= 0.02 * n
            clean_mean = max(clean_mean, mean_err)
            rounds_in_clean_zone = max(rounds_in_clean_zone, rounds)
            if f == 0.0:
                rounds_clean = rounds
        elif zone == "broken":
            broken_mean = max(broken_mean, mean_err)

    checks = {
        f"near-exact recovery throughout the clean zone (f <= {f_clean:.2f})": clean_ok,
        f"heavy degradation above f* = {f_star} (>= 10x clean zone)": broken_mean
        >= 10 * max(clean_mean, 0.5),
        "cost inflation in the clean zone under 2x": rounds_in_clean_zone
        <= 2 * max(rounds_clean or 1, 1),
    }
    return ExperimentResult(
        experiment="X7",
        claim="Billboard voting tolerates dishonest posts up to f* = 1 - vote_frac (intro's eBay motivation)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=(
            f"n=m={n}, alpha={alpha}; predicted breakdown f*={f_star}, clean zone f<={f_clean:.2f} "
            f"(1.5x vote margin), {trials} trials per f"
        ),
    )
