"""E1 — Theorem 3.1: Zero Radius is exact w.h.p. at ``O(log n / α)`` cost.

Sweep ``n`` and ``α`` on planted ``D = 0`` instances; for each cell,
measure over several seeds:

* the fraction of runs where *every* community member outputs its exact
  vector (claim: → 1);
* probing rounds, against the ``log n / α`` prediction and against the
  ``m``-round go-it-alone cost (claim: rounds ≪ m, growing
  logarithmically in ``n`` and linearly in ``1/α``).

The shape checks assert ≥ 90% exactness per cell and that the fitted
rounds-vs-``log n`` relationship is sub-linear in ``n`` (speedup over
solo grows with ``n``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import zero_radius_round_bound
from repro.analysis.shapes import fit_loglog_slope
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences
from repro.core.params import Params
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("E1")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E1 (see module docstring)."""
    p = params or Params.practical()
    gen = as_generator(rng)
    ns = [128, 256, 512] if quick else [128, 256, 512, 1024, 2048]
    alphas = [0.5, 0.25]
    trials = 3 if quick else 10

    table = Table(
        title="E1: Zero Radius (Theorem 3.1) — exact recovery, O(log n / alpha) rounds",
        columns=["n", "alpha", "exact_frac", "rounds", "bound_logn_over_a", "solo_rounds", "speedup"],
    )
    exact_ok = True
    mean_rounds: dict[float, list[tuple[int, float]]] = {a: [] for a in alphas}
    for n in ns:
        for alpha in alphas:
            exact = 0
            rounds_acc = []
            for t in range(trials):
                inst = planted_instance(n, n, alpha, 0, rng=int(gen.integers(2**31)))
                oracle = ProbeOracle(inst)
                res = find_preferences(oracle, alpha, 0, params=p, rng=int(gen.integers(2**31)))
                rep = evaluate(res.outputs, inst.prefs, inst.main_community().members)
                if rep.discrepancy == 0:
                    exact += 1
                rounds_acc.append(res.rounds)
            frac = exact / trials
            rounds = float(np.mean(rounds_acc))
            mean_rounds[alpha].append((n, rounds))
            bound = zero_radius_round_bound(n, alpha)
            table.add(
                n=n,
                alpha=alpha,
                exact_frac=frac,
                rounds=rounds,
                bound_logn_over_a=bound,
                solo_rounds=n,
                speedup=n / rounds,
            )
            if frac < 0.9:
                exact_ok = False

    # Shape: rounds grow sub-linearly in n (exponent well below 1).
    slopes = {}
    for alpha in alphas:
        xs = [x for x, _ in mean_rounds[alpha]]
        ys = [y for _, y in mean_rounds[alpha]]
        slopes[alpha] = fit_loglog_slope(xs, ys)
    sublinear = all(s < 0.75 for s in slopes.values())
    # 1/alpha scaling: halving alpha should raise cost (≥ 1.2× on average).
    ratio = np.mean(
        [r25 / max(r50, 1e-9) for (_, r50), (_, r25) in zip(mean_rounds[0.5], mean_rounds[0.25])]
    )
    alpha_scaling = ratio > 1.2

    checks = {
        "exactness >= 90% per cell": exact_ok,
        "rounds sublinear in n (loglog slope < 0.75)": sublinear,
        "cost increases as alpha shrinks": bool(alpha_scaling),
    }
    notes = (
        f"loglog slope rounds~n: {', '.join(f'alpha={a}: {s:.2f}' for a, s in slopes.items())}; "
        f"alpha 0.5->0.25 cost ratio {ratio:.2f}x"
    )
    return ExperimentResult(
        experiment="E1",
        claim="Zero Radius outputs exact vectors w.h.p. in O(log n / alpha) rounds (Thm 3.1)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=notes,
    )
