"""E11 — ablation: the ``s = Θ(D^{3/2})`` partition count is the knee.

Section 4's design choice: Small Radius partitions objects into
``s = Θ(D^{3/2})`` parts because Lemma 4.1 needs ``s² ≳ d³`` for the
partition to succeed.  We sweep the ``sr_s_factor`` multiplier:

* **below the knee** (factor ≪ 1): partitions fail Lemma 4.1 often —
  within-part diameters stay large, Zero Radius's voting fragments, and
  the measured error degrades toward/through the ``5D`` bound;
* **at/above the knee**: error is safely within ``5D``, but probing
  rounds grow with ``s`` (each extra part pays its own Zero Radius
  leaf + Select), so oversizing ``s`` is pure waste.

Checks: error within bound for factor ≥ 1, and rounds monotone
(weakly) increasing in the factor.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.small_radius import small_radius
from repro.experiments.harness import ExperimentResult, register
from repro.metrics.evaluation import evaluate
from repro.utils.rng import as_generator
from repro.utils.tables import Table
from repro.workloads.planted import planted_instance

__all__ = ["run"]


@register("E11")
def run(quick: bool = True, rng: int | np.random.Generator | None = 0, params: Params | None = None) -> ExperimentResult:
    """Run experiment E11 (see module docstring)."""
    base = params or Params.practical()
    gen = as_generator(rng)
    n = 256 if quick else 512
    alpha = 0.5
    D = 6 if quick else 9
    factors = [0.25, 0.5, 1.0, 2.0] if quick else [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]
    trials = 2 if quick else 5

    table = Table(
        title="E11: ablation of s = s_factor * D^{3/2} (Lemma 4.1 knee)",
        columns=["s_factor", "s", "worst_err", "bound_5D", "within", "rounds"],
    )
    rounds_by_factor = []
    err_by_factor = []
    for f in factors:
        p = base.with_overrides(sr_s_factor=f)
        s = p.sr_num_parts(D)
        worst = 0
        rounds_acc = []
        for _ in range(trials):
            inst = planted_instance(n, n, alpha, D, rng=int(gen.integers(2**31)))
            comm = inst.main_community()
            oracle = ProbeOracle(inst)
            out = small_radius(
                oracle, np.arange(n), np.arange(n), alpha, D,
                params=p, rng=int(gen.integers(2**31)),
            )
            rep = evaluate(out.astype(np.int8), inst.prefs, comm.members, diam=comm.diameter)
            worst = max(worst, rep.discrepancy)
            rounds_acc.append(oracle.stats().rounds)
        rounds = float(np.mean(rounds_acc))
        rounds_by_factor.append(rounds)
        err_by_factor.append(worst)
        table.add(s_factor=f, s=s, worst_err=worst, bound_5D=5 * D, within=worst <= 5 * D, rounds=rounds)

    at_knee_ok = all(
        err <= 5 * D for f, err in zip(factors, err_by_factor) if f >= 1.0
    )
    # Rounds (weakly) increase with s above the knee.
    upper = [r for f, r in zip(factors, rounds_by_factor) if f >= 1.0]
    cost_monotone = all(b >= a * 0.95 for a, b in zip(upper, upper[1:]))

    checks = {
        "error within 5D for s_factor >= 1 (the knee)": at_knee_ok,
        "rounds grow with s above the knee": cost_monotone,
    }
    return ExperimentResult(
        experiment="E11",
        claim="s = Θ(D^{3/2}) parts is the knee: fewer breaks Lemma 4.1, more wastes probes (§4)",
        table=table,
        passed=all(checks.values()),
        checks=checks,
        notes=f"n=m={n}, alpha={alpha}, D={D}, {trials} trials per factor",
    )
