"""Contract-checking static analysis for the repro codebase.

The paper's guarantees only hold if every algorithm plays by the
billboard model: each probe goes through the oracle and is charged
(Sec. 2 cost model), and randomness is reproducible so the
``1 - n^{-O(1)}`` claims can be re-verified over seeded trials.  PR 1/2
introduced the repo-wide conventions that encode those obligations —
the ``int | Generator | None`` rng contract, the closed
``RunResult.meta`` vocabulary, oracle-mediated probing, the ``rowset``
replacement for ``np.unique(axis=0)`` — and this package machine-checks
them so "refactor freely" stays safe at production scale.

Usage, CLI::

    python -m repro lint src tests benchmarks examples
    python -m repro lint src --format json --select RPL001,RPL002

Usage, library::

    from repro import lint

    diagnostics = lint.lint_paths(["src"])
    for d in diagnostics:
        print(d.format())

A finding can be locally waived with an in-line suppression comment —
``# repro: noqa[RPL002]`` (specific rules) or ``# repro: noqa``
(blanket) — which should always carry a justification.  The rule
catalog with per-rule rationale lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.lint.engine import (
    DEAD_WAIVER_ID,
    Diagnostic,
    LintContext,
    ProjectRule,
    Rule,
    collect_files,
    find_dead_waivers,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.project import ProjectContext
from repro.lint.rules import ALL_RULES, rules_by_id
from repro.lint.sarif import to_sarif, to_sarif_json

__all__ = [
    "ALL_RULES",
    "DEAD_WAIVER_ID",
    "Diagnostic",
    "LintContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "collect_files",
    "find_dead_waivers",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rules_by_id",
    "to_sarif",
    "to_sarif_json",
]
