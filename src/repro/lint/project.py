"""Whole-program analysis: the project context and rules RPL013–RPL016.

PR 7's sharded runtime rests on three cross-process protocols that are
invisible to per-file AST rules: shared-memory buffers must only be
mutated inside the post log's commit protocol, every rng draw must be
full-population (lockstep), and barrier/exhaustion markers must trail
the posts they cover.  This module extends :mod:`repro.lint` from
per-file syntax to a *project-level* pass:

* :class:`ProjectContext` — every parsed file plus a light program
  index: top-level function/method table, per-module import alias
  maps, and call resolution across modules (``from x import f`` and
  ``mod.f(...)`` spellings).
* a small intra-procedural **dataflow lattice** (``SHARED`` /
  ``OTHER``) used by RPL013: local names are tagged shared when they
  originate from shared-memory constructors, handles, or ``.buf``
  views, and tags propagate through assignments, views, and — one
  call level at a time, memoised — through calls to project functions
  whose arguments carry shared values (escape analysis).
* four machine-checked concurrency contracts:

  - **RPL013** — no writes through shared-memory-attached values
    (``SharedInstanceHandle``, ``PostLog``/shm buffers) outside the
    commit protocol (``repro/billboard/postlog.py``) and the
    publication substrate (``repro/parallel/shared.py``);
  - **RPL014** — no rng draws inside shard-conditional branches or
    owner-filtered loops under ``repro/serve/`` (lockstep: every
    worker must consume the master generator identically);
  - **RPL015** — flow-sensitive: within a function, a post append
    must never follow a barrier/exhaustion marker append on any path
    (marker visibility must imply post visibility);
  - **RPL016** — no bare :mod:`multiprocessing` primitives (``Pipe``,
    ``Lock``, ``shared_memory``, …) outside ``repro/parallel/``,
    ``repro/serve/sharded.py``, and the post log itself.

The rules subclass :class:`~repro.lint.engine.ProjectRule`, so they run
once per project (the runner routes each finding to its own file's
suppression table) and degrade gracefully to a one-file project under
``lint_source``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.lint.engine import Diagnostic, LintContext, ProjectRule

__all__ = [
    "BarrierOrderRule",
    "FunctionInfo",
    "MultiprocessingContainmentRule",
    "ProjectContext",
    "RngLockstepRule",
    "SharedMemoryWriteRule",
]


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def _module_to_path(dotted: str) -> tuple[str, str]:
    """``repro.serve.sharded`` -> candidate module paths (module, package)."""
    base = dotted.replace(".", "/")
    return f"{base}.py", f"{base}/__init__.py"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, addressable across the project."""

    ctx: LintContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str  # "f" or "Class.f"


@dataclass
class ProjectContext:
    """All parsed files of one lint run, plus the program index."""

    contexts: list[LintContext]
    #: module path (``repro/serve/sharded.py``) -> its context
    modules: dict[str, LintContext] = field(default_factory=dict)
    #: (module path or file path, bare function name) -> definitions
    _functions: dict[tuple[str, str], list[FunctionInfo]] = field(default_factory=dict)
    #: per-file import alias tables: path -> {local name: (module, original)}
    _imports: dict[str, dict[str, tuple[str, str | None]]] = field(default_factory=dict)

    @classmethod
    def from_contexts(cls, contexts: Sequence[LintContext]) -> "ProjectContext":
        project = cls(contexts=list(contexts))
        for ctx in contexts:
            if ctx.module_path is not None:
                project.modules[ctx.module_path] = ctx
            project._index_functions(ctx)
            project._imports[ctx.path] = _import_aliases(ctx.tree)
        return project

    def _index_functions(self, ctx: LintContext) -> None:
        key = ctx.module_path or ctx.path
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(ctx=ctx, node=node, qualname=node.name)
                self._functions.setdefault((key, node.name), []).append(info)
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            ctx=ctx, node=sub, qualname=f"{node.name}.{sub.name}"
                        )
                        self._functions.setdefault((key, sub.name), []).append(info)

    def functions(self) -> Iterator[FunctionInfo]:
        """Every function/method definition in the project."""
        for infos in self._functions.values():
            yield from infos

    def resolve_call(self, ctx: LintContext, call: ast.Call) -> FunctionInfo | None:
        """Resolve a call to a *top-level function* defined in the project.

        Handles the three common spellings — ``f(...)`` (same module or
        ``from m import f``), ``mod.f(...)`` (``import pkg.mod as
        mod``) — and returns ``None`` for anything it cannot pin to a
        unique top-level definition (methods, builtins, foreign
        libraries).  Deliberately conservative: an unresolved call
        never produces a finding.
        """
        key = ctx.module_path or ctx.path
        aliases = self._imports.get(ctx.path, {})
        func = call.func
        if isinstance(func, ast.Name):
            local = self._lookup(key, func.id, toplevel_only=True)
            if local is not None:
                return local
            target = aliases.get(func.id)
            if target is not None and target[1] is not None:
                return self._lookup_module(target[0], target[1])
            return None
        chain = _attr_chain(func)
        if len(chain) == 2:
            target = aliases.get(chain[0])
            if target is not None and target[1] is None:  # module alias
                return self._lookup_module(target[0], chain[1])
        return None

    def _lookup(self, key: str, name: str, *, toplevel_only: bool) -> FunctionInfo | None:
        infos = self._functions.get((key, name), [])
        if toplevel_only:
            infos = [i for i in infos if "." not in i.qualname]
        return infos[0] if len(infos) == 1 else None

    def _lookup_module(self, dotted: str, name: str) -> FunctionInfo | None:
        for candidate in _module_to_path(dotted):
            if candidate in self.modules:
                return self._lookup(candidate, name, toplevel_only=True)
        return None


def _import_aliases(tree: ast.Module) -> dict[str, tuple[str, str | None]]:
    """Top-level import table: local name -> (dotted module, original name).

    ``original is None`` marks a module alias (``import a.b as c``);
    otherwise the local name is a ``from``-imported object.
    """
    aliases: dict[str, tuple[str, str | None]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = (target, None)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (node.module, alias.name)
    return aliases


# ---------------------------------------------------------------------------
# RPL013 — shared-memory write containment (escape analysis)
# ---------------------------------------------------------------------------

#: Constructors/owners whose results are shared-memory-attached values.
_SHARED_ROOTS = frozenset({"SharedInstanceHandle", "PostLog", "SharedMemory", "SharedBillboard"})

#: Methods/attributes that *derive* a shared view from a shared value.
_SHARED_DERIVERS = frozenset({"bitmatrix", "buf", "_shm", "_log", "frombuffer", "memoryview"})

#: Type annotation substrings that mark a parameter as shared on entry.
_SHARED_ANNOTATIONS = ("SharedInstanceHandle", "PostLog", "SharedMemory", "SharedBillboard")

#: Files allowed to write through shared values: the commit protocol
#: itself and the publication substrate.
_RPL013_ALLOWED = ("repro/billboard/postlog.py", "repro/parallel/shared.py")


def _annotation_is_shared(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - exotic annotation nodes
        return False
    return any(marker in text for marker in _SHARED_ANNOTATIONS)


class _SharedFlow:
    """The intra-procedural lattice: which local names hold shared values.

    Two-point lattice per name (``SHARED`` ⊐ ``OTHER``); assignments
    transfer the tag of their right-hand side, views (subscripts,
    attribute derivers) keep it, and everything else drops to OTHER.
    Iterated to a fixpoint over the function body, ignoring branch
    order — sound for the "did a shared value reach this write?"
    question because tags only ever widen.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, seeds: set[str]) -> None:
        self.func = func
        self.shared: set[str] = set(seeds)
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_shared(arg.annotation):
                self.shared.add(arg.arg)
        self._solve()

    def _solve(self) -> None:
        for _ in range(8):  # small fixpoint: tags only widen
            before = len(self.shared)
            for node in ast.walk(self.func):
                if isinstance(node, ast.Assign):
                    if self.value_is_shared(node.value):
                        for target in node.targets:
                            self._tag(target)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    value = node.value
                    tagged = (value is not None and self.value_is_shared(value)) or (
                        isinstance(node, ast.AnnAssign)
                        and _annotation_is_shared(node.annotation)
                    )
                    if tagged:
                        self._tag(node.target)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None and self.value_is_shared(
                            item.context_expr
                        ):
                            self._tag(item.optional_vars)
            if len(self.shared) == before:
                return

    def _tag(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.shared.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._tag(element)
        elif isinstance(target, ast.Starred):
            self._tag(target.value)

    def value_is_shared(self, node: ast.AST) -> bool:
        """Whether *node* evaluates to a shared-memory-attached value."""
        if isinstance(node, ast.Name):
            return node.id in self.shared
        if isinstance(node, ast.Attribute):
            if node.attr in _SHARED_DERIVERS:
                return True
            return self.value_is_shared(node.value)
        if isinstance(node, ast.Subscript):
            return self.value_is_shared(node.value)
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and (set(chain) & _SHARED_ROOTS):
                return True
            if chain and chain[-1] in _SHARED_DERIVERS:
                # np.frombuffer(buf)/memoryview(buf) only taint when fed
                # a shared argument; .bitmatrix() taints via its owner.
                if chain[-1] in ("frombuffer", "memoryview"):
                    return any(self.value_is_shared(a) for a in node.args)
                return True
            return False
        return False


@dataclass(frozen=True)
class _WriteSite:
    ctx: LintContext
    node: ast.AST
    what: str


def _shared_writes(
    project: ProjectContext,
    info: FunctionInfo,
    seeds: set[str],
    *,
    depth: int,
    memo: set[tuple[int, frozenset[str]]],
) -> Iterator[_WriteSite]:
    """Write sites reachable from *info* with *seeds* tagged shared.

    Yields direct subscript/attribute stores through shared values in
    this function, then follows shared arguments into resolvable
    project callees (the escape step), one level deeper per call, with
    a memo so diamond call graphs terminate.
    """
    key = (id(info.node), frozenset(seeds))
    if depth <= 0 or key in memo:
        return
    memo.add(key)
    flow = _SharedFlow(info.node, seeds)
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and flow.value_is_shared(target.value):
                    yield _WriteSite(info.ctx, target, "subscript store")
                elif isinstance(target, ast.Attribute) and flow.value_is_shared(target.value):
                    yield _WriteSite(info.ctx, target, "attribute store")
        elif isinstance(node, ast.Call):
            callee = project.resolve_call(info.ctx, node)
            if callee is None or callee.node is info.node:
                continue
            params = [
                a.arg
                for a in [
                    *callee.node.args.posonlyargs,
                    *callee.node.args.args,
                    *callee.node.args.kwonlyargs,
                ]
            ]
            escaped: set[str] = set()
            positional = [*callee.node.args.posonlyargs, *callee.node.args.args]
            for i, arg in enumerate(node.args):
                if i < len(positional) and flow.value_is_shared(arg):
                    escaped.add(positional[i].arg)
            for keyword in node.keywords:
                if keyword.arg in params and flow.value_is_shared(keyword.value):
                    escaped.add(keyword.arg)
            if escaped:
                yield from _shared_writes(
                    project, callee, escaped, depth=depth - 1, memo=memo
                )


class SharedMemoryWriteRule(ProjectRule):
    """RPL013 — shared-memory writes only inside the commit protocol.

    The post log's crash-safety story ("a record is either invisible or
    complete") holds because exactly one code path mutates the shared
    segment: :meth:`PostLog._append`, bytes first, watermark last.  A
    write through a :class:`SharedInstanceHandle` view, a ``.buf``
    memoryview, or any value derived from them — anywhere else —
    bypasses that protocol and can tear state every shard reads.  The
    check is an escape analysis: shared tags flow through assignments,
    views, and calls into project functions (so a handle smuggled
    through a helper is still caught).
    """

    id = "RPL013"
    severity = "error"
    summary = "no writes through shared-memory values outside the postlog commit protocol"
    hint = "mutate shared state only via PostLog.append / the publish protocol"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        seen: set[tuple[str, int, int]] = set()
        memo: set[tuple[int, frozenset[str]]] = set()
        for info in project.functions():
            if not info.ctx.in_library(exclude=_RPL013_ALLOWED):
                continue
            for site in _shared_writes(project, info, set(), depth=4, memo=memo):
                if site.ctx.in_library(exclude=()) and not site.ctx.in_library(
                    exclude=_RPL013_ALLOWED
                ):
                    continue  # escaped *into* the commit protocol: allowed
                anchor = (
                    site.ctx.path,
                    getattr(site.node, "lineno", 1),
                    getattr(site.node, "col_offset", 0),
                )
                if anchor in seen:
                    continue
                seen.add(anchor)
                yield Diagnostic(
                    rule=self.id,
                    severity=self.severity,
                    path=site.ctx.path,
                    line=anchor[1],
                    col=anchor[2],
                    message=(
                        f"{site.what} through a shared-memory-attached value "
                        f"outside the commit protocol"
                    ),
                    hint=self.hint,
                )


# ---------------------------------------------------------------------------
# RPL014 — rng lockstep in the serving layer
# ---------------------------------------------------------------------------

#: Call names that consume the master generator (draws/spawns).
_DRAW_FUNCS = frozenset({"spawn", "spawn_many"})
_DRAW_METHODS = frozenset(
    {
        "draw",
        "integers",
        "random",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "binomial",
    }
)

#: Identifiers that mark a condition as shard-dependent.
_SHARD_MARKERS = ("shard", "owner")

#: Exact attribute/function names whose iteration is owner-filtered.
_OWNER_ITERS = frozenset(
    {"_players", "_local_players", "local_players", "active_players", "owned_players"}
)


def _is_draw_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name):
        return node.func.id in _DRAW_FUNCS
    if isinstance(node.func, ast.Attribute):
        return node.func.attr in _DRAW_METHODS or node.func.attr in _DRAW_FUNCS
    return False


def _mentions_shard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(marker in name.lower() for marker in _SHARD_MARKERS):
            return True
    return False


def _iter_is_owner_filtered(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name in _OWNER_ITERS:
            return True
    return False


class _LockstepVisitor(ast.NodeVisitor):
    """Collects rng draws nested under shard-conditional control flow."""

    def __init__(self, rule: "RngLockstepRule", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.found: list[Diagnostic] = []
        self._guards: list[str] = []

    def _report(self, node: ast.Call) -> None:
        reason = self._guards[-1]
        self.found.append(
            Diagnostic(
                rule=self.rule.id,
                severity=self.rule.severity,
                path=self.ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"rng draw inside {reason} breaks full-population lockstep "
                    f"(every shard must consume the master generator identically)"
                ),
                hint=self.rule.hint,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._guards and _is_draw_call(node):
            self._report(node)
        self.generic_visit(node)

    def _guarded(self, reason: str | None, bodies: list[list[ast.stmt]]) -> None:
        if reason is not None:
            self._guards.append(reason)
        for body in bodies:
            for stmt in body:
                self.visit(stmt)
        if reason is not None:
            self._guards.pop()

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        reason = "a shard-conditional branch" if _mentions_shard(node.test) else None
        self._guarded(reason, [node.body, node.orelse])

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        reason = "a shard-conditional loop" if _mentions_shard(node.test) else None
        self._guarded(reason, [node.body, node.orelse])

    def _visit_for(self, node: ast.For | ast.AsyncFor) -> None:
        self.visit(node.iter)
        reason = "an owner-filtered loop" if _iter_is_owner_filtered(node.iter) else None
        self._guarded(reason, [node.body, node.orelse])

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        owner = any(_iter_is_owner_filtered(gen.iter) for gen in node.generators)
        if owner:
            self._guards.append("an owner-filtered comprehension")
        self.generic_visit(node)
        if owner:
            self._guards.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


class RngLockstepRule(ProjectRule):
    """RPL014 — serve-layer rng draws are full-population only.

    The sharded topology keeps every worker's master generator in
    lockstep by having *all* shards perform the *same* draws — the
    full-population coin draws and merge spawns — even for players they
    do not own.  A draw nested under ``if shard == ...`` (or inside a
    loop over the owned-player subset) desynchronises the streams: the
    next barrier then merges states that disagree, snapshots stop being
    restorable to other worker counts, and the bitwise-equivalence pin
    silently dies.  Draws must happen unconditionally; owner-filtered
    code may only *index into* pre-drawn values.
    """

    id = "RPL014"
    severity = "error"
    summary = "no rng draws inside shard-conditional branches or owner-filtered loops"
    hint = "draw for the full population first; index per-player results inside the loop"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for ctx in project.contexts:
            if not ctx.in_library("repro/serve"):
                continue
            visitor = _LockstepVisitor(self, ctx)
            visitor.visit(ctx.tree)
            yield from visitor.found


# ---------------------------------------------------------------------------
# RPL015 — barrier-after-posts ordering (flow-sensitive)
# ---------------------------------------------------------------------------

_MARKER_CALLS = frozenset({"post_barrier", "post_exhausted"})
_MARKER_KINDS = frozenset({"KIND_BARRIER", "KIND_EXHAUSTED"})
_POST_CALLS = frozenset({"post_vectors"})
_POST_KINDS = frozenset({"KIND_PACKED", "KIND_DENSE"})


def _append_kind(node: ast.Call) -> str | None:
    """Classify a call as ``"post"``, ``"marker"``, or ``None``."""
    name: str | None = None
    if isinstance(node.func, ast.Name):
        name = node.func.id
    elif isinstance(node.func, ast.Attribute):
        name = node.func.attr
    if name in _MARKER_CALLS:
        return "marker"
    if name in _POST_CALLS:
        return "post"
    if name == "append" and node.args:
        first = node.args[0]
        if isinstance(first, ast.Name):
            if first.id in _MARKER_KINDS:
                return "marker"
            if first.id in _POST_KINDS:
                return "post"
        elif isinstance(first, ast.Attribute):
            if first.attr in _MARKER_KINDS:
                return "marker"
            if first.attr in _POST_KINDS:
                return "post"
    return None


class _OrderScan:
    """Linear path-sensitive scan: has a marker append been seen yet?

    Statements are processed in program order; branches fork the state
    and merge with OR (a marker on *either* arm poisons the join —
    some path saw it).  Loop bodies are scanned once: the contract is
    per phase, and one phase's posts and marker are emitted within one
    iteration's program order.
    """

    def __init__(self, rule: "BarrierOrderRule", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.found: list[Diagnostic] = []

    def scan(self, stmts: Sequence[ast.stmt], marker_seen: bool) -> bool:
        for stmt in stmts:
            marker_seen = self._scan_stmt(stmt, marker_seen)
        return marker_seen

    def _scan_stmt(self, stmt: ast.stmt, marker_seen: bool) -> bool:
        if isinstance(stmt, ast.If):
            marker_seen = self._scan_expr(stmt.test, marker_seen)
            body = self.scan(stmt.body, marker_seen)
            orelse = self.scan(stmt.orelse, marker_seen)
            return body or orelse
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            marker_seen = self._scan_expr(stmt.iter, marker_seen)
            body = self.scan(stmt.body, marker_seen)
            orelse = self.scan(stmt.orelse, body)
            return marker_seen or orelse
        if isinstance(stmt, ast.While):
            marker_seen = self._scan_expr(stmt.test, marker_seen)
            body = self.scan(stmt.body, marker_seen)
            orelse = self.scan(stmt.orelse, body)
            return marker_seen or orelse
        if isinstance(stmt, ast.Try):
            body = self.scan(stmt.body, marker_seen)
            handlers = [self.scan(h.body, body) for h in stmt.handlers]
            orelse = self.scan(stmt.orelse, body)
            state = orelse or any(handlers) or body
            return self.scan(stmt.finalbody, state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                marker_seen = self._scan_expr(item.context_expr, marker_seen)
            return self.scan(stmt.body, marker_seen)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return marker_seen  # nested defs get their own scan
        return self._scan_expr(stmt, marker_seen)

    def _scan_expr(self, node: ast.AST, marker_seen: bool) -> bool:
        """Walk one statement/expression in (child) order, firing on calls."""
        for child in ast.iter_child_nodes(node):
            marker_seen = self._scan_expr(child, marker_seen)
        if isinstance(node, ast.Call):
            kind = _append_kind(node)
            if kind == "marker":
                return True
            if kind == "post" and marker_seen:
                self.found.append(
                    Diagnostic(
                        rule=self.rule.id,
                        severity=self.rule.severity,
                        path=self.ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "post append after a barrier/exhaustion marker append: "
                            "marker visibility no longer implies post visibility"
                        ),
                        hint=self.rule.hint,
                    )
                )
        return marker_seen


class BarrierOrderRule(ProjectRule):
    """RPL015 — marker appends must trail the posts they cover.

    The sharded phase barrier works because "shard ``k``'s marker is
    visible" implies "shard ``k``'s stage posts are visible" — true
    only while every function appends its posts *before* its
    barrier/exhaustion marker.  This is a flow-sensitive check: within
    a function, no path may append a post after a marker append
    (equivalently, every marker must be dominated by the post appends
    of its phase).
    """

    id = "RPL015"
    severity = "error"
    summary = "post-log marker appends must follow, never precede, post appends"
    hint = "append stage posts first, the barrier/exhaustion marker last"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for ctx in project.contexts:
            if not ctx.in_library():
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan = _OrderScan(self, ctx)
                    scan.scan(node.body, False)
                    yield from scan.found


# ---------------------------------------------------------------------------
# RPL016 — multiprocessing primitive containment
# ---------------------------------------------------------------------------

#: Files allowed to speak raw multiprocessing: the parallel substrate,
#: the sharded topology, and the shared-memory post log they share.
_RPL016_ALLOWED = (
    "repro/parallel",
    "repro/serve/sharded.py",
    "repro/billboard/postlog.py",
)


class _MultiprocessingVisitor(ast.NodeVisitor):
    def __init__(self, rule: "MultiprocessingContainmentRule", ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.found: list[Diagnostic] = []

    def _report(self, node: ast.AST, what: str) -> None:
        self.found.append(
            Diagnostic(
                rule=self.rule.id,
                severity=self.rule.severity,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=f"bare multiprocessing primitive outside the parallel substrate: {what}",
                hint=self.rule.hint,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "multiprocessing":
                self._report(node, f"import {alias.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "multiprocessing":
            names = ", ".join(alias.name for alias in node.names)
            self._report(node, f"from {node.module} import {names}")
        self.generic_visit(node)


class MultiprocessingContainmentRule(ProjectRule):
    """RPL016 — process topology lives in the parallel substrate only.

    Every cross-process channel in the repo — pipes, locks, shared
    segments — belongs to one of three audited modules
    (``repro/parallel/``, ``repro/serve/sharded.py``,
    ``repro/billboard/postlog.py``), which own the lifecycle rules the
    concurrency checker and sanitizer reason about (who unlinks, who
    may write, what the resource tracker sees).  A bare ``mp.Lock()``
    or ``shared_memory.SharedMemory(...)`` anywhere else creates an
    unaudited channel none of that tooling knows exists, so the import
    itself is banned outside the substrate.
    """

    id = "RPL016"
    severity = "error"
    summary = "no multiprocessing imports/primitives outside the parallel substrate"
    hint = "route process topology through repro.parallel / repro.serve.sharded"

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for ctx in project.contexts:
            if not ctx.in_library(exclude=_RPL016_ALLOWED):
                continue
            visitor = _MultiprocessingVisitor(self, ctx)
            visitor.visit(ctx.tree)
            yield from visitor.found
