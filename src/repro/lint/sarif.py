"""SARIF 2.1.0 output for ``repro lint``.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading a run annotates the PR diff with each
finding in place.  The emitter maps the repo's :class:`Diagnostic`
schema onto the standard —

* each :class:`~repro.lint.engine.Rule` becomes a ``reportingDescriptor``
  in the driver's rule catalog (``shortDescription`` from the rule
  summary, ``help.text`` from the autofix hint, full rationale linked
  via ``helpUri`` into ``docs/static-analysis.md``);
* each diagnostic becomes a ``result`` with a ``physicalLocation``
  (SARIF columns are 1-based; the engine's are 0-based, hence the
  ``col + 1``);
* severities map ``error`` → ``"error"``, anything else → ``"warning"``
  (the dead-waiver audit RPL900 arrives as a synthesized descriptor so
  its results are never orphaned).

Stdlib-only, like the rest of the engine.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.lint.engine import DEAD_WAIVER_ID, Diagnostic, Rule

__all__ = ["to_sarif", "to_sarif_json"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: Where the per-rule rationale lives (a repo-relative URI reference —
#: code-scanning UIs resolve it against the repository root).
_DOCS_URI = "docs/static-analysis.md"


def _level(severity: str) -> str:
    return "error" if severity == "error" else "warning"


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "help": {"text": rule.hint or rule.summary},
        "helpUri": f"{_DOCS_URI}#the-rule-catalog",
        "defaultConfiguration": {"level": _level(rule.severity)},
    }


def _dead_waiver_descriptor() -> dict[str, Any]:
    return {
        "id": DEAD_WAIVER_ID,
        "name": "DeadWaiverAudit",
        "shortDescription": {"text": "suppression comment waives no diagnostic"},
        "help": {"text": "delete the stale `repro: noqa` comment"},
        "helpUri": f"{_DOCS_URI}#suppressions",
        "defaultConfiguration": {"level": "warning"},
    }


def _result(diagnostic: Diagnostic) -> dict[str, Any]:
    message = diagnostic.message
    if diagnostic.hint:
        message += f" [{diagnostic.hint}]"
    return {
        "ruleId": diagnostic.rule,
        "level": _level(diagnostic.severity),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": diagnostic.line,
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    diagnostics: Sequence[Diagnostic], rules: Sequence[Rule]
) -> dict[str, Any]:
    """Build the SARIF 2.1.0 log object for one lint run."""
    descriptors = [_rule_descriptor(rule) for rule in rules]
    if any(d.rule == DEAD_WAIVER_ID for d in diagnostics):
        descriptors.append(_dead_waiver_descriptor())
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _DOCS_URI,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(d) for d in diagnostics],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def to_sarif_json(
    diagnostics: Sequence[Diagnostic], rules: Sequence[Rule]
) -> str:
    """The SARIF log serialized for ``--format sarif`` / file upload."""
    return json.dumps(to_sarif(diagnostics, rules), indent=2, sort_keys=False)
