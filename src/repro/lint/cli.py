"""``python -m repro lint`` — the CLI front end of :mod:`repro.lint`.

Exit codes follow the usual linter convention, plus a dedicated path
for the dead-waiver audit: ``0`` clean, ``1`` error findings, ``2``
usage error (unknown rule id, no files matched), ``3`` warnings only
(every finding is advisory — in practice, stale ``repro: noqa``
comments flagged by the RPL900 audit).

The full-rule-set run (no ``--select``/``--ignore``) includes both the
whole-program project pass (RPL013–016) and the dead-waiver audit by
default; ``--no-dead-waivers`` opts out (pre-commit's per-file
invocations use it — a waiver for a cross-file rule looks dead when
the rest of the program is not on the command line).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import collect_files, lint_paths
from repro.lint.rules import ALL_RULES, rules_by_id

__all__ = ["add_lint_subparser", "run_lint"]

#: Default lint surface when no paths are given (the repo's own code).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def add_lint_subparser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on the repro CLI parser."""
    lint = sub.add_parser("lint", help="run the repro contract checks (RPL rules)")
    lint.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    lint.add_argument(
        "--format",
        "--output",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    lint.add_argument(
        "--output-file",
        default=None,
        metavar="PATH",
        help="write the formatted output to a file instead of stdout",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--no-dead-waivers",
        action="store_true",
        help="skip the dead-waiver audit (RPL900) on full-rule-set runs",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return lint


def _parse_rule_ids(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    return {token.strip() for token in spec.split(",") if token.strip()}


def _emit(text: str, output_file: str | None) -> None:
    if output_file is None:
        print(text)
    else:
        Path(output_file).write_text(text + "\n", encoding="utf-8")


def run_lint(args: argparse.Namespace) -> int:
    """Execute the ``lint`` subcommand; returns the process exit code."""
    catalog = rules_by_id()
    if args.list_rules:
        for rule_id, rule in sorted(catalog.items()):
            print(f"{rule_id}  [{rule.severity}]  {rule.summary}")
        return 0

    select = _parse_rule_ids(args.select)
    ignore = _parse_rule_ids(args.ignore)
    for spec_name, spec in (("--select", select), ("--ignore", ignore)):
        unknown = sorted(spec - set(catalog)) if spec else []
        if unknown:
            print(f"{spec_name}: unknown rule ids {', '.join(unknown)}; known: {', '.join(sorted(catalog))}")
            return 2

    rules = ALL_RULES
    if select is not None:
        rules = [r for r in rules if r.id in select]
    if ignore is not None:
        rules = [r for r in rules if r.id not in ignore]

    files = collect_files(args.paths)
    if not files:
        missing = [str(p) for p in args.paths if not Path(p).exists()]
        if missing:
            print(f"no such file or directory: {' '.join(missing)}")
            return 2
        # Real paths, nothing lintable (e.g. pre-commit handing us only
        # lint_fixtures files): that's a clean run, not a usage error.
        print("0 files checked: clean")
        return 0

    # The dead-waiver audit is only meaningful when every rule ran —
    # under --select/--ignore most waivers are trivially unexercised.
    audit = select is None and ignore is None and not getattr(args, "no_dead_waivers", False)
    diagnostics = lint_paths(files, rules, dead_waivers=audit)

    output_file = getattr(args, "output_file", None)
    if args.format == "json":
        _emit(json.dumps([d.to_json() for d in diagnostics], indent=2), output_file)
    elif args.format == "sarif":
        from repro.lint.sarif import to_sarif_json

        _emit(to_sarif_json(diagnostics, rules), output_file)
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        errors = sum(1 for d in diagnostics if d.severity == "error")
        warnings = len(diagnostics) - errors
        summary = f"{len(files)} files checked: {errors} errors, {warnings} warnings"
        _emit(summary if diagnostics else f"{len(files)} files checked: clean", output_file)
    if not diagnostics:
        return 0
    if any(d.severity == "error" for d in diagnostics):
        return 1
    return 3  # warnings only: dead waivers (or future advisory rules)


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry (``python -m repro.lint.cli``), mainly for tests."""
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(prog="repro lint")
    sub = parser.add_subparsers(dest="command", required=True)
    add_lint_subparser(sub)
    return run_lint(parser.parse_args(["lint", *argv]))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
