"""The repro rule set: seventeen machine-checked model/API contracts.

Each rule encodes one convention the paper's guarantees (or the repo's
refactoring safety) depend on; the catalog with full rationale is
``docs/static-analysis.md``.  Rules are intentionally small, pure-AST
visitors — no type inference — so they are fast, deterministic, and
easy to reason about; sites where a rule is deliberately violated
(e.g. the virtual-players substrate peering into the oracle) carry an
in-line ``# repro: noqa[RPLxxx]`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.engine import Diagnostic, LintContext, Rule, RuleVisitor
from repro.lint.project import (
    BarrierOrderRule,
    MultiprocessingContainmentRule,
    RngLockstepRule,
    SharedMemoryWriteRule,
)

__all__ = ["ALL_RULES", "rules_by_id"]

#: Mutable (or otherwise shared-state) constructors banned as defaults.
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})

#: Literal nodes that evaluate to a fresh mutable object.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


class RngConstructionRule(Rule):
    """RPL001 — all randomness flows through :mod:`repro.utils.rng`.

    Seeded reproducibility of the whole population simulation hinges on
    one normalisation point for generators (``as_generator`` /
    ``spawn``): a stray ``np.random.default_rng()``, legacy
    ``RandomState``, or global ``np.random.seed()`` inside the library
    forks an unseeded stream and silently breaks trial replay.
    """

    id = "RPL001"
    severity = "error"
    summary = "no raw RNG construction outside repro.utils.rng"
    hint = "use repro.utils.rng.as_generator / spawn"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library(exclude=("repro/utils/rng.py",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _RngVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _RngVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            tail = chain[-1]
            if tail in ("default_rng", "RandomState"):
                self.report(node, f"raw generator construction via {'.'.join(chain)}()")
            elif tail == "seed" and "random" in chain[:-1]:
                self.report(node, "global np.random.seed() poisons unrelated streams")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.endswith("random"):
            for alias in node.names:
                if alias.name in ("default_rng", "RandomState", "seed"):
                    self.report(node, f"importing {alias.name} from {node.module}")
        self.generic_visit(node)


class DirectPreferenceReadRule(Rule):
    """RPL002 — probes go through the oracle, never the raw matrix.

    The Sec. 2 cost model charges every preference read to a player;
    code that indexes ``instance.prefs[...]`` or reaches into
    ``oracle._prefs`` learns hidden grades for free and voids the probe
    accounting every theorem is stated in.  Only the substrate itself
    (``billboard/``, ``model/``) touches the matrix.
    """

    id = "RPL002"
    severity = "error"
    summary = "no direct preference-matrix reads outside billboard/ + model/"
    hint = "route probes through ProbeOracle.probe/probe_many"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library(exclude=("repro/billboard", "repro/model"))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _PrefsVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _PrefsVisitor(RuleVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_prefs":
            self.report(node, "reach-through into the oracle's hidden matrix (._prefs)")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Attribute) and node.value.attr == "prefs":
            self.report(node, "uncharged preference read: .prefs[...] bypasses the oracle")
        self.generic_visit(node)


class MetaVocabularyRule(Rule):
    """RPL003 — ``RunResult.meta`` keys come from the closed vocabulary.

    ``META_KEYS`` is the single documented schema for run metadata; a
    key invented at a call site (or computed at runtime) is invisible
    to the io round-trip, reports, and dashboards until it breaks them.
    Literal keys let the check run statically, before any run exists.
    """

    id = "RPL003"
    severity = "error"
    summary = "RunResult.meta keys must be literals from META_KEYS"
    hint = "document new keys in repro.core.result.META_KEYS"

    _meta_keys: frozenset[str] | None = None

    @classmethod
    def known_keys(cls) -> frozenset[str]:
        """The authoritative key set, imported lazily from the library."""
        if cls._meta_keys is None:
            from repro.core.result import META_KEYS

            cls._meta_keys = frozenset(META_KEYS)
        return cls._meta_keys

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _MetaVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _MetaVisitor(RuleVisitor):
    def _check_key(self, key_node: ast.AST) -> None:
        known = MetaVocabularyRule.known_keys()
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            if key_node.value not in known:
                self.report(
                    key_node,
                    f"unknown RunResult.meta key {key_node.value!r} "
                    f"(not in repro.core.result.META_KEYS)",
                )
        else:
            self.report(key_node, "RunResult.meta keys must be string literals")

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and chain[-1] == "RunResult":
            for keyword in node.keywords:
                if keyword.arg == "meta" and isinstance(keyword.value, ast.Dict):
                    for key in keyword.value.keys:
                        if key is not None:  # None == **spread, checked at its source
                            self._check_key(key)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "meta"
        ):
            self._check_key(node.slice)
        self.generic_visit(node)


class UniqueAxisRule(Rule):
    """RPL004 — no ``np.unique(..., axis=...)`` outside the rowset kernel.

    Row-wise ``np.unique`` sorts full-width structured scalars and was
    the profiled hot spot of population-scale runs (~85% of a Small
    Radius trial); :func:`repro.utils.rowset.unique_rows` is the
    bit-identical order-preserving-key replacement.  Reintroductions
    silently reopen the regression.
    """

    id = "RPL004"
    severity = "error"
    summary = "no np.unique(axis=...) reintroduction"
    hint = "use repro.utils.rowset.unique_rows"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library(exclude=("repro/utils/rowset.py",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _UniqueVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _UniqueVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and chain[-1] == "unique":
            for keyword in node.keywords:
                if keyword.arg == "axis":
                    self.report(node, "row-wise np.unique(axis=...) is the replaced hot spot")
        self.generic_visit(node)


class SpanContextRule(Rule):
    """RPL005 — phases and spans open via context managers only.

    A manual ``start_phase``/``finish_phase`` pair (or a span object
    that is never entered) leaks an open phase on any exception path —
    the probes spent before the raise vanish from the ledger and the
    telemetry tree silently truncates.  ``with oracle.phase(...)`` and
    ``with obs.span(...)`` close via ``finally`` and cannot leak.
    """

    id = "RPL005"
    severity = "error"
    summary = "spans/phases via context manager, never bare start()/finish()"
    hint = "use `with oracle.phase(name):` / `with obs.span(name):`"

    def applies_to(self, ctx: LintContext) -> bool:
        # The manual API's own implementation lives in billboard/.
        if ctx.module_path is None:
            return True
        return ctx.in_library(exclude=("repro/billboard",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _SpanVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _SpanVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "start_phase",
            "finish_phase",
        ):
            self.report(node, f"manual {node.func.attr}() call; an exception leaks the phase")
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # A span/phase factory whose result is discarded: nothing ever
        # enters (or exits) the context, so the span never closes.
        call = node.value
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            if call.func.attr in ("span", "phase"):
                self.report(node, f"discarded {call.func.attr}(...) — span is never entered")
        self.generic_visit(node)


def _toplevel_bindings(body: Sequence[ast.stmt]) -> set[str]:
    """Names bound at module top level (descending into if/try/with/for)."""
    names: set[str] = set()

    def add_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_target(node.target)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.If):
            names |= _toplevel_bindings(node.body)
            names |= _toplevel_bindings(node.orelse)
        elif isinstance(node, ast.Try):
            names |= _toplevel_bindings(node.body)
            names |= _toplevel_bindings(node.orelse)
            names |= _toplevel_bindings(node.finalbody)
            for handler in node.handlers:
                names |= _toplevel_bindings(handler.body)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_target(node.target)
            names |= _toplevel_bindings(node.body)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
            names |= _toplevel_bindings(node.body)
    return names


class DunderAllRule(Rule):
    """RPL006 — public modules declare an honest ``__all__``.

    The api facade, the docs build, and ``import *`` hygiene all key
    off ``__all__``; a module without one has an undefined public
    surface, and a stale entry (name listed but never bound) raises
    only at the first star-import or doc build.
    """

    id = "RPL006"
    severity = "error"
    summary = "public modules define __all__ and every listed name exists"
    hint = "add/update the module's __all__"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library(exclude=("repro/__main__.py",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        declaration: ast.Assign | None = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                declaration = node
                break
        if declaration is None:
            yield self.diagnostic(ctx, ctx.tree, "module does not define __all__")
            return
        value = declaration.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            yield self.diagnostic(ctx, declaration, "__all__ must be a literal list/tuple")
            return
        bound = _toplevel_bindings(ctx.tree.body)
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                yield self.diagnostic(ctx, element, "__all__ entries must be string literals")
            elif element.value not in bound:
                yield self.diagnostic(
                    ctx, element, f"__all__ lists {element.value!r} but the module never binds it"
                )


class MutableDefaultRule(Rule):
    """RPL007 — no mutable default arguments in the library.

    A ``def f(x=[])`` default is evaluated once and shared across every
    call — state bleeds between runs, which is exactly the
    cross-trial contamination the seeded-reproducibility story cannot
    tolerate.
    """

    id = "RPL007"
    severity = "error"
    summary = "no mutable default arguments"
    hint = "default to None and construct inside the function"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library()

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _MutableDefaultVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _MutableDefaultVisitor(RuleVisitor):
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, _MUTABLE_LITERALS):
                self.report(default, f"mutable default argument in {node.name}()")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self.report(default, f"mutable default argument in {node.name}()")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class ExperimentRngParamRule(Rule):
    """RPL008 — experiment entry points take the uniform ``rng`` param.

    Every experiment ``run()`` must accept ``rng: int | Generator |
    None`` — the one contract (normalised via ``as_generator``) that
    lets the harness, CLI, benchmarks, and parallel sweeps thread
    reproducible randomness through any experiment interchangeably.
    """

    id = "RPL008"
    severity = "error"
    summary = "experiment run() must accept the uniform `rng` parameter"
    hint = "signature: run(quick=True, rng=0, ...)"

    def applies_to(self, ctx: LintContext) -> bool:
        if ctx.module_path is None or not ctx.in_library("repro/experiments"):
            return False
        name = ctx.module_path.rsplit("/", 1)[-1]
        return name.startswith("exp_")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        run_def: ast.FunctionDef | None = None
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "run":
                run_def = node
                break
        if run_def is None:
            yield self.diagnostic(ctx, ctx.tree, "experiment module defines no run() entry point")
            return
        args = run_def.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "rng" not in params:
            message = "run() does not accept the uniform `rng` parameter"
            if "seed" in params:
                message += " (rename `seed` to `rng`)"
            yield self.diagnostic(ctx, run_def, message)


class ServePrefsIsolationRule(Rule):
    """RPL009 — the serving runtime never touches the preference matrix.

    The serve layer's headline guarantee is observation equivalence:
    serving a population to completion is bitwise-equal to the offline
    engine because sessions learn grades *only* through metered oracle
    probes.  Any ``.prefs`` / ``._prefs`` access inside ``repro/serve``
    — even a read-only peek for a shortcut or a "cheap" estimate —
    would let served answers depend on hidden state the offline run
    never saw, silently voiding both the equivalence pin and the probe
    accounting.  RPL002 already bans uncharged *reads* library-wide;
    this rule is stricter where it matters most: in serve code the
    attribute must not appear at all (checkpoint plumbing carries the
    matrix under a different field name for exactly this reason).
    """

    id = "RPL009"
    severity = "error"
    summary = "serve/ code never touches the preference matrix"
    hint = "sessions learn grades only via ProbeOracle.probe/probe_many"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library("repro/serve")

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _ServePrefsVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _ServePrefsVisitor(RuleVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in ("prefs", "_prefs"):
            self.report(node, f"serving code touches the preference matrix (.{node.attr})")
        self.generic_visit(node)


class UnpackbitsContainmentRule(Rule):
    """RPL010 — ``np.unpackbits`` lives only inside the bitpack boundary.

    The packed substrate's 8× memory/bandwidth win holds only while the
    packed form stays the *native* representation: a stray
    ``np.unpackbits`` re-materialises the dense matrix mid-pipeline and
    silently reopens the traffic the substrate removed.  All unpacking
    goes through :func:`repro.metrics.bitpack.unpack_rows` /
    :func:`~repro.metrics.bitpack.unpack_vector` — the audited
    API-boundary shims, which ``repro/metrics/bitpack.py`` alone may
    implement.
    """

    id = "RPL010"
    severity = "error"
    summary = "no np.unpackbits outside repro.metrics.bitpack"
    hint = "unpack via repro.metrics.bitpack.unpack_rows / unpack_vector"

    def applies_to(self, ctx: LintContext) -> bool:
        return ctx.in_library(exclude=("repro/metrics/bitpack.py",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _UnpackbitsVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _UnpackbitsVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and chain[-1] == "unpackbits":
            self.report(
                node, "dense materialisation via unpackbits bypasses the bitpack boundary"
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "numpy":
            for alias in node.names:
                if alias.name == "unpackbits":
                    self.report(node, f"importing unpackbits from {node.module}")
        self.generic_visit(node)


#: Telemetry helpers whose arguments are evaluated on the hot path.
_OBS_HOT_HELPERS = frozenset({"span", "incr", "gauge", "set_gauge", "observe", "event"})

#: Roots that mark a call as a telemetry helper (module-style imports).
_OBS_ROOTS = frozenset({"obs", "metrics"})


class ObsEagerLabelRule(Rule):
    """RPL011 — obs hot-path call sites take pre-built literal labels.

    The whole zero-overhead-when-off contract is that a disabled
    ``obs.incr(...)`` / ``metrics.observe(...)`` costs one ``None``
    check — but Python evaluates arguments *before* the call, so an
    f-string label or a dict literal built at the call site is paid on
    every request even with telemetry off.  Metric and span names must
    be plain literals (or prebuilt constants); anything dynamic belongs
    behind an explicit ``get_registry() is not None`` guard.
    """

    id = "RPL011"
    severity = "error"
    summary = "no eagerly built labels at obs/metrics hot-path call sites"
    hint = "pass literal names; guard dynamic work with `get_registry() is not None`"

    def applies_to(self, ctx: LintContext) -> bool:
        # The obs layer itself builds frames/snapshots legitimately.
        return ctx.in_library(exclude=("repro/obs",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _ObsEagerLabelVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _ObsEagerLabelVisitor(RuleVisitor):
    def _eager_construction(self, node: ast.AST) -> str | None:
        """What *node* eagerly builds, or ``None`` when it is cheap."""
        if isinstance(node, ast.JoinedStr):
            return "f-string"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "dict":
                return "dict() call"
            if isinstance(node.func, ast.Attribute) and node.func.attr == "format":
                return ".format() call"
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
        ):
            return "%-format"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if (
            len(chain) >= 2
            and chain[-1] in _OBS_HOT_HELPERS
            and chain[0] in _OBS_ROOTS
        ):
            arguments: list[ast.AST] = list(node.args)
            arguments += [keyword.value for keyword in node.keywords]
            for argument in arguments:
                for sub in ast.walk(argument):  # type: ignore[assignment]
                    what = self._eager_construction(sub)
                    if what is not None:
                        self.report(
                            sub,
                            f"{what} built eagerly at {'.'.join(chain)}(...) — "
                            f"evaluated even when telemetry is off",
                        )
        self.generic_visit(node)


class ServeTopologyConstructionRule(Rule):
    """RPL012 — serving deployments are built via :func:`repro.api.serve`.

    The topology-agnostic entrypoint is the whole point of the serve
    API: one call site scales from the in-process engine to the sharded
    multi-process runtime by flipping ``ServeConfig.workers``, and the
    snapshot/restore, metrics-merge, and equivalence guarantees all
    attach to the :class:`~repro.serve.runtime.ServeRuntime` surface.
    A hand-wired ``ServeService(...)`` + ``MicroBatchRouter(...)`` pair
    outside ``repro/serve`` pins its caller to one topology and
    sidesteps those guarantees; classmethod constructors
    (``ServeService.from_checkpoint``) stay allowed because the
    runtime/restore layers own them.
    """

    id = "RPL012"
    severity = "error"
    summary = "no direct ServeService/MicroBatchRouter construction outside repro/serve"
    hint = "build deployments via ServeConfig + repro.api.serve()"

    def applies_to(self, ctx: LintContext) -> bool:
        # Tests and benchmarks construct deployments too — they must
        # exercise the same entrypoint (or carry a justified waiver).
        if ctx.module_path is None:
            return True
        return ctx.in_library(exclude=("repro/serve",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _ServeTopologyVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _ServeTopologyVisitor(RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and chain[-1] in ("ServeService", "MicroBatchRouter"):
            self.report(
                node,
                f"direct {chain[-1]}(...) construction pins the caller to one topology",
            )
        self.generic_visit(node)


#: Import roots that mark compiled-extension machinery (the generated
#: ``_ckernels`` module is matched as a dotted segment, not a root).
_COMPILED_EXT_ROOTS = frozenset({"cffi", "cython", "Cython"})


class CompiledKernelContainmentRule(Rule):
    """RPL017 — compiled-extension imports live only inside the kernel package.

    The compiled backend's whole contract is that it is *invisible*:
    every caller goes through :mod:`repro.metrics.kernels`, which picks
    the backend once at import time and guarantees a pure-NumPy fallback
    on hosts without cffi or a C compiler.  A direct ``import cffi`` (or
    of the generated ``_ckernels`` module) outside
    ``repro/metrics/kernels/`` re-introduces a hard native dependency at
    that call site — the no-compiler install stops importing, and the
    forced-fallback CI leg (``REPRO_FORCE_PY_KERNELS=1``) no longer
    covers the code actually running.  Benchmarks and tests A/B the
    backends through :func:`repro.metrics.kernels.numpy_kernels`, never
    by touching the extension directly.
    """

    id = "RPL017"
    severity = "error"
    summary = "no cffi/cython/_ckernels imports outside repro/metrics/kernels"
    hint = "dispatch through repro.metrics.kernels (backend-agnostic, always importable)"

    def applies_to(self, ctx: LintContext) -> bool:
        # Tests and benchmarks must stay backend-agnostic too: their
        # A/B toggle is numpy_kernels(), not a raw extension import.
        if ctx.module_path is None:
            return True
        return ctx.in_library(exclude=("repro/metrics/kernels",))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        visitor = _CompiledKernelVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found


class _CompiledKernelVisitor(RuleVisitor):
    def _flag(self, node: ast.AST, module: str) -> None:
        parts = module.split(".")
        if parts[0] in _COMPILED_EXT_ROOTS or "_ckernels" in parts:
            self.report(
                node,
                f"import of {module!r} bypasses the kernel dispatch namespace",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._flag(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            self._flag(node, node.module)
            for alias in node.names:
                if alias.name == "_ckernels":
                    self._flag(node, f"{node.module}.{alias.name}")
        self.generic_visit(node)


#: The full rule set, id order.
ALL_RULES: list[Rule] = [
    RngConstructionRule(),
    DirectPreferenceReadRule(),
    MetaVocabularyRule(),
    UniqueAxisRule(),
    SpanContextRule(),
    DunderAllRule(),
    MutableDefaultRule(),
    ExperimentRngParamRule(),
    ServePrefsIsolationRule(),
    UnpackbitsContainmentRule(),
    ObsEagerLabelRule(),
    ServeTopologyConstructionRule(),
    SharedMemoryWriteRule(),
    RngLockstepRule(),
    BarrierOrderRule(),
    MultiprocessingContainmentRule(),
    CompiledKernelContainmentRule(),
]


def rules_by_id() -> dict[str, Rule]:
    """Rule id -> rule instance, for select/ignore validation and docs."""
    return {rule.id: rule for rule in ALL_RULES}
