"""The lint engine: rule protocol, diagnostics, suppressions, file runner.

Deliberately dependency-free (stdlib ``ast`` only): the linter must be
runnable in any environment the library itself runs in, including CI
images before dev extras are installed.

Layers
------
* :class:`Diagnostic` — one finding, with file/line/column, rule id,
  severity, message, and an optional autofix hint.
* :class:`Rule` — per-rule class: declares ``id`` / ``severity`` /
  ``summary`` / ``hint``, scopes itself via :meth:`Rule.applies_to`,
  and emits findings from :meth:`Rule.check` (usually by walking the
  pre-parsed AST with a small :class:`ast.NodeVisitor`).
* :class:`LintContext` — everything a rule may need about one file:
  path, source, parsed tree, the repo-relative module path (``None``
  for non-library files such as tests), and the suppression table.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` — the
  runners, applying ``# repro: noqa[...]`` suppressions and
  select/ignore filters.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "Diagnostic",
    "LintContext",
    "Rule",
    "RuleVisitor",
    "collect_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: ``# repro: noqa`` (blanket) or ``# repro: noqa[RPL001, RPL002]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: Directories never linted: bytecode caches and the deliberately
#: rule-violating lint fixtures (test data, not code).
_SKIP_DIRS = frozenset({"__pycache__", "lint_fixtures"})


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    rule:
        Rule id, e.g. ``"RPL002"``.
    severity:
        ``"error"`` or ``"warning"`` — errors fail the CLI run.
    path:
        File the finding is in (as given to the runner).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong, concretely, at this site.
    hint:
        How to fix it (the rule's autofix hint).
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """Render as the classic ``path:line:col: RULE message`` line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for ``--format json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintContext:
    """Everything the rules may need about one file under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root, e.g.
    #: ``"repro/core/main.py"`` — ``None`` for files outside the
    #: library (tests, benchmarks, examples), which lets library-only
    #: rules scope themselves out cheaply.
    module_path: str | None
    #: line -> suppressed rule ids; an empty set means blanket noqa.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """Whether an in-line ``# repro: noqa`` waives *diagnostic*."""
        rules = self.suppressions.get(diagnostic.line)
        if rules is None:
            return False
        return not rules or diagnostic.rule in rules

    def in_library(self, *prefixes: str, exclude: Sequence[str] = ()) -> bool:
        """Whether this file is library code under any of *prefixes*.

        ``prefixes`` / ``exclude`` are ``repro``-relative posix paths
        (``"repro/core"``, ``"repro/utils/rng.py"``).  With no prefixes,
        any library file matches.  Non-library files never match.
        """
        if self.module_path is None:
            return False
        for stop in exclude:
            if self.module_path == stop or self.module_path.startswith(stop.rstrip("/") + "/"):
                return False
        if not prefixes:
            return True
        return any(
            self.module_path == p or self.module_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` scopes the rule to a file subset (default: all
    files handed to the runner).
    """

    #: Stable rule id (``RPL...``); also the suppression token.
    id: str = ""
    #: ``"error"`` (fails the run) or ``"warning"``.
    severity: str = "error"
    #: One-line statement of the contract the rule enforces.
    summary: str = ""
    #: Autofix hint appended to every diagnostic of this rule.
    hint: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether this rule runs on *ctx* at all (path scoping)."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for *ctx*; the engine applies suppressions."""
        raise NotImplementedError

    def diagnostic(self, ctx: LintContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a finding of this rule anchored at *node*."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )


class RuleVisitor(ast.NodeVisitor):
    """Shared visitor base: collects findings for one rule over one file."""

    def __init__(self, rule: Rule, ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.found: list[Diagnostic] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at *node*."""
        self.found.append(self.rule.diagnostic(self.ctx, node, message))


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Extract the ``# repro: noqa`` table (line -> rule ids)."""
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            table[lineno] = set()
        else:
            table[lineno] = {token.strip() for token in spec.split(",") if token.strip()}
    return table


def module_path_of(path: str | PurePath) -> str | None:
    """Repo path -> ``repro``-relative module path, or ``None``.

    Works for any spelling that contains a ``src/repro`` segment
    (relative, absolute, or from a sibling checkout): the part after the
    last ``src/`` that starts a ``repro`` package is the module path.
    """
    parts = PurePath(path).as_posix().split("/")
    for i in range(len(parts) - 1, 0, -1):
        if parts[i] == "repro" and parts[i - 1] == "src":
            return "/".join(parts[i:])
    return None


def build_context(path: str, source: str) -> LintContext:
    """Parse *source* and assemble the :class:`LintContext` for it."""
    tree = ast.parse(source, filename=path)
    return LintContext(
        path=path,
        source=source,
        tree=tree,
        module_path=module_path_of(path),
        suppressions=_parse_suppressions(source),
    )


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
) -> list[Diagnostic]:
    """Lint one in-memory source string; returns unsuppressed findings."""
    try:
        ctx = build_context(path, source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="RPL000",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    found: list[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for diagnostic in rule.check(ctx):
            if not ctx.is_suppressed(diagnostic):
                found.append(diagnostic)
    found.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return found


def lint_file(path: str | Path, rules: Sequence[Rule]) -> list[Diagnostic]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, rules, path=str(path))


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand *paths* (files or directories) to the ``.py`` files to lint.

    Anything under a ``__pycache__`` or ``lint_fixtures`` directory is
    skipped — walked *or* named directly (pre-commit passes changed
    files one by one) — caches and deliberately rule-violating test
    data are never linted.  Order is deterministic.
    """
    out: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if _SKIP_DIRS.isdisjoint(sub.parts):
                    out.append(sub)
        elif p.suffix == ".py" and _SKIP_DIRS.isdisjoint(p.resolve().parts):
            out.append(p)
    return out


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint files/directories with an optional rule id filter.

    Parameters
    ----------
    paths:
        Files or directories (directories are walked for ``.py`` files).
    rules:
        Rule instances to run; defaults to the full repro rule set.
    select / ignore:
        Rule ids to keep / drop (``select`` wins first, then ``ignore``).
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        rules = [r for r in rules if r.id not in dropped]
    found: list[Diagnostic] = []
    for file in collect_files(paths):
        found.extend(lint_file(file, rules))
    return found
