"""The lint engine: rule protocol, diagnostics, suppressions, file runner.

Deliberately dependency-free (stdlib ``ast`` only): the linter must be
runnable in any environment the library itself runs in, including CI
images before dev extras are installed.

Layers
------
* :class:`Diagnostic` — one finding, with file/line/column, rule id,
  severity, message, and an optional autofix hint.
* :class:`Rule` — per-rule class: declares ``id`` / ``severity`` /
  ``summary`` / ``hint``, scopes itself via :meth:`Rule.applies_to`,
  and emits findings from :meth:`Rule.check` (usually by walking the
  pre-parsed AST with a small :class:`ast.NodeVisitor`).
* :class:`ProjectRule` — a rule that needs the *whole program*: it is
  handed a :class:`repro.lint.project.ProjectContext` (every parsed
  file plus the import/function index) and may emit findings in any
  file.  Per-file runs wrap the single file in a one-file project.
* :class:`LintContext` — everything a rule may need about one file:
  path, source, parsed tree, the repo-relative module path (``None``
  for non-library files such as tests), and the suppression table.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` — the
  runners, applying ``# repro: noqa[...]`` suppressions and
  select/ignore filters.  :func:`lint_paths` also runs the project
  pass and, on request, the dead-waiver audit
  (:func:`find_dead_waivers`): a suppression comment that waived no
  diagnostic during the run is itself a finding (``RPL900``, warning).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "DEAD_WAIVER_ID",
    "Diagnostic",
    "LintContext",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "build_context",
    "collect_files",
    "find_dead_waivers",
    "lint_contexts",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Blanket (``repro: noqa``) or targeted (``repro: noqa[RPL001, RPL002]``)
#: suppression comments; only real ``#`` comments count (tokenize-based),
#: never pattern look-alikes inside string literals.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")

#: Pseudo-rule id of the dead-waiver audit (not in the rule catalog: it
#: is a property of the *run*, not of any one file's AST).
DEAD_WAIVER_ID = "RPL900"

#: Directories never linted: bytecode caches and the deliberately
#: rule-violating lint fixtures (test data, not code).
_SKIP_DIRS = frozenset({"__pycache__", "lint_fixtures"})


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    rule:
        Rule id, e.g. ``"RPL002"``.
    severity:
        ``"error"`` or ``"warning"`` — errors fail the CLI run.
    path:
        File the finding is in (as given to the runner).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong, concretely, at this site.
    hint:
        How to fix it (the rule's autofix hint).
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        """Render as the classic ``path:line:col: RULE message`` line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def to_json(self) -> dict[str, Any]:
        """Plain-dict form for ``--format json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintContext:
    """Everything the rules may need about one file under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root, e.g.
    #: ``"repro/core/main.py"`` — ``None`` for files outside the
    #: library (tests, benchmarks, examples), which lets library-only
    #: rules scope themselves out cheaply.
    module_path: str | None
    #: line -> suppressed rule ids; an empty set means blanket noqa.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: lines whose waiver suppressed at least one diagnostic this run
    #: (fed to :func:`find_dead_waivers`).
    used_suppressions: set[int] = field(default_factory=set)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """Whether an in-line ``# repro: noqa`` waives *diagnostic*.

        A hit is recorded in :attr:`used_suppressions` so the
        dead-waiver audit can tell exercised waivers from stale ones.
        """
        rules = self.suppressions.get(diagnostic.line)
        if rules is None:
            return False
        if not rules or diagnostic.rule in rules:
            self.used_suppressions.add(diagnostic.line)
            return True
        return False

    def in_library(self, *prefixes: str, exclude: Sequence[str] = ()) -> bool:
        """Whether this file is library code under any of *prefixes*.

        ``prefixes`` / ``exclude`` are ``repro``-relative posix paths
        (``"repro/core"``, ``"repro/utils/rng.py"``).  With no prefixes,
        any library file matches.  Non-library files never match.
        """
        if self.module_path is None:
            return False
        for stop in exclude:
            if self.module_path == stop or self.module_path.startswith(stop.rstrip("/") + "/"):
                return False
        if not prefixes:
            return True
        return any(
            self.module_path == p or self.module_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` scopes the rule to a file subset (default: all
    files handed to the runner).
    """

    #: Stable rule id (``RPL...``); also the suppression token.
    id: str = ""
    #: ``"error"`` (fails the run) or ``"warning"``.
    severity: str = "error"
    #: One-line statement of the contract the rule enforces.
    summary: str = ""
    #: Autofix hint appended to every diagnostic of this rule.
    hint: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        """Whether this rule runs on *ctx* at all (path scoping)."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for *ctx*; the engine applies suppressions."""
        raise NotImplementedError

    def diagnostic(self, ctx: LintContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a finding of this rule anchored at *node*."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )


class ProjectRule(Rule):
    """A rule that analyses the whole program, not one file at a time.

    Subclasses implement :meth:`check_project`, which receives the
    :class:`repro.lint.project.ProjectContext` — every parsed file plus
    the import/function index — and may yield diagnostics anchored in
    *any* of its files (the runner routes each finding to its own
    file's suppression table).  :meth:`check` keeps project rules
    usable on a single in-memory source (``lint_source``) by wrapping
    the file in a one-file project; cross-file facts (e.g. a shared
    handle escaping into another module) are simply absent there.
    """

    def check_project(self, project: Any) -> Iterator[Diagnostic]:
        """Yield diagnostics over the whole :class:`ProjectContext`."""
        raise NotImplementedError

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.lint.project import ProjectContext

        yield from self.check_project(ProjectContext.from_contexts([ctx]))


class RuleVisitor(ast.NodeVisitor):
    """Shared visitor base: collects findings for one rule over one file."""

    def __init__(self, rule: Rule, ctx: LintContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.found: list[Diagnostic] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at *node*."""
        self.found.append(self.rule.diagnostic(self.ctx, node, message))


def _noqa_spec(comment: str) -> set[str] | None:
    """Parse one comment; ``None`` = not a waiver, empty set = blanket."""
    match = _NOQA_RE.search(comment)
    if match is None:
        return None
    spec = match.group("rules")
    if spec is None:
        return set()
    return {token.strip() for token in spec.split(",") if token.strip()}


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """Extract the ``# repro: noqa`` table (line -> rule ids).

    Comments are found with :mod:`tokenize`, so a waiver-shaped string
    *literal* (a linter test embedding ``"...  # repro: noqa[...]"`` in
    its source) is never mistaken for a suppression — which matters
    once stale waivers are themselves findings.  Sources that fail to
    tokenize (the RPL000 path) fall back to the line scan.
    """
    table: dict[int, set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            rules = _noqa_spec(token.string)
            if rules is not None:
                table[token.start[0]] = rules
    except (tokenize.TokenError, IndentationError, SyntaxError):
        table = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            rules = _noqa_spec(line)
            if rules is not None:
                table[lineno] = rules
    return table


def module_path_of(path: str | PurePath) -> str | None:
    """Repo path -> ``repro``-relative module path, or ``None``.

    Works for any spelling that contains a ``src/repro`` segment
    (relative, absolute, or from a sibling checkout): the part after the
    last ``src/`` that starts a ``repro`` package is the module path.
    """
    parts = PurePath(path).as_posix().split("/")
    for i in range(len(parts) - 1, 0, -1):
        if parts[i] == "repro" and parts[i - 1] == "src":
            return "/".join(parts[i:])
    return None


def build_context(path: str, source: str) -> LintContext:
    """Parse *source* and assemble the :class:`LintContext` for it."""
    tree = ast.parse(source, filename=path)
    return LintContext(
        path=path,
        source=source,
        tree=tree,
        module_path=module_path_of(path),
        suppressions=_parse_suppressions(source),
    )


def _syntax_error_diagnostic(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        rule="RPL000",
        severity="error",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        message=f"syntax error: {exc.msg}",
    )


def lint_contexts(
    contexts: Sequence[LintContext], rules: Sequence[Rule]
) -> list[Diagnostic]:
    """Run *rules* over pre-built contexts: per-file pass + project pass.

    Plain rules run file by file; :class:`ProjectRule` instances run
    once over a :class:`~repro.lint.project.ProjectContext` spanning
    every context, and each of their findings is checked against the
    suppression table of the file it is anchored in.
    """
    per_file = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    found: list[Diagnostic] = []
    for ctx in contexts:
        for rule in per_file:
            if not rule.applies_to(ctx):
                continue
            for diagnostic in rule.check(ctx):
                if not ctx.is_suppressed(diagnostic):
                    found.append(diagnostic)
    if project_rules:
        from repro.lint.project import ProjectContext

        project = ProjectContext.from_contexts(contexts)
        by_path = {ctx.path: ctx for ctx in contexts}
        for rule in project_rules:
            for diagnostic in rule.check_project(project):
                owner = by_path.get(diagnostic.path)
                if owner is None or not owner.is_suppressed(diagnostic):
                    found.append(diagnostic)
    found.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return found


def find_dead_waivers(contexts: Sequence[LintContext]) -> list[Diagnostic]:
    """Waivers that suppressed nothing during the run (``RPL900``).

    Call *after* :func:`lint_contexts` on the same context objects —
    usage is recorded as suppressions fire.  Only meaningful for runs
    of the full rule set: under ``--select``/``--ignore`` most waivers
    are trivially unexercised, so the CLI skips the audit there.
    """
    dead: list[Diagnostic] = []
    for ctx in contexts:
        for line, rules in sorted(ctx.suppressions.items()):
            if line in ctx.used_suppressions:
                continue
            spec = f"[{', '.join(sorted(rules))}]" if rules else " (blanket)"
            dead.append(
                Diagnostic(
                    rule=DEAD_WAIVER_ID,
                    severity="warning",
                    path=ctx.path,
                    line=line,
                    col=0,
                    message=f"dead waiver: repro: noqa{spec} suppresses no diagnostic",
                    hint="delete the stale suppression comment",
                )
            )
    dead.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return dead


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
) -> list[Diagnostic]:
    """Lint one in-memory source string; returns unsuppressed findings.

    Project rules see a one-file project (see :class:`ProjectRule`).
    """
    try:
        ctx = build_context(path, source)
    except SyntaxError as exc:
        return [_syntax_error_diagnostic(path, exc)]
    return lint_contexts([ctx], rules)


def lint_file(path: str | Path, rules: Sequence[Rule]) -> list[Diagnostic]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, rules, path=str(path))


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand *paths* (files or directories) to the ``.py`` files to lint.

    Anything under a ``__pycache__`` or ``lint_fixtures`` directory is
    skipped — walked *or* named directly (pre-commit passes changed
    files one by one) — caches and deliberately rule-violating test
    data are never linted.  Order is deterministic.
    """
    out: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if _SKIP_DIRS.isdisjoint(sub.parts):
                    out.append(sub)
        elif p.suffix == ".py" and _SKIP_DIRS.isdisjoint(p.resolve().parts):
            out.append(p)
    return out


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    dead_waivers: bool = False,
) -> list[Diagnostic]:
    """Lint files/directories with an optional rule id filter.

    Parameters
    ----------
    paths:
        Files or directories (directories are walked for ``.py`` files).
    rules:
        Rule instances to run; defaults to the full repro rule set.
    select / ignore:
        Rule ids to keep / drop (``select`` wins first, then ``ignore``).
    dead_waivers:
        Also audit suppression comments: any waiver that suppressed no
        diagnostic is reported as an ``RPL900`` warning.  Only sensible
        with the full rule set over the whole surface.

    The project pass (``ProjectRule`` subclasses — RPL013…) runs over
    all collected files together, so cross-file escape analysis sees
    the same program CI sees when given the default paths.
    """
    if rules is None:
        from repro.lint.rules import ALL_RULES

        rules = ALL_RULES
    if select is not None:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        rules = [r for r in rules if r.id not in dropped]
    contexts: list[LintContext] = []
    found: list[Diagnostic] = []
    for file in collect_files(paths):
        text = Path(file).read_text(encoding="utf-8")
        try:
            contexts.append(build_context(str(file), text))
        except SyntaxError as exc:
            found.append(_syntax_error_diagnostic(str(file), exc))
    found.extend(lint_contexts(contexts, rules))
    if dead_waivers:
        found.extend(find_dead_waivers(contexts))
    found.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return found
