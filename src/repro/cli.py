"""Command-line interface.

Subcommands::

    python -m repro list                      # experiments + one-line claims
    python -m repro run E1 E4 --seed 3        # run experiments, print tables
    python -m repro demo --n 256 --alpha 0.5 --d 0
                                              # one algorithm run + report
    python -m repro demo --n 256 --telemetry out.jsonl
                                              # + record spans/counters
    python -m repro obs summarize out.jsonl   # render a telemetry file
    python -m repro obs export metrics.jsonl  # Prometheus text exposition
    python -m repro obs top metrics.jsonl --follow
                                              # live rates + latency percentiles
    python -m repro report --out REPORT.md --telemetry
                                              # Markdown report + JSONL
    python -m repro lint src tests            # repro contract checks (RPL rules)
    python -m repro kernels                   # active kernel backend + dispatch table
    python -m repro serve --n 256 --snapshot svc.npz
                                              # online session runtime to completion
    python -m repro serve --restore svc.npz   # resume a killed service
    python -m repro loadgen --sessions 64 --quick --metrics metrics.jsonl
                                              # load-generate against a service

``run`` accepts ``--full`` for the full (slow) sweeps and ``--out DIR``
to archive rendered reports (what the benchmark suite does via
``benchmarks/reports/``).  ``--telemetry`` records the run through
:mod:`repro.obs` (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro import obs

if TYPE_CHECKING:
    from repro.serve import ServeConfig
from repro.billboard.oracle import ProbeOracle
from repro.core.main import find_preferences, find_preferences_unknown_d
from repro.core.params import Params
from repro.metrics.evaluation import evaluate

__all__ = ["main", "build_parser"]


def _add_serve_flags(
    parser: argparse.ArgumentParser,
    *,
    max_phases: int | None = None,
    d_max: int | None = None,
) -> None:
    """The one flag set mirroring :class:`repro.serve.ServeConfig`.

    Both ``serve`` and ``loadgen`` deployments are configured through
    this helper, so a topology/engine flag exists once and means the
    same thing everywhere; only the ``max_phases``/``d_max`` defaults
    differ per command.
    """
    parser.add_argument("--seed", type=int, default=7, help="RNG seed (instance + service)")
    parser.add_argument(
        "--max-phases", type=int, default=max_phases, help="cap on anytime phases"
    )
    parser.add_argument(
        "--d-max", type=int, default=d_max, help="cap on the doubling schedule"
    )
    parser.add_argument("--budget", type=int, default=None, help="per-player probe budget")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="worker processes (default 1; >1 shards sessions by player id)",
    )
    parser.add_argument("--probes", type=int, default=32, help="probe grant per request")
    parser.add_argument("--window", type=int, default=32, help="micro-batching window")
    parser.add_argument(
        "--sequential", action="store_true", help="scalar probes instead of micro-batching"
    )
    parser.add_argument(
        "--log-capacity", type=int, default=None, metavar="BYTES",
        help="shared post-log size for workers > 1 (default: sized from the instance)",
    )


def _serve_config_from_args(args: argparse.Namespace, *, seed: int) -> ServeConfig:
    """Build the :class:`ServeConfig` every serve-flagged command runs on."""
    from repro.serve import ServeConfig

    return ServeConfig(
        seed=seed,
        max_phases=args.max_phases,
        d_max=args.d_max,
        budget=args.budget,
        workers=args.workers or 1,
        window=args.window,
        probes_per_request=args.probes,
        micro_batch=not args.sequential,
        log_capacity=args.log_capacity,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Tell Me Who I Am' (SPAA 2006): experiments and demos.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and their claims")

    run = sub.add_parser("run", help="run experiments and print their tables")
    run.add_argument("experiments", nargs="+", help="experiment ids (e.g. E1 E4) or 'all'")
    run.add_argument("--seed", type=int, default=1, help="base RNG seed")
    run.add_argument("--full", action="store_true", help="full (slow) sweeps instead of quick")
    run.add_argument("--out", type=Path, default=None, help="directory to archive reports")

    demo = sub.add_parser("demo", help="run the main algorithm on a synthetic instance")
    demo.add_argument("--n", type=int, default=256, help="players (= objects)")
    demo.add_argument("--alpha", type=float, default=0.5, help="community frequency")
    demo.add_argument("--d", type=int, default=0, help="community diameter (planted)")
    demo.add_argument(
        "--workload", default="planted", help="workload family (see repro.workloads.registry)"
    )
    demo.add_argument("--unknown-d", action="store_true", help="use the §6 doubling wrapper")
    demo.add_argument("--robust", action="store_true", help="use Params.robust() constants")
    demo.add_argument("--profile", action="store_true", help="print the per-phase cost breakdown")
    demo.add_argument("--seed", type=int, default=7, help="RNG seed")
    demo.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="OUT.jsonl",
        help="record run telemetry (spans, counters, events) to this JSONL file",
    )

    report = sub.add_parser("report", help="run experiments and write a Markdown report")
    report.add_argument("--out", type=Path, default=Path("REPORT.md"), help="output file")
    report.add_argument("--experiments", nargs="*", default=None, help="subset of experiment ids")
    report.add_argument("--seed", type=int, default=1, help="base RNG seed")
    report.add_argument("--full", action="store_true", help="full (slow) sweeps")
    report.add_argument(
        "--telemetry",
        action="store_true",
        help="archive run telemetry as <out>.telemetry.jsonl next to the report",
    )

    serve = sub.add_parser("serve", help="run the online session runtime to completion")
    serve.add_argument("--workload", default="planted", help="workload family")
    serve.add_argument("--n", type=int, default=256, help="players (= sessions)")
    serve.add_argument("--m", type=int, default=None, help="objects (defaults to --n)")
    serve.add_argument("--alpha", type=float, default=0.5, help="community frequency")
    serve.add_argument("--d", type=int, default=0, help="community diameter (planted)")
    _add_serve_flags(serve)
    serve.add_argument(
        "--snapshot", type=Path, default=None, metavar="OUT",
        help="archive the final deployment (.npz single service, directory otherwise)",
    )
    serve.add_argument(
        "--restore", type=Path, default=None, metavar="IN",
        help="resume from a snapshot (.npz or runtime directory) instead of a fresh service",
    )

    loadgen = sub.add_parser("loadgen", help="drive a service with synthetic load")
    loadgen.add_argument("--workload", default="planted", help="workload family")
    loadgen.add_argument(
        "--dataset", type=Path, default=None, metavar="DIR",
        help="serve an ingested dataset store instead of a synthetic workload",
    )
    loadgen.add_argument("--sessions", type=int, default=256, help="players (= sessions)")
    loadgen.add_argument("--objects", type=int, default=None, help="objects (defaults to --sessions)")
    loadgen.add_argument("--alpha", type=float, default=0.5, help="community frequency")
    loadgen.add_argument("--d", type=int, default=0, help="community diameter (planted)")
    _add_serve_flags(loadgen, max_phases=1, d_max=2)
    loadgen.add_argument("--mode", choices=("closed", "open"), default="closed", help="arrival loop")
    loadgen.add_argument("--rate", type=float, default=64.0, help="open-loop arrivals per window")
    loadgen.add_argument(
        "--quick", action="store_true", help="small CI-smoke preset (caps sessions and phases)"
    )
    loadgen.add_argument(
        "--json", type=Path, default=None, metavar="OUT.json", help="also write the report as JSON"
    )
    loadgen.add_argument(
        "--warmup", type=int, default=0,
        help="requests excluded from the steady-state percentiles",
    )
    loadgen.add_argument(
        "--metrics", type=Path, default=None, metavar="OUT.jsonl",
        help="write live metric snapshots (watch with 'repro obs top')",
    )
    loadgen.add_argument(
        "--metrics-interval", type=float, default=1.0,
        help="seconds between metric snapshots (with --metrics)",
    )

    dataset = sub.add_parser("dataset", help="ingest and inspect real preference corpora")
    dataset_sub = dataset.add_subparsers(dest="dataset_command", required=True)
    d_ingest = dataset_sub.add_parser(
        "ingest", help="stream a ratings/edge-list file into a packed dataset store"
    )
    d_ingest.add_argument(
        "source", help="raw file (CSV/TSV ratings or SNAP edges, .gz ok) or a registry name"
    )
    d_ingest.add_argument("out", type=Path, help="dataset directory to create")
    d_ingest.add_argument(
        "--format", choices=("auto", "ratings", "edges"), default="auto", help="source format"
    )
    d_ingest.add_argument(
        "--threshold", type=float, default=None,
        help="'like' iff rating > threshold (registry entries carry their own default)",
    )
    d_ingest.add_argument(
        "--missing", choices=("zero", "one", "majority"), default="zero",
        help="imputation for never-rated entries",
    )
    d_ingest.add_argument("--shard-rows", type=int, default=1024, help="rows per packed shard")
    d_ingest.add_argument("--name", default=None, help="dataset label (default: source filename)")
    d_info = dataset_sub.add_parser("info", help="print a committed dataset's manifest summary")
    d_info.add_argument("dir", type=Path, help="dataset directory")
    d_sample = dataset_sub.add_parser("sample", help="print the first rows of the packed matrix")
    d_sample.add_argument("dir", type=Path, help="dataset directory")
    d_sample.add_argument("--rows", type=int, default=8, help="rows to show")
    d_eval = dataset_sub.add_parser(
        "evaluate", help="run the paper's algorithms and all baselines, measuring stretch"
    )
    d_eval.add_argument("dir", type=Path, help="dataset directory")
    d_eval.add_argument("--seed", type=int, default=0, help="rng seed for the panel")
    d_eval.add_argument(
        "--radius", type=int, default=None,
        help="community-discovery ball radius (default m//10)",
    )
    d_eval.add_argument(
        "--json", type=Path, default=None, metavar="OUT.json",
        help="also write the score table as JSON",
    )

    obs_cmd = sub.add_parser("obs", help="telemetry utilities")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser("summarize", help="render a telemetry JSONL file")
    summarize.add_argument("file", type=Path, help="telemetry file written with --telemetry")
    export = obs_sub.add_parser(
        "export", help="Prometheus text exposition of a metrics snapshot"
    )
    export.add_argument("file", type=Path, help="telemetry file with metric snapshots")
    export.add_argument(
        "--snapshot", type=int, default=-1,
        help="snapshot index to export (default: the last)",
    )
    top = obs_sub.add_parser(
        "top", help="render per-counter rates and latency percentiles from snapshots"
    )
    top.add_argument("file", type=Path, help="telemetry file a loadgen run is writing")
    top.add_argument(
        "--follow", action="store_true", help="keep refreshing until interrupted"
    )
    top.add_argument(
        "--refresh", type=float, default=1.0, help="seconds between refreshes (with --follow)"
    )

    kernels = sub.add_parser(
        "kernels", help="show the active repro.metrics.kernels backend and why"
    )
    kernels.add_argument(
        "--json", action="store_true", help="machine-readable kernel_info() payload"
    )

    from repro.lint.cli import add_lint_subparser

    add_lint_subparser(sub)
    return parser


def _cmd_list() -> int:
    from repro.experiments import REGISTRY, run_experiment  # noqa: F401  (registers)

    # Import docstring claims lazily from the registered runners' modules.
    for eid in sorted(REGISTRY, key=lambda e: (e[0], int(e[1:]))):
        fn = REGISTRY[eid]
        doc = (sys.modules[fn.__module__].__doc__ or "").strip().splitlines()
        claim = doc[0] if doc else ""
        print(f"{eid:4s} {claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY, run_experiment

    wanted = list(REGISTRY) if "all" in args.experiments else args.experiments
    unknown = [e for e in wanted if e not in REGISTRY]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}; known: {', '.join(sorted(REGISTRY))}")
        return 2
    failures = 0
    for eid in wanted:
        result = run_experiment(eid, quick=not args.full, rng=args.seed)
        rendered = result.render()
        print(rendered)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{eid}.txt").write_text(rendered + "\n")
        failures += 0 if result.passed else 1
    return 1 if failures else 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.workloads.registry import WORKLOADS, make_instance

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; known: {', '.join(sorted(WORKLOADS))}")
        return 2
    inst = make_instance(args.workload, args.n, args.n, args.alpha, args.d, rng=args.seed)
    community = inst.main_community()
    oracle = ProbeOracle(inst)
    params = Params.robust() if args.robust else Params.practical()
    recorder = None
    ctx: contextlib.AbstractContextManager[None] = contextlib.nullcontext()
    if args.telemetry is not None:
        recorder = obs.Recorder(
            meta={"command": "demo", "workload": args.workload, "n": args.n, "seed": args.seed}
        )
        ctx = obs.recording(recorder)
    with ctx:
        with obs.span("demo", oracle=oracle, alpha=args.alpha, D=args.d):
            with oracle.phase("find_preferences"):
                if args.unknown_d:
                    result = find_preferences_unknown_d(
                        oracle, args.alpha, params=params, rng=args.seed + 1, d_max=max(args.d * 2, 4)
                    )
                else:
                    result = find_preferences(oracle, args.alpha, args.d, params=params, rng=args.seed + 1)
    report = evaluate(result.outputs, inst.prefs, community.members, diam=community.diameter)
    print(f"instance   : {inst.name}")
    print(f"community  : {community.size} players, diameter {community.diameter}")
    print(f"algorithm  : {result.algorithm}")
    print(f"rounds     : {result.rounds} (solo = {args.n})")
    print(f"discrepancy: {report.discrepancy}")
    print(f"stretch    : {report.stretch:.2f}")
    if args.profile:
        from repro.analysis.cost_profile import phase_breakdown

        print()
        print(phase_breakdown(oracle).render())
    if recorder is not None:
        recorder.dump_jsonl(args.telemetry)
        print(f"telemetry  : {args.telemetry} ({len(recorder.spans)} spans, "
              f"{len(recorder.counters)} counters)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import LocalRuntime, load_runtime, load_service, save_service, serve
    from repro.workloads.registry import WORKLOADS, make_instance

    inst = None
    if args.restore is not None:
        try:
            if args.restore.is_dir():
                runtime = load_runtime(args.restore, workers=args.workers)
                print(f"restored   : {args.restore} ({runtime.workers} workers, "
                      f"{runtime.phases_completed} completed)")
            else:
                restored = load_service(args.restore)
                runtime = LocalRuntime(
                    restored, config=_serve_config_from_args(args, seed=args.seed + 1)
                )
                print(f"restored   : {args.restore} (phase {restored.phase_j}, "
                      f"{restored.phases_completed} completed)")
        except (FileNotFoundError, ValueError) as exc:
            print(f"cannot restore {args.restore}: {exc}")
            return 2
    else:
        if args.workload not in WORKLOADS:
            print(f"unknown workload {args.workload!r}; known: {', '.join(sorted(WORKLOADS))}")
            return 2
        m = args.m if args.m is not None else args.n
        inst = make_instance(args.workload, args.n, m, args.alpha, args.d, rng=args.seed)
        runtime = serve(inst, _serve_config_from_args(args, seed=args.seed + 1))
    with runtime:
        outputs = runtime.run_to_completion()
        stage = "drained" if runtime.exhausted else "done"
        topology = f", {runtime.workers} workers" if runtime.workers > 1 else ""
        print(f"service    : n={runtime.n_players}, m={runtime.n_objects}, "
              f"stage {stage}{topology}")
        print(f"phases     : {runtime.phases_completed} completed "
              f"(alphas {', '.join(f'{a:g}' for a in runtime.completed) or 'none'})")
        print(f"probes     : {int(runtime.probe_counts().sum())} total, "
              f"{runtime.oracle_batches} oracle batches")
        if inst is not None:
            community = inst.main_community()
            report = evaluate(outputs, inst.prefs, community.members, diam=community.diameter)
            print(f"discrepancy: {report.discrepancy}")
        if args.snapshot is not None:
            if isinstance(runtime, LocalRuntime) and args.snapshot.suffix == ".npz":
                written = save_service(args.snapshot, runtime.service)
            else:
                written = runtime.save(args.snapshot)
            print(f"snapshot   : {written}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import LoadgenConfig, run_loadgen
    from repro.serve.loadgen import dump_report_json
    from repro.workloads.registry import WORKLOADS

    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; known: {', '.join(sorted(WORKLOADS))}")
        return 2
    sessions = args.sessions
    max_phases = args.max_phases
    d_max = args.d_max
    probes = args.probes
    window = args.window
    if args.quick:
        sessions = min(sessions, 64)
        max_phases = 1
        d_max = 1
        probes = min(probes, 16)
        window = min(window, 16)
    config = LoadgenConfig(
        workload=args.workload,
        dataset=None if args.dataset is None else str(args.dataset),
        sessions=sessions,
        objects=args.objects,
        alpha=args.alpha,
        D=args.d,
        seed=args.seed,
        mode=args.mode,
        rate=args.rate,
        probes_per_request=probes,
        window=window,
        max_phases=max_phases,
        d_max=d_max,
        budget=args.budget,
        micro_batch=not args.sequential,
        workers=args.workers or 1,
        log_capacity=args.log_capacity,
        warmup=args.warmup,
        metrics_path=None if args.metrics is None else str(args.metrics),
        metrics_interval_s=args.metrics_interval,
    )
    report = run_loadgen(config)
    print(report.render())
    if args.metrics is not None:
        print(f"metrics  : {args.metrics} (render with 'repro obs top {args.metrics}')")
    if args.json is not None:
        dump_report_json(str(args.json), report)
        print(f"json     : {args.json}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets import DatasetStore, dataset_names, get_dataset, ingest

    if args.dataset_command == "ingest":
        source = Path(args.source)
        threshold = args.threshold
        if not source.exists() and args.source in dataset_names():
            spec = get_dataset(args.source)
            source = spec.materialize(args.out.parent / "raw")
            if threshold is None:
                threshold = spec.threshold
        if not source.exists():
            print(f"no such source file or registry name: {args.source}")
            print(f"registered datasets: {', '.join(dataset_names())}")
            return 2
        result = ingest(
            source,
            args.out,
            threshold=threshold if threshold is not None else 0.0,
            missing=args.missing,
            fmt=args.format,
            shard_rows=args.shard_rows,
            name=args.name,
        )
        print(
            f"ingested {result.rows_read} {result.format} rows -> {result.path} "
            f"({result.n} players x {result.m} objects, {result.shards} shards)"
        )
        return 0
    if args.dataset_command == "info":
        info = DatasetStore.open(args.dir).info()
        for key in ("name", "n", "m", "shards", "packed_bytes"):
            print(f"{key:12s}: {info[key]}")
        for group in ("source", "stats"):
            for key, value in info[group].items():
                print(f"{group + '.' + key:12s}: {value}")
        return 0
    if args.dataset_command == "sample":
        store = DatasetStore.open(args.dir)
        rows = store.sample(args.rows)
        print(f"{store.name}: first {rows.shape[0]} of {store.n} players, m={store.m}")
        for row in rows:
            print("".join("#" if bit else "." for bit in row))
        return 0
    if args.dataset_command == "evaluate":
        import json as _json

        from repro.datasets.evaluate import evaluate_dataset

        evaluation = evaluate_dataset(args.dir, rng=args.seed, radius=args.radius)
        print(evaluation.render())
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(evaluation.to_dict(), fh, indent=2)
                fh.write("\n")
            print(f"json     : {args.json}")
        return 0
    raise AssertionError(
        f"unhandled dataset command {args.dataset_command!r}"
    )  # pragma: no cover


def _cmd_kernels(args: argparse.Namespace) -> int:
    """Introspect the kernel-dispatch layer (``repro kernels``).

    The serving twin of ``repro obs top``: answers "which backend is
    this process actually running, and why" without touching the
    substrate — the same payload the benchmark records embed as their
    ``kernel_backend`` honesty stamp.
    """
    import json as _json

    from repro.metrics.kernels import kernel_info

    info = kernel_info()
    if args.json:
        print(_json.dumps(info, indent=2))
        return 0
    print(f"backend : {info['backend']}")
    print(f"reason  : {info['reason']}")
    for name, value in info["env"].items():
        print(f"env     : {name}={value if value is not None else '(unset)'}")
    print("kernels :")
    for name, backend in info["kernels"].items():
        print(f"  {name:24s} -> {backend}")
    return 0


def _load_telemetry(path: Path) -> "obs.TelemetryRun | None":
    try:
        return obs.load_jsonl(path)
    except FileNotFoundError:
        print(f"no such telemetry file: {path}")
        return None
    except ValueError as exc:
        print(f"cannot read {path}: {exc}")
        return None


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "summarize":
        run = _load_telemetry(args.file)
        if run is None:
            return 2
        print(obs.render_summary(run))
        return 0
    if args.obs_command == "export":
        run = _load_telemetry(args.file)
        if run is None:
            return 2
        if not run.metrics:
            print(f"{args.file} has no metric snapshots (run loadgen with --metrics)")
            return 2
        try:
            snapshot = run.metrics[args.snapshot]
        except IndexError:
            print(f"snapshot index {args.snapshot} out of range (file has {len(run.metrics)})")
            return 2
        print(obs.MetricRegistry.from_snapshot(snapshot).expose_text(), end="")
        return 0
    if args.obs_command == "top":
        import time as _time

        while True:
            run = _load_telemetry(args.file)
            if run is None:
                return 2
            if not run.metrics:
                print(f"{args.file} has no metric snapshots yet")
                if not args.follow:
                    return 2
            else:
                previous = run.metrics[-2] if len(run.metrics) > 1 else None
                frame = obs.metrics.render_frame(run.metrics[-1], previous)
                if args.follow:
                    # ANSI clear-screen + home keeps the frame in place.
                    print("\x1b[2J\x1b[H" + frame, flush=True)
                else:
                    print(frame)
            if not args.follow:
                return 0
            try:
                _time.sleep(args.refresh)
            except KeyboardInterrupt:  # pragma: no cover - interactive only
                return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "dataset":
        return _cmd_dataset(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "kernels":
        return _cmd_kernels(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    if args.command == "report":
        from repro.reporting import write_report

        experiments = args.experiments or None
        telemetry = args.out.with_suffix(".telemetry.jsonl") if args.telemetry else None
        report = write_report(
            args.out, experiments, quick=not args.full, seed=args.seed, telemetry=telemetry
        )
        print(f"wrote {args.out} — {report.n_passed}/{len(report.results)} experiments passed")
        if telemetry is not None:
            print(f"telemetry archived at {telemetry}")
        return 0 if report.all_passed else 1
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
