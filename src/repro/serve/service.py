"""The §6 anytime loop as a long-lived service.

:class:`ServeService` owns everything one deployment of the anytime
algorithm needs — the charged :class:`~repro.billboard.oracle.ProbeOracle`,
the master rng, the per-player :class:`~repro.serve.sessions.SessionStore`,
and the phase state machine — but never *drives* it: the router
(:mod:`repro.serve.router`) advances sessions and the service only
reacts to stage completions.

Equivalence contract
--------------------
The service replays :func:`repro.engine.anytime_player.run_anytime_engine`'s
randomness consumption exactly — per phase one
``UnknownDCoins.draw(..., rng=spawn(gen))``, then for the merge stage
``spawn_many(spawn(gen), n)`` — and runs the *same* player programs.
Together with the schedule-insensitivity of those programs (see
:mod:`repro.serve.sessions`), a service driven to completion is bitwise
equal — outputs *and* per-player probe counts — to the offline
:func:`repro.core.main.anytime_find_preferences` for the same seed.

Checkpoints
-----------
Phase barriers are the consistent cuts of the anytime loop: between
phases no program is suspended, so the whole service is a handful of
arrays plus the master rng state.  The service captures such a
:class:`ServiceCheckpoint` after every completed phase (and on
finish/drain); :mod:`repro.serve.snapshot` archives it.  Restoring
re-draws the interrupted phase coin-for-coin, so a killed-and-resumed
service ends bitwise-identical to one that was never interrupted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro import obs
from repro.obs import metrics
from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.engine.anytime_player import merge_program
from repro.engine.main_player import UnknownDCoins, find_preferences_unknown_d_player
from repro.metrics.bitpack import BitMatrix
from repro.model.instance import Instance
from repro.serve.config import ServeConfig as _ServeConfig
from repro.serve.sessions import PlayerProgram, SessionStore
from repro.utils.rng import as_generator, from_state, spawn, spawn_many, state_of

if TYPE_CHECKING:
    from repro.serve.config import ServeConfig

__all__ = ["ServeService", "ServiceCheckpoint", "anytime_phase_cap"]


def anytime_phase_cap(n: int, max_phases: int | None) -> int:
    """Largest phase index ``j`` the §6 anytime loop runs.

    Same formula as :func:`repro.core.main.anytime_find_preferences`
    (phases ``α = 2⁻ʲ`` for ``j = 0 … cap``); ``max_phases`` caps the
    count from above.
    """
    cap = int(math.floor(math.log2(max(2.0, n / max(1.0, math.log(max(n, 2)))))))
    if max_phases is not None:
        cap = min(cap, max_phases - 1)
    return cap


@dataclass
class ServiceCheckpoint:
    """A phase-barrier cut of a whole service (see module docstring).

    ``hidden`` is the oracle's preference matrix — the checkpoint must
    carry it so a restored service can answer probes, but serving code
    treats it as an opaque array (lint rule RPL009 enforces that nothing
    under ``repro/serve`` reaches for ``.prefs``).
    """

    config: ServeConfig
    params: Params
    phase: int
    completed: list[float]
    exhausted: bool
    rng_state: dict[str, Any]
    hidden: np.ndarray
    counts: np.ndarray
    revealed: np.ndarray
    values: np.ndarray
    channels: dict[str, np.ndarray]
    best: np.ndarray | None


class ServeService:
    """Phase state machine of one online anytime deployment.

    The service is always in one of four stages:

    * ``"main"`` — sessions run the phase-``j`` unknown-``D`` programs;
    * ``"merge"`` — sessions RSelect the new phase output into the
      running best;
    * ``"done"`` — every phase completed; sessions are ``"complete"``;
    * ``"drained"`` — the budget ran out; sessions are ``"drained"`` and
      answer from the last completed phase.
    """

    def __init__(self, instance: Instance | np.ndarray | BitMatrix, *, config: ServeConfig | None = None) -> None:
        self.config = config if config is not None else _ServeConfig()
        self.params = self.config.resolved_params()
        self.oracle = self._make_oracle(instance)
        self._gen = as_generator(self.config.seed)
        self.sessions = self._make_sessions()
        self.phase_j = 0
        self.stage = "main"
        self.best: np.ndarray | None = None
        self.completed: list[float] = []
        self.exhausted = False
        self._stage_outputs: dict[int, np.ndarray] = {}
        self._max_j = anytime_phase_cap(self.oracle.n_players, self.config.max_phases)
        self._checkpoint = self._capture_checkpoint()
        if self.phase_j > self._max_j:
            self._finish_service()
        else:
            self._begin_phase()

    # ------------------------------------------------------------------
    # topology hooks (overridden by the sharded worker service)
    # ------------------------------------------------------------------
    def _make_oracle(self, instance: Instance | np.ndarray | BitMatrix) -> ProbeOracle:
        """Build the charged oracle; shard workers attach a shared billboard."""
        return ProbeOracle(
            instance,
            budget=self.config.budget,
            charge_repeats=self.config.charge_repeats,
        )

    def _make_sessions(self) -> SessionStore:
        """Build the session store; shard workers pass their player subset."""
        return SessionStore(self.oracle.n_players)

    def _local_players(self) -> Sequence[int]:
        """Players whose sessions this process owns (all of them here)."""
        return range(self.oracle.n_players)

    # ------------------------------------------------------------------
    # shape / progress
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        """Population size ``n``."""
        return self.oracle.n_players

    @property
    def n_objects(self) -> int:
        """Object count ``m``."""
        return self.oracle.n_objects

    @property
    def finished(self) -> bool:
        """Whether the service stopped advancing (``done`` or ``drained``)."""
        return self.stage in ("done", "drained")

    @property
    def phases_completed(self) -> int:
        """Number of fully merged anytime phases."""
        return len(self.completed)

    def estimate(self, player: int) -> np.ndarray:
        """Best-so-far preference vector of *player* (anytime answer).

        Before any phase completes this is the billboard fallback the
        offline anytime loop would return (revealed grades, zeros
        elsewhere); afterwards it is the running merged best.  Always a
        copy.
        """
        if self.best is not None:
            return self.best[player].copy()
        mask = self.oracle.billboard.revealed_row(player)
        values = self.oracle.billboard.revealed_values()[player]
        return np.where(mask, values, 0).astype(np.int8)

    def outputs(self) -> np.ndarray:
        """Best-so-far ``(n, m)`` output matrix (anytime answer; a copy)."""
        if self.best is not None:
            return self.best.copy()
        mask = self.oracle.billboard.revealed_mask()
        values = self.oracle.billboard.revealed_values()
        return np.where(mask, values, 0).astype(np.int8)

    # ------------------------------------------------------------------
    # stage machine (driven by the router)
    # ------------------------------------------------------------------
    def note_stage_done(self, player: int, output: np.ndarray) -> None:
        """Record *player*'s stage output; fires the barrier when all are in."""
        if self.finished:
            raise RuntimeError("service is finished; no stage is running")
        self._stage_outputs[player] = np.asarray(output, dtype=np.int8)
        if len(self._stage_outputs) == len(self._local_players()):
            self._on_stage_complete()

    def mark_exhausted(self) -> None:
        """Budget ran out mid-phase: freeze at the last completed phase.

        Mirrors the offline loop's ``except BudgetExceededError`` arm —
        the interrupted phase is discarded, the best *completed* output
        stands (or the billboard fallback if no phase ever completed),
        and the service stops advancing.  Never an error to clients.
        """
        if self.finished:
            return
        self.exhausted = True
        self._stage_outputs = {}
        obs.event("serve.budget_exhausted", phase=self.phase_j, stage=self.stage)
        metrics.incr("serve.budget_exhausted_total")
        self.stage = "drained"
        self.sessions.freeze("drained")
        self._checkpoint = self._capture_checkpoint()

    def checkpoint(self) -> ServiceCheckpoint:
        """The latest phase-barrier checkpoint (see module docstring)."""
        return self._checkpoint

    @classmethod
    def from_checkpoint(cls, ckpt: ServiceCheckpoint) -> "ServeService":
        """Rebuild a service from a :class:`ServiceCheckpoint`.

        The restored service re-draws the interrupted phase's coins from
        the checkpointed rng state, so everything after the cut replays
        bitwise-identically.
        """
        service = cls.__new__(cls)
        service.config = ckpt.config
        service.params = ckpt.params
        billboard = Billboard.restore(ckpt.revealed, ckpt.values, ckpt.channels)
        service.oracle = ProbeOracle.restore(
            ckpt.hidden,
            ckpt.counts,
            billboard=billboard,
            budget=ckpt.config.budget,
            charge_repeats=ckpt.config.charge_repeats,
        )
        service._resume_from_checkpoint(ckpt)
        return service

    def _resume_from_checkpoint(self, ckpt: ServiceCheckpoint) -> None:
        """Shared tail of the restore paths: ``self.oracle`` is already set."""
        self._gen = from_state(ckpt.rng_state)
        self.sessions = self._make_sessions()
        self.phase_j = ckpt.phase
        self.stage = "main"
        self.best = None if ckpt.best is None else np.asarray(ckpt.best, dtype=np.int8).copy()
        self.completed = list(ckpt.completed)
        self.exhausted = bool(ckpt.exhausted)
        self._stage_outputs = {}
        self._max_j = anytime_phase_cap(self.oracle.n_players, ckpt.config.max_phases)
        self._checkpoint = self._capture_checkpoint()
        if self.exhausted:
            self.stage = "drained"
            self.sessions.freeze("drained")
        elif self.phase_j > self._max_j:
            self._finish_service()
        else:
            self._begin_phase()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _begin_phase(self) -> None:
        """Draw phase-``j`` coins and install the unknown-``D`` programs."""
        n, m = self.n_players, self.n_objects
        alpha_j = 2.0 ** (-self.phase_j)
        coins = UnknownDCoins.draw(
            n, m, alpha_j, params=self.params, rng=spawn(self._gen), d_max=self.config.d_max
        )
        programs: dict[int, PlayerProgram] = {
            pl: find_preferences_unknown_d_player(
                pl, coins, self.oracle.billboard, n, m, params=self.params,
                channel_prefix=f"phase{self.phase_j}/",
            )
            for pl in self._local_players()
        }
        self.stage = "main"
        self.sessions.load_stage(programs)

    def _on_stage_complete(self) -> None:
        n = self.n_players
        outputs = np.zeros((n, self.n_objects), dtype=np.int8)
        for pl, vec in self._stage_outputs.items():
            outputs[pl] = vec
        self._stage_outputs = {}
        if self.stage == "main":
            if self.best is None:
                self.best = outputs
                self._finish_phase()
                return
            # Every topology draws the full-population merge rngs so the
            # master generator stays in lockstep across shards; each
            # process only *runs* the programs of the players it owns.
            merge_rngs = spawn_many(spawn(self._gen), n)
            programs: dict[int, PlayerProgram] = {
                pl: merge_program(pl, self.best[pl], outputs[pl], n, merge_rngs[pl], self.params)
                for pl in self._local_players()
            }
            self.stage = "merge"
            self.sessions.load_stage(programs)
            return
        if self.stage == "merge":
            self.best = outputs
            self._finish_phase()
            return
        raise AssertionError(f"stage {self.stage!r} cannot complete")  # pragma: no cover

    def _finish_phase(self) -> None:
        """Phase barrier: record completion, checkpoint, start the next."""
        self.completed.append(2.0 ** (-self.phase_j))
        obs.incr("serve.phases_completed")
        metrics.incr("serve.phases_completed_total")
        self.phase_j += 1
        metrics.set_gauge("serve.phase", self.phase_j)
        self._checkpoint = self._capture_checkpoint()
        if self.phase_j > self._max_j:
            self._finish_service()
        else:
            self._begin_phase()

    def _finish_service(self) -> None:
        self.stage = "done"
        self.sessions.freeze("complete")
        self._checkpoint = self._capture_checkpoint()

    def _capture_checkpoint(self) -> ServiceCheckpoint:
        oracle_state = self.oracle.checkpoint()
        revealed, values, channels = self.oracle.billboard.checkpoint()
        return ServiceCheckpoint(
            config=self.config,
            params=self.params,
            phase=self.phase_j,
            completed=list(self.completed),
            exhausted=self.exhausted,
            rng_state=state_of(self._gen),
            hidden=oracle_state["prefs"],
            counts=oracle_state["counts"],
            revealed=revealed,
            values=values,
            channels=channels,
            best=None if self.best is None else self.best.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"ServeService(n={self.n_players}, m={self.n_objects}, stage={self.stage!r}, "
            f"phase={self.phase_j}, completed={self.phases_completed})"
        )


def __getattr__(name: str) -> object:
    if name == "ServeConfig":
        import warnings

        warnings.warn(
            "repro.serve.service.ServeConfig has moved to "
            "repro.serve.config.ServeConfig; import it from there "
            "(or use the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.serve.config import ServeConfig

        return ServeConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
