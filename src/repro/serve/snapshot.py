"""Format-versioned checkpoint/restore of a whole serving runtime.

Extends the ``.npz`` + embedded-JSON conventions of :mod:`repro.io`
(format version tag, ``kind`` discriminator, ``meta_json`` byte array)
with a ``kind="service"`` archive holding everything
:class:`~repro.serve.service.ServiceCheckpoint` captures: the hidden
matrix, billboard contents (revealed mask/grades plus every posted
vector channel), per-player probe accounting, the completed-phase
outputs, and the master rng state.

Since format version 3 the hidden matrix is archived *bit-packed*
(``hidden_packed`` + the logical ``hidden_shape`` in the metadata, 8×
smaller before compression even sees it); version-2 archives with a
dense ``hidden`` array still load bit-identically.

Snapshots are cut at phase barriers — the anytime loop's consistent
cuts, where no player program is suspended — so suspended coroutines
never need pickling.  Killing a service mid-phase and restoring its last
snapshot rolls back to that barrier; the restored service re-draws the
interrupted phase coin-for-coin and ends bitwise-identical (outputs
*and* probe counts) to a never-interrupted run, which
``tests/test_serve_snapshot.py`` pins.

Whole-runtime snapshots (format version 4)
------------------------------------------
:func:`save_runtime` / :func:`load_runtime` cover an entire deployment
— any worker count — atomically.  The archive is a *directory*:

* ``shard-<k>.npz`` (``kind="service-shard"``) — shard ``k``'s player
  ids plus its rows of the per-player arrays (probe counts, revealed
  mask/grades, best outputs);
* ``global.npz`` (``kind="service-global"``) — everything identical
  across shards at a barrier: config, params, phase progress, the
  master rng state, the billboard channels, and the bit-packed hidden
  matrix;
* ``manifest.json`` — worker count and file list, written **last**
  (tmp + atomic rename): a crash mid-save leaves no manifest, and a
  directory without a manifest is not a snapshot.

Because every shard holds the same rng state and channels at a barrier
(see :mod:`repro.serve.sharded`), the per-shard arrays reassemble into
one :class:`ServiceCheckpoint` that restores to *any* topology:
``load_runtime(path, workers=8)`` repartitions a 2-worker snapshot
bitwise-faithfully, and ``workers=1`` restores the in-process runtime.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.params import Params
from repro.io import FORMAT_VERSION, check_format_version
from repro.obs import metrics
from repro.metrics.bitpack import pack_rows, unpack_rows
from repro.serve.config import ServeConfig
from repro.serve.service import ServeService, ServiceCheckpoint

if TYPE_CHECKING:
    from repro.serve.runtime import ServeRuntime

__all__ = ["load_runtime", "load_service", "save_runtime", "save_service"]


def save_service(path: str | Path, service: ServeService) -> Path:
    """Write *service*'s latest barrier checkpoint to ``path`` (``.npz``)."""
    ckpt = service.checkpoint()
    path = Path(path)
    channel_names = sorted(ckpt.channels)
    config = ckpt.config
    meta: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "service",
        "config": {
            "seed": config.seed,
            "max_phases": config.max_phases,
            "d_max": config.d_max,
            "budget": config.budget,
            "charge_repeats": config.charge_repeats,
        },
        "params": dataclasses.asdict(ckpt.params),
        "phase": ckpt.phase,
        "completed": ckpt.completed,
        "exhausted": ckpt.exhausted,
        "rng_state": ckpt.rng_state,
        "has_best": ckpt.best is not None,
        "channels": channel_names,
        "hidden_shape": [int(s) for s in ckpt.hidden.shape],
    }
    arrays: dict[str, np.ndarray] = {
        "hidden_packed": pack_rows(ckpt.hidden),
        "counts": ckpt.counts,
        "revealed": ckpt.revealed,
        "values": ckpt.values,
    }
    if ckpt.best is not None:
        arrays["best"] = ckpt.best
    for i, name in enumerate(channel_names):
        arrays[f"channel_{i}"] = ckpt.channels[name]
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    metrics.incr("serve.checkpoint_saves_total")
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_service(path: str | Path) -> ServeService:
    """Restore a service written by :func:`save_service`.

    The restored service resumes at the archived phase barrier with
    identical subsequent behaviour (same coins, same probe charges, same
    outputs) as the service that was saved.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path)
        if meta.get("kind") != "service":
            raise ValueError(f"{path} does not contain a service (kind={meta.get('kind')!r})")
        config_meta = meta["config"]
        config = ServeConfig(
            seed=int(config_meta["seed"]),
            max_phases=config_meta["max_phases"],
            d_max=config_meta["d_max"],
            budget=config_meta["budget"],
            charge_repeats=bool(config_meta["charge_repeats"]),
            params=Params(**meta["params"]),
        )
        channels = {
            name: data[f"channel_{i}"] for i, name in enumerate(meta["channels"])
        }
        if "hidden_packed" in data:
            # Format 3+: bit-packed hidden matrix.
            hidden = unpack_rows(data["hidden_packed"], int(meta["hidden_shape"][1]))
        else:
            # Format <= 2: dense int8 hidden matrix.
            hidden = data["hidden"]
        ckpt = ServiceCheckpoint(
            config=config,
            params=config.resolved_params(),
            phase=int(meta["phase"]),
            completed=[float(a) for a in meta["completed"]],
            exhausted=bool(meta["exhausted"]),
            rng_state=meta["rng_state"],
            hidden=hidden,
            counts=data["counts"],
            revealed=data["revealed"],
            values=data["values"],
            channels=channels,
            best=data["best"] if meta["has_best"] else None,
        )
    metrics.incr("serve.checkpoint_restores_total")
    return ServeService.from_checkpoint(ckpt)


# ---------------------------------------------------------------------------
# whole-runtime snapshots (format version 4)
# ---------------------------------------------------------------------------
def _config_meta(config: ServeConfig) -> dict[str, Any]:
    meta = dataclasses.asdict(config)
    meta.pop("params")  # archived separately (nested dataclass)
    return meta


def save_runtime(path: str | Path, runtime: ServeRuntime) -> Path:
    """Archive *runtime*'s whole-deployment checkpoint as a v4 directory.

    Works for any topology: the runtime supplies one consistent-cut
    :class:`ServiceCheckpoint` plus its player partition, and the
    manifest is written last so the snapshot appears atomically.
    """
    ckpt = runtime.checkpoint()
    partitions = runtime.player_partitions
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    manifest_path = path / "manifest.json"
    manifest_path.unlink(missing_ok=True)  # invalidate any prior snapshot first

    shard_names: list[str] = []
    for shard, players in enumerate(partitions):
        rows = np.asarray(players, dtype=np.intp)
        shard_name = f"shard-{shard:03d}.npz"
        shard_meta = {
            "version": FORMAT_VERSION,
            "kind": "service-shard",
            "shard": shard,
            "has_best": ckpt.best is not None,
        }
        arrays: dict[str, np.ndarray] = {
            "players": rows,
            "counts": ckpt.counts[rows],
            "revealed": ckpt.revealed[rows],
            "values": ckpt.values[rows],
        }
        if ckpt.best is not None:
            arrays["best"] = ckpt.best[rows]
        arrays["meta_json"] = np.frombuffer(
            json.dumps(shard_meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path / shard_name, **arrays)
        shard_names.append(shard_name)

    channel_names = sorted(ckpt.channels)
    global_meta: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "service-global",
        "config": _config_meta(ckpt.config),
        "params": dataclasses.asdict(ckpt.params),
        "phase": ckpt.phase,
        "completed": ckpt.completed,
        "exhausted": ckpt.exhausted,
        "rng_state": ckpt.rng_state,
        "has_best": ckpt.best is not None,
        "channels": channel_names,
        "hidden_shape": [int(s) for s in ckpt.hidden.shape],
    }
    global_arrays: dict[str, np.ndarray] = {"hidden_packed": pack_rows(ckpt.hidden)}
    for i, name in enumerate(channel_names):
        global_arrays[f"channel_{i}"] = ckpt.channels[name]
    global_arrays["meta_json"] = np.frombuffer(
        json.dumps(global_meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path / "global.npz", **global_arrays)

    manifest = {
        "version": FORMAT_VERSION,
        "kind": "service-manifest",
        "workers": len(partitions),
        "n_players": int(ckpt.hidden.shape[0]),
        "n_objects": int(ckpt.hidden.shape[1]),
        "global": "global.npz",
        "shards": shard_names,
    }
    tmp = manifest_path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    tmp.replace(manifest_path)  # the commit point: no manifest, no snapshot
    metrics.incr("serve.checkpoint_saves_total")
    return path


def load_runtime(path: str | Path, *, workers: int | None = None) -> ServeRuntime:
    """Restore a :func:`save_runtime` snapshot to *workers* processes.

    ``workers=None`` keeps the archived worker count; any other value
    repartitions the same checkpoint — the restored deployment's
    outputs and (for non-drained runs) probe counts are bitwise
    identical either way.
    """
    from repro.serve.runtime import LocalRuntime
    from repro.serve.sharded import ShardedRuntime

    path = Path(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.is_file():
        raise ValueError(f"{path} has no manifest.json: not a runtime snapshot")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    check_format_version(manifest, manifest_path)
    if manifest.get("kind") != "service-manifest":
        raise ValueError(
            f"{manifest_path} does not describe a runtime (kind={manifest.get('kind')!r})"
        )

    with np.load(path / manifest["global"]) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path / manifest["global"])
        if meta.get("kind") != "service-global":
            raise ValueError(
                f"{manifest['global']} is not a global archive (kind={meta.get('kind')!r})"
            )
        config = ServeConfig(params=Params(**meta["params"]), **meta["config"])
        hidden = unpack_rows(data["hidden_packed"], int(meta["hidden_shape"][1]))
        channels = {
            name: data[f"channel_{i}"] for i, name in enumerate(meta["channels"])
        }

    n, m = hidden.shape
    counts = np.zeros(n, dtype=np.int64)
    revealed = np.zeros((n, m), dtype=bool)
    values = np.full((n, m), -1, dtype=np.int8)
    best = np.zeros((n, m), dtype=np.int8) if meta["has_best"] else None
    covered = np.zeros(n, dtype=bool)
    for shard_name in manifest["shards"]:
        with np.load(path / shard_name) as data:
            shard_meta = json.loads(bytes(data["meta_json"]).decode())
            if shard_meta.get("kind") != "service-shard":
                raise ValueError(
                    f"{shard_name} is not a shard archive (kind={shard_meta.get('kind')!r})"
                )
            players = np.asarray(data["players"], dtype=np.intp)
            counts[players] = data["counts"]
            revealed[players] = data["revealed"]
            values[players] = data["values"]
            if best is not None:
                best[players] = data["best"]
            covered[players] = True
    if not covered.all():
        missing = int((~covered).sum())
        raise ValueError(f"snapshot shards cover {n - missing}/{n} players")

    target = int(manifest["workers"]) if workers is None else int(workers)
    if target < 1:
        raise ValueError(f"workers must be >= 1, got {target}")
    config = dataclasses.replace(config, workers=target)
    ckpt = ServiceCheckpoint(
        config=config,
        params=config.resolved_params(),
        phase=int(meta["phase"]),
        completed=[float(a) for a in meta["completed"]],
        exhausted=bool(meta["exhausted"]),
        rng_state=meta["rng_state"],
        hidden=hidden,
        counts=counts,
        revealed=revealed,
        values=values,
        channels=channels,
        best=best,
    )
    metrics.incr("serve.checkpoint_restores_total")
    if target == 1:
        return LocalRuntime(ServeService.from_checkpoint(ckpt), config=config)
    return ShardedRuntime(hidden, config, _restore=ckpt)
