"""Format-versioned checkpoint/restore of a whole serving runtime.

Extends the ``.npz`` + embedded-JSON conventions of :mod:`repro.io`
(format version tag, ``kind`` discriminator, ``meta_json`` byte array)
with a ``kind="service"`` archive holding everything
:class:`~repro.serve.service.ServiceCheckpoint` captures: the hidden
matrix, billboard contents (revealed mask/grades plus every posted
vector channel), per-player probe accounting, the completed-phase
outputs, and the master rng state.

Since format version 3 the hidden matrix is archived *bit-packed*
(``hidden_packed`` + the logical ``hidden_shape`` in the metadata, 8×
smaller before compression even sees it); version-2 archives with a
dense ``hidden`` array still load bit-identically.

Snapshots are cut at phase barriers — the anytime loop's consistent
cuts, where no player program is suspended — so suspended coroutines
never need pickling.  Killing a service mid-phase and restoring its last
snapshot rolls back to that barrier; the restored service re-draws the
interrupted phase coin-for-coin and ends bitwise-identical (outputs
*and* probe counts) to a never-interrupted run, which
``tests/test_serve_snapshot.py`` pins.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.params import Params
from repro.io import FORMAT_VERSION, check_format_version
from repro.obs import metrics
from repro.metrics.bitpack import pack_rows, unpack_rows
from repro.serve.service import ServeConfig, ServeService, ServiceCheckpoint

__all__ = ["load_service", "save_service"]


def save_service(path: str | Path, service: ServeService) -> Path:
    """Write *service*'s latest barrier checkpoint to ``path`` (``.npz``)."""
    ckpt = service.checkpoint()
    path = Path(path)
    channel_names = sorted(ckpt.channels)
    config = ckpt.config
    meta: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "kind": "service",
        "config": {
            "seed": config.seed,
            "max_phases": config.max_phases,
            "d_max": config.d_max,
            "budget": config.budget,
            "charge_repeats": config.charge_repeats,
        },
        "params": dataclasses.asdict(ckpt.params),
        "phase": ckpt.phase,
        "completed": ckpt.completed,
        "exhausted": ckpt.exhausted,
        "rng_state": ckpt.rng_state,
        "has_best": ckpt.best is not None,
        "channels": channel_names,
        "hidden_shape": [int(s) for s in ckpt.hidden.shape],
    }
    arrays: dict[str, np.ndarray] = {
        "hidden_packed": pack_rows(ckpt.hidden),
        "counts": ckpt.counts,
        "revealed": ckpt.revealed,
        "values": ckpt.values,
    }
    if ckpt.best is not None:
        arrays["best"] = ckpt.best
    for i, name in enumerate(channel_names):
        arrays[f"channel_{i}"] = ckpt.channels[name]
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    metrics.incr("serve.checkpoint_saves_total")
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_service(path: str | Path) -> ServeService:
    """Restore a service written by :func:`save_service`.

    The restored service resumes at the archived phase barrier with
    identical subsequent behaviour (same coins, same probe charges, same
    outputs) as the service that was saved.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path)
        if meta.get("kind") != "service":
            raise ValueError(f"{path} does not contain a service (kind={meta.get('kind')!r})")
        config_meta = meta["config"]
        config = ServeConfig(
            seed=int(config_meta["seed"]),
            max_phases=config_meta["max_phases"],
            d_max=config_meta["d_max"],
            budget=config_meta["budget"],
            charge_repeats=bool(config_meta["charge_repeats"]),
            params=Params(**meta["params"]),
        )
        channels = {
            name: data[f"channel_{i}"] for i, name in enumerate(meta["channels"])
        }
        if "hidden_packed" in data:
            # Format 3+: bit-packed hidden matrix.
            hidden = unpack_rows(data["hidden_packed"], int(meta["hidden_shape"][1]))
        else:
            # Format <= 2: dense int8 hidden matrix.
            hidden = data["hidden"]
        ckpt = ServiceCheckpoint(
            config=config,
            params=config.resolved_params(),
            phase=int(meta["phase"]),
            completed=[float(a) for a in meta["completed"]],
            exhausted=bool(meta["exhausted"]),
            rng_state=meta["rng_state"],
            hidden=hidden,
            counts=data["counts"],
            revealed=data["revealed"],
            values=data["values"],
            channels=channels,
            best=data["best"] if meta["has_best"] else None,
        )
    metrics.incr("serve.checkpoint_restores_total")
    return ServeService.from_checkpoint(ckpt)
