"""Open/closed-loop load generator for the serving runtime.

Builds an instance from the :data:`~repro.workloads.registry.WORKLOADS`
registry, stands up a serving runtime through the topology-agnostic
:func:`~repro.serve.runtime.serve` entrypoint (``workers=1`` in-process,
``workers>1`` sharded across processes), and drives it with a synthetic
arrival schedule:

* **closed loop** (``mode="closed"``) — every unfinished session has
  exactly one request in flight per round: the classic
  think-time-zero saturation workload;
* **open loop** (``mode="open"``) — each batching window receives a
  ``Poisson(rate)`` number of requests aimed at uniformly sampled
  unfinished sessions, the arrival process of independent users.

Per-request latency is the wall-clock time of the flush that served the
request (requests in one micro-batch share their window's latency —
that *is* the cost model of micro-batching); the report carries
throughput, p50/p95/p99 latency, probes-per-request, and batch
occupancy.  Wall-clock numbers vary run to run, but the served outputs
and probe counts are fully determined by the config's seed.

Latency percentiles are derived from the **same fixed-bucket histograms**
the live metrics layer uses (:class:`repro.obs.metrics.Histogram` over
:data:`~repro.obs.metrics.LATENCY_BUCKETS_S`): every per-request latency
is observed both into the report's local histogram and — when a registry
is active — into the registry's ``serve.request_latency_seconds``
histogram, so ``repro obs top``, the JSONL metric snapshots, and the
report all print identical p50/p95/p99 for one run.  ``warmup`` excludes
the first N requests from a second, steady-state histogram whose
percentiles the report carries separately.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import ExitStack
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.obs.metrics import (
    Histogram,
    MetricRegistry,
    MetricsSnapshotSink,
    collecting,
    get_registry,
)
from repro.datasets.store import DatasetStore
from repro.metrics.bitpack import BitMatrix
from repro.model.instance import Instance
from repro.serve.config import ServeConfig
from repro.serve.runtime import ServeRuntime, serve
from repro.utils.rng import as_generator
from repro.workloads.registry import make_instance

__all__ = ["LoadgenConfig", "LoadgenReport", "dump_report_json", "run_loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation scenario (see module docstring)."""

    workload: str = "planted"
    dataset: str | None = None
    sessions: int = 256
    objects: int | None = None
    alpha: float = 0.5
    D: int = 0
    seed: int = 7
    mode: str = "closed"
    rate: float = 64.0
    probes_per_request: int = 32
    window: int = 32
    max_phases: int | None = 1
    d_max: int | None = 2
    budget: int | None = None
    micro_batch: bool = True
    workers: int = 1
    log_capacity: int | None = None
    max_requests: int = 1_000_000
    warmup: int = 0
    metrics_path: str | None = None
    metrics_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.sessions <= 0:
            raise ValueError(f"sessions must be positive, got {self.sessions}")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError(f"open-loop rate must be positive, got {self.rate}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {self.warmup}")
        if self.metrics_interval_s < 0:
            raise ValueError(
                f"metrics_interval_s must be non-negative, got {self.metrics_interval_s}"
            )


@dataclass
class LoadgenReport:
    """Result of one :func:`run_loadgen` run."""

    config: LoadgenConfig
    requests: int
    probes_total: int
    flushes: int
    wall_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    steady_requests: int
    steady_p50_ms: float
    steady_p95_ms: float
    steady_p99_ms: float
    probes_per_request: float
    mean_occupancy: float
    phases_completed: int
    sessions_complete: int
    sessions_drained: int
    outputs_sha: str
    latencies_ms: list[float] = field(repr=False, default_factory=list)

    def render(self) -> str:
        """Human-readable report block."""
        cfg = self.config
        if cfg.dataset is not None:
            head = f"loadgen  : dataset {cfg.dataset} seed={cfg.seed}"
        else:
            shape = f"{cfg.sessions}x{cfg.objects if cfg.objects is not None else cfg.sessions}"
            head = f"loadgen  : {cfg.workload} {shape} alpha={cfg.alpha} D={cfg.D} seed={cfg.seed}"
        lines = [
            head,
            f"mode     : {cfg.mode}"
            + (f" (rate={cfg.rate:g}/window)" if cfg.mode == "open" else "")
            + f", window={cfg.window}, grant={cfg.probes_per_request} probes, "
            + ("micro-batched" if cfg.micro_batch else "sequential probes")
            + (f", {cfg.workers} workers" if cfg.workers > 1 else ""),
            f"requests : {self.requests} in {self.wall_s:.3f}s -> {self.throughput_rps:,.0f} req/s",
            f"latency  : p50={self.p50_ms:.3f}ms  p95={self.p95_ms:.3f}ms  p99={self.p99_ms:.3f}ms",
        ]
        if self.config.warmup > 0:
            lines.append(
                f"steady   : {self.steady_requests} requests after warmup={self.config.warmup}: "
                f"p50={self.steady_p50_ms:.3f}ms  p95={self.steady_p95_ms:.3f}ms  "
                f"p99={self.steady_p99_ms:.3f}ms"
            )
        lines += [
            f"probes   : {self.probes_total} total, {self.probes_per_request:.1f}/request",
            f"batches  : {self.flushes} flushes, mean occupancy {self.mean_occupancy:.1f}",
            f"service  : {self.phases_completed} phases completed, "
            f"{self.sessions_complete} complete / {self.sessions_drained} drained sessions",
            f"outputs  : sha256 {self.outputs_sha[:16]}",
        ]
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable dict (drops the raw latency samples)."""
        payload = asdict(self)
        payload["config"] = asdict(self.config)
        del payload["latencies_ms"]
        return payload


def _quantile_ms(hist: Histogram, q: float) -> float:
    """Histogram-derived quantile in milliseconds (observations are seconds)."""
    return hist.quantile(q) * 1000.0


def _arrivals(
    config: LoadgenConfig, runtime: ServeRuntime, gen: np.random.Generator
) -> list[int]:
    """Players targeted by the next batching window."""
    open_sessions = runtime.open_players()
    if not open_sessions:
        return []
    if config.mode == "closed":
        return open_sessions
    k = max(1, int(gen.poisson(config.rate)))
    picks = gen.integers(0, len(open_sessions), size=k)
    return [open_sessions[int(i)] for i in picks]


def run_loadgen(config: LoadgenConfig | None = None) -> LoadgenReport:
    """Run one load-generation scenario and return its report.

    The service seed is derived from ``config.seed`` (instance and
    service use adjacent seeds), so two runs of the same config serve
    bit-identical outputs — only the wall-clock figures differ.
    """
    cfg = config if config is not None else LoadgenConfig()
    instance: Instance | BitMatrix
    if cfg.dataset is not None:
        store = DatasetStore.open(cfg.dataset)
        # Attach the packed mirror read-only when the ingest wrote one;
        # either way the matrix stays packed all the way into the oracle.
        instance = store.bitmatrix(mmap=store.manifest.get("packed_mirror") is not None)
    else:
        m = cfg.objects if cfg.objects is not None else cfg.sessions
        instance = make_instance(cfg.workload, cfg.sessions, m, cfg.alpha, cfg.D, rng=cfg.seed)
    serve_config = ServeConfig(
        seed=cfg.seed + 1,
        max_phases=cfg.max_phases,
        d_max=cfg.d_max,
        budget=cfg.budget,
        workers=cfg.workers,
        window=cfg.window,
        probes_per_request=cfg.probes_per_request,
        micro_batch=cfg.micro_batch,
        log_capacity=cfg.log_capacity,
    )
    arrival_gen = as_generator(cfg.seed + 2)

    hist_all = Histogram("serve.request_latency_seconds")
    hist_steady = Histogram("serve.request_latency_seconds.steady")
    latencies_ms: list[float] = []
    requests = 0
    flushes = 0
    occupancy_total = 0
    with ExitStack() as stack:
        runtime = stack.enter_context(serve(instance, serve_config))
        sink: MetricsSnapshotSink | None = None
        if cfg.metrics_path is not None:
            registry = stack.enter_context(collecting(MetricRegistry()))
            sink = stack.enter_context(
                MetricsSnapshotSink(
                    cfg.metrics_path,
                    registry,
                    interval_s=cfg.metrics_interval_s,
                    meta={"tool": "repro.loadgen", "seed": cfg.seed, "mode": cfg.mode},
                )
            )
        t0 = time.perf_counter()
        while not runtime.finished and requests < cfg.max_requests:
            players = _arrivals(cfg, runtime, arrival_gen)
            if not players:
                break
            for start in range(0, len(players), cfg.window):
                chunk = players[start : start + cfg.window]
                t1 = time.perf_counter()
                for player in chunk:
                    runtime.submit(player)
                runtime.flush()
                dt_s = time.perf_counter() - t1
                latencies_ms.extend([dt_s * 1000.0] * len(chunk))
                active = get_registry()
                for i in range(len(chunk)):
                    hist_all.observe(dt_s)
                    if requests + i >= cfg.warmup:
                        hist_steady.observe(dt_s)
                    if active is not None:
                        active.observe("serve.request_latency_seconds", dt_s)
                requests += len(chunk)
                flushes += 1
                occupancy_total += len(chunk)
                if sink is not None:
                    sink.maybe_write()
        wall_s = time.perf_counter() - t0
        active = get_registry()
        if active is not None and runtime.workers > 1:
            # Fold the shard workers' registries in (exact bucket adds)
            # so the final snapshot covers the whole deployment; the
            # in-process runtime already writes to the active registry.
            active.merge(runtime.merged_metrics())
        if sink is not None:
            sink.write()  # final snapshot: the run's complete histograms

        outputs = runtime.outputs()
        probes_total = int(runtime.probe_counts().sum())
        report = LoadgenReport(
            config=cfg,
            requests=requests,
            probes_total=probes_total,
            flushes=flushes,
            wall_s=wall_s,
            throughput_rps=requests / wall_s if wall_s > 0 else 0.0,
            p50_ms=_quantile_ms(hist_all, 0.50),
            p95_ms=_quantile_ms(hist_all, 0.95),
            p99_ms=_quantile_ms(hist_all, 0.99),
            steady_requests=hist_steady.count,
            steady_p50_ms=_quantile_ms(hist_steady, 0.50),
            steady_p95_ms=_quantile_ms(hist_steady, 0.95),
            steady_p99_ms=_quantile_ms(hist_steady, 0.99),
            probes_per_request=probes_total / requests if requests else 0.0,
            mean_occupancy=occupancy_total / flushes if flushes else 0.0,
            phases_completed=runtime.phases_completed,
            sessions_complete=runtime.session_count("complete"),
            sessions_drained=runtime.session_count("drained"),
            outputs_sha=hashlib.sha256(
                np.ascontiguousarray(outputs).tobytes()
            ).hexdigest(),
            latencies_ms=latencies_ms,
        )
    return report


def dump_report_json(path: str, report: LoadgenReport) -> None:
    """Write *report* as JSON (CLI ``--json`` helper)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_json(), fh, indent=2)
        fh.write("\n")
