"""The topology-agnostic serving entrypoint.

:func:`serve` is the one way to stand up an online deployment: it takes
an instance and a :class:`~repro.serve.config.ServeConfig` and returns
a :class:`ServeRuntime` — the in-process runtime for ``workers=1``,
the sharded multi-process runtime (:mod:`repro.serve.sharded`) for
``workers>1``.  Callers never construct :class:`ServeService` or
:class:`MicroBatchRouter` themselves (lint rule RPL012 enforces this
outside ``repro/serve``): the runtime owns the wiring, so the same
call site scales from one core to many by changing one config field.

Every runtime honours the same contract: driven to completion it
produces the outputs — and, for non-drained runs, the per-player probe
counts — of the offline anytime loop, bitwise, for any worker count.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics.bitpack import BitMatrix
from repro.model.instance import Instance
from repro.serve.config import ServeConfig
from repro.serve.router import MicroBatchRouter, Response
from repro.serve.service import ServeService, ServiceCheckpoint

if TYPE_CHECKING:
    from repro.obs.metrics import MetricRegistry

__all__ = ["LocalRuntime", "ServeRuntime", "serve"]


def serve(instance: Instance | np.ndarray | BitMatrix, config: ServeConfig | None = None) -> ServeRuntime:
    """Stand up a serving runtime for *instance* with the given topology.

    ``config.workers == 1`` (the default) wires the in-process
    service + micro-batching router; ``workers > 1`` partitions
    sessions by player id across that many worker processes over the
    shared packed oracle.  Both produce bitwise-identical outputs for
    the same ``config`` (topology fields aside).
    """
    cfg = config if config is not None else ServeConfig()
    if cfg.workers == 1:
        return LocalRuntime(ServeService(instance, config=cfg), config=cfg)
    from repro.serve.sharded import ShardedRuntime

    return ShardedRuntime(instance, cfg)


class ServeRuntime(abc.ABC):
    """What every serving topology exposes (see :func:`serve`).

    The request surface mirrors the router — :meth:`submit` /
    :meth:`flush` / :meth:`query` / :meth:`run_to_completion` — plus
    whole-deployment state (:attr:`finished`, :meth:`outputs`,
    :meth:`probe_counts`), snapshots (:meth:`save`, restored by
    :func:`repro.serve.snapshot.load_runtime` to *any* worker count),
    and :meth:`close` for teardown (also via ``with``).
    """

    @property
    @abc.abstractmethod
    def workers(self) -> int:
        """Worker-process count of this topology (1 = in-process)."""

    @property
    @abc.abstractmethod
    def n_players(self) -> int:
        """Population size ``n``."""

    @property
    @abc.abstractmethod
    def n_objects(self) -> int:
        """Object count ``m``."""

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether serving stopped advancing (``done`` or ``drained``)."""

    @property
    @abc.abstractmethod
    def phases_completed(self) -> int:
        """Number of fully merged anytime phases."""

    @property
    @abc.abstractmethod
    def completed(self) -> list[float]:
        """The ``α`` values of completed phases."""

    @property
    @abc.abstractmethod
    def exhausted(self) -> bool:
        """Whether the probe budget tripped (graceful drain)."""

    @abc.abstractmethod
    def submit(self, player: int, probes: int | None = None) -> None:
        """Buffer a session-advance request (auto-flushes on the window)."""

    @abc.abstractmethod
    def flush(self) -> list[Response]:
        """Flush buffered requests; responses since the last flush."""

    @abc.abstractmethod
    def query(self, player: int) -> Response:
        """Best-so-far answer for *player*, estimate included."""

    @abc.abstractmethod
    def run_to_completion(self, *, probes: int | None = None) -> np.ndarray:
        """Drive every session until finished; returns the outputs."""

    @abc.abstractmethod
    def outputs(self) -> np.ndarray:
        """Best-so-far ``(n, m)`` output matrix (a copy)."""

    @abc.abstractmethod
    def probe_counts(self) -> np.ndarray:
        """Per-player charged probe counts (length ``n``)."""

    @abc.abstractmethod
    def session_count(self, status: str) -> int:
        """Number of sessions currently in *status*."""

    @abc.abstractmethod
    def open_players(self) -> list[int]:
        """Players whose sessions are still open (not complete/drained)."""

    @property
    @abc.abstractmethod
    def oracle_batches(self) -> int:
        """Total oracle batch invocations across the deployment."""

    @abc.abstractmethod
    def checkpoint(self) -> ServiceCheckpoint:
        """A whole-deployment phase-barrier checkpoint."""

    @property
    @abc.abstractmethod
    def player_partitions(self) -> list[list[int]]:
        """Player ids per shard (one list for the in-process runtime)."""

    @abc.abstractmethod
    def merged_metrics(self) -> MetricRegistry:
        """Exact merge of every worker's metric registry."""

    @abc.abstractmethod
    def close(self) -> None:
        """Tear down workers and shared segments (idempotent)."""

    def save(self, path: str | Path) -> Path:
        """Archive the deployment's checkpoint as a v4 snapshot directory."""
        from repro.serve.snapshot import save_runtime

        return save_runtime(path, self)

    def __enter__(self) -> ServeRuntime:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class LocalRuntime(ServeRuntime):
    """The ``workers=1`` topology: today's in-process service + router."""

    def __init__(self, service: ServeService, *, config: ServeConfig | None = None) -> None:
        cfg = config if config is not None else service.config
        self.service = service
        self.router = MicroBatchRouter(service, config=cfg.router_config())

    @property
    def workers(self) -> int:
        return 1

    @property
    def n_players(self) -> int:
        return self.service.n_players

    @property
    def n_objects(self) -> int:
        return self.service.n_objects

    @property
    def finished(self) -> bool:
        return self.service.finished

    @property
    def phases_completed(self) -> int:
        return self.service.phases_completed

    @property
    def completed(self) -> list[float]:
        return list(self.service.completed)

    @property
    def exhausted(self) -> bool:
        return self.service.exhausted

    def submit(self, player: int, probes: int | None = None) -> None:
        self.router.submit(player, probes)

    def flush(self) -> list[Response]:
        return self.router.flush()

    def query(self, player: int) -> Response:
        return self.router.query(player)

    def run_to_completion(self, *, probes: int | None = None) -> np.ndarray:
        return self.router.run_to_completion(probes=probes)

    def outputs(self) -> np.ndarray:
        return self.service.outputs()

    def probe_counts(self) -> np.ndarray:
        return self.service.oracle.stats().per_player.copy()

    def session_count(self, status: str) -> int:
        return self.service.sessions.count(status)

    def open_players(self) -> list[int]:
        return [
            s.player
            for s in self.service.sessions
            if s.status not in ("complete", "drained")
        ]

    @property
    def oracle_batches(self) -> int:
        return self.service.oracle.batch_count

    def checkpoint(self) -> ServiceCheckpoint:
        return self.service.checkpoint()

    @property
    def player_partitions(self) -> list[list[int]]:
        return [list(range(self.service.n_players))]

    def merged_metrics(self) -> MetricRegistry:
        from repro.obs.metrics import MetricRegistry, get_registry

        merged = MetricRegistry()
        active = get_registry()
        if active is not None:
            merged.merge(active)
        return merged

    def close(self) -> None:
        """Nothing to tear down in-process."""

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"LocalRuntime({self.service!r})"
