"""The online serving runtime: sessions, micro-batched routing, snapshots.

The paper's model is inherently online — players probe incrementally
and must answer "who am I" at any time — and this package turns the §6
anytime engine into a long-lived service:

* :mod:`repro.serve.config` — :class:`ServeConfig`, the one knob
  surface (algorithm + topology) every entry point is built from;
* :mod:`repro.serve.sessions` — per-player state as suspended player
  programs, advanceable a few probes at a time;
* :mod:`repro.serve.service` — the phase state machine owning oracle,
  rng, and sessions, with phase-barrier checkpoints;
* :mod:`repro.serve.router` — micro-batching request router: one
  ``probe_many`` wavefront per flush, graceful budget degradation;
* :mod:`repro.serve.runtime` — :func:`serve`, the topology-agnostic
  entrypoint (``workers=1`` in-process, ``workers>1`` sharded);
* :mod:`repro.serve.sharded` — session sharding across worker
  processes over the shared packed oracle and billboard post log;
* :mod:`repro.serve.snapshot` — format-versioned kill/restore:
  ``.npz`` single-service archives plus the v4 sharded manifest
  (:func:`save_runtime` / :func:`load_runtime`);
* :mod:`repro.serve.loadgen` — open/closed-loop load generator with
  latency percentiles.

Contract: a session driven to completion is bitwise-equal — outputs and
per-player probe counts — to the offline
:func:`repro.core.main.anytime_find_preferences` for the same seed and
for *any* worker count (``tests/test_serve_equivalence.py``,
``tests/test_serve_sharded.py``), and code in this package never
touches preference matrices directly (lint rule RPL009): every grade
flows through the charged oracle.
"""

from __future__ import annotations

from repro.serve.config import ServeConfig
from repro.serve.loadgen import LoadgenConfig, LoadgenReport, run_loadgen
from repro.serve.router import MicroBatchRouter, Request, Response, RouterConfig
from repro.serve.runtime import LocalRuntime, ServeRuntime, serve
from repro.serve.service import ServeService, ServiceCheckpoint
from repro.serve.sessions import Session, SessionStore
from repro.serve.sharded import ShardedRuntime
from repro.serve.snapshot import load_runtime, load_service, save_runtime, save_service

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "LocalRuntime",
    "MicroBatchRouter",
    "Request",
    "Response",
    "RouterConfig",
    "ServeConfig",
    "ServeRuntime",
    "ServeService",
    "ServiceCheckpoint",
    "Session",
    "SessionStore",
    "ShardedRuntime",
    "load_runtime",
    "load_service",
    "run_loadgen",
    "save_runtime",
    "save_service",
    "serve",
]
