"""The online serving runtime: sessions, micro-batched routing, snapshots.

The paper's model is inherently online — players probe incrementally
and must answer "who am I" at any time — and this package turns the §6
anytime engine into a long-lived service:

* :mod:`repro.serve.sessions` — per-player state as suspended player
  programs, advanceable a few probes at a time;
* :mod:`repro.serve.service` — the phase state machine owning oracle,
  rng, and sessions, with phase-barrier checkpoints;
* :mod:`repro.serve.router` — micro-batching request router: one
  ``probe_many`` wavefront per flush, graceful budget degradation;
* :mod:`repro.serve.snapshot` — format-versioned ``.npz`` kill/restore;
* :mod:`repro.serve.loadgen` — open/closed-loop load generator with
  latency percentiles.

Contract: a session driven to completion is bitwise-equal — outputs and
per-player probe counts — to the offline
:func:`repro.core.main.anytime_find_preferences` for the same seed
(``tests/test_serve_equivalence.py``), and code in this package never
touches preference matrices directly (lint rule RPL009): every grade
flows through the charged oracle.
"""

from __future__ import annotations

from repro.serve.loadgen import LoadgenConfig, LoadgenReport, run_loadgen
from repro.serve.router import MicroBatchRouter, Request, Response, RouterConfig
from repro.serve.service import ServeConfig, ServeService, ServiceCheckpoint
from repro.serve.sessions import Session, SessionStore
from repro.serve.snapshot import load_service, save_service

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "MicroBatchRouter",
    "Request",
    "Response",
    "RouterConfig",
    "ServeConfig",
    "ServeService",
    "ServiceCheckpoint",
    "Session",
    "SessionStore",
    "load_service",
    "run_loadgen",
    "save_service",
]
