"""Topology-agnostic configuration of one serving deployment.

:class:`ServeConfig` is the single knob surface of the serving stack:
the algorithm parameters the offline entry points take (``seed``,
``max_phases``, ``d_max``, ``budget``, ``charge_repeats``, ``params``)
*plus* the deployment topology (``workers``) and the request-routing
knobs that used to live on :class:`~repro.serve.router.RouterConfig`
(``window``, ``probes_per_request``, ``micro_batch``).  One frozen
dataclass feeds :func:`repro.serve.runtime.serve` — ``workers=1``
stands up the in-process runtime, ``workers>1`` the sharded multi-core
runtime — and both the ``repro serve`` and ``repro loadgen`` CLI
subcommands derive their flags from these fields, so the knob
vocabulary cannot drift between entry points.

The class moved here from ``repro.serve.service`` when the topology
fields were added; the old location keeps working behind a
``DeprecationWarning`` shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.params import Params

if TYPE_CHECKING:  # circular at runtime: router imports the service layer
    from repro.serve.router import RouterConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Immutable configuration of one serving deployment.

    ``seed`` feeds the master generator (the service twin of the ``rng``
    argument of ``anytime_find_preferences``); ``max_phases`` / ``d_max``
    / ``budget`` / ``charge_repeats`` / ``params`` mirror the offline
    entry point's keyword arguments (``params=None`` means
    :meth:`Params.practical`).

    The remaining fields describe the deployment rather than the
    algorithm — they never influence the served bits, only how fast and
    on how many cores they are computed:

    * ``workers`` — worker processes sessions are partitioned across
      (``1`` = today's in-process runtime, no subprocesses);
    * ``window`` — the micro-batching window of each router;
    * ``probes_per_request`` — default probe grant of one request;
    * ``micro_batch`` — ``probe_many`` wavefronts vs scalar probes;
    * ``log_capacity`` — byte size of the shared billboard post log
      (sharded topologies only; ``None`` sizes it from the instance).
    """

    seed: int = 0
    max_phases: int | None = None
    d_max: int | None = None
    budget: int | None = None
    charge_repeats: bool = True
    params: Params | None = None
    workers: int = 1
    window: int = 32
    probes_per_request: int = 32
    micro_batch: bool = True
    log_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.probes_per_request <= 0:
            raise ValueError(
                f"probes_per_request must be positive, got {self.probes_per_request}"
            )
        if self.log_capacity is not None and self.log_capacity <= 0:
            raise ValueError(f"log_capacity must be positive, got {self.log_capacity}")

    def resolved_params(self) -> Params:
        """The effective algorithm constants."""
        return self.params if self.params is not None else Params.practical()

    def router_config(self) -> "RouterConfig":
        """The :class:`~repro.serve.router.RouterConfig` these knobs describe."""
        from repro.serve.router import RouterConfig

        return RouterConfig(
            window=self.window,
            probes_per_request=self.probes_per_request,
            micro_batch=self.micro_batch,
        )
