"""Sharded multi-core serving: sessions partitioned across processes.

The §6 anytime loop is embarrassingly parallel across players — the
only cross-player couplings are the shared billboard and the phase
barriers — so the sharded topology partitions sessions by player id
across ``workers`` forked processes:

* every worker attaches the **zero-copy packed oracle**
  (:meth:`~repro.parallel.shared.SharedInstanceHandle.bitmatrix`) and
  runs its own :class:`~repro.serve.router.MicroBatchRouter` over a
  :class:`_ShardWorkerService` owning just its players' sessions;
* the billboard replicates through the **append-only post log**
  (:class:`~repro.billboard.postlog.SharedBillboard`): local posts
  append + install, foreign posts install on ``sync()``, reads stay
  in-process and lock-free;
* **phase barriers** ride the log as marker records: a worker that
  finishes a stage parks, posts its marker, and advances only when
  every shard's marker is visible — and because each shard's posts
  precede its marker, advancing implies seeing all of the stage's
  posts;
* **rng lockstep**: every worker consumes the master generator
  identically (full-population coin draws and merge spawns, see
  :meth:`ServeService._on_stage_complete`), so all shards hold the
  same rng state at every barrier — which is what lets a snapshot
  restore to *any* worker count.

Equivalence: the barriers make every shard run the same player
programs against billboard states that agree on all channels a program
may read, so outputs — and, for non-drained runs, per-player probe
counts — are bitwise-identical to the single-process runtime
(``tests/test_serve_sharded.py``).  Budget exhaustion propagates as a
log marker and freezes every shard at the same last-completed phase.

The front-end :class:`ShardedRuntime` speaks the
:class:`~repro.serve.runtime.ServeRuntime` surface: it routes requests
to the owning shard over pipes, merges per-worker metric registries by
exact bucket addition, and assembles whole-deployment checkpoints from
per-shard ones (all forced to the same barrier first).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Sequence, cast

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.billboard.postlog import PostLog, SharedBillboard, default_log_capacity
from repro.metrics.bitpack import BitMatrix
from repro.model.instance import Instance
from repro.obs.metrics import MetricRegistry, set_registry
from repro.parallel.shared import SharedInstanceHandle, SharedInstanceStore
from repro.serve.config import ServeConfig
from repro.serve.router import MicroBatchRouter, Response
from repro.serve.runtime import ServeRuntime
from repro.serve.service import ServeService, ServiceCheckpoint, anytime_phase_cap
from repro.serve.sessions import SessionStore

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

__all__ = ["ShardedRuntime", "shard_players"]

_POLL_S = 0.0005  # idle backoff while waiting on foreign log records
_STALL_TIMEOUT_S = 300.0  # no local progress AND no log movement for this long
_EMPTY_HIDDEN = np.empty((0, 0), dtype=np.int8)


def shard_players(n_players: int, workers: int) -> list[list[int]]:
    """Contiguous player partition: shard ``k`` owns the ``k``-th block."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > n_players:
        raise ValueError(f"more workers ({workers}) than players ({n_players})")
    return [block.tolist() for block in np.array_split(np.arange(n_players), workers)]


class _ShardWorkerService(ServeService):
    """One shard's view of the deployment: local sessions, shared board.

    Differs from the base service only in topology: the oracle answers
    from the shared packed matrix through the :class:`SharedBillboard`,
    the session store holds just the owned players, and stage
    completion *parks* at the barrier (:attr:`at_barrier`) instead of
    transitioning — the worker loop advances once every shard's marker
    is visible.  All rng consumption is identical to the base class.
    """

    def __init__(
        self,
        matrix: Any,
        *,
        config: ServeConfig,
        players: Sequence[int],
        board: SharedBillboard,
    ) -> None:
        self._players = [int(p) for p in players]
        self._board = board
        self._pending_stage: dict[int, np.ndarray] | None = None
        self._barrier_tag: str | None = None
        super().__init__(cast(np.ndarray, matrix), config=config)

    # -- topology hooks -----------------------------------------------------
    def _make_oracle(self, instance: Instance | np.ndarray | BitMatrix) -> ProbeOracle:
        return ProbeOracle(
            instance,
            billboard=self._board,
            budget=self.config.budget,
            charge_repeats=self.config.charge_repeats,
        )

    def _make_sessions(self) -> SessionStore:
        return SessionStore(self.oracle.n_players, players=self._players)

    def _local_players(self) -> Sequence[int]:
        return self._players

    # -- barrier parking ----------------------------------------------------
    @property
    def at_barrier(self) -> bool:
        """Whether the local stage finished and awaits the shard set."""
        return self._pending_stage is not None

    @property
    def barrier_tag(self) -> str:
        """Log marker tag of the parked barrier (``phase<j>/<stage>``)."""
        if self._barrier_tag is None:
            raise RuntimeError("no barrier is pending")
        return self._barrier_tag

    def _on_stage_complete(self) -> None:
        self._pending_stage = self._stage_outputs
        self._stage_outputs = {}
        self._barrier_tag = f"phase{self.phase_j}/{self.stage}"

    def advance_stage(self) -> None:
        """Run the parked stage transition (call once the barrier is full)."""
        if self._pending_stage is None:
            raise RuntimeError("no stage is parked at a barrier")
        self._stage_outputs = self._pending_stage
        self._pending_stage = None
        self._barrier_tag = None
        super()._on_stage_complete()

    def mark_exhausted(self) -> None:
        if self.finished:
            return
        if not self._board.exhausted_seen:
            self._board.post_exhausted()
        self._pending_stage = None
        self._barrier_tag = None
        super().mark_exhausted()


def _restore_worker_service(
    matrix: Any,
    ckpt: ServiceCheckpoint,
    players: Sequence[int],
    board: SharedBillboard,
) -> _ShardWorkerService:
    """Rebuild one shard from a whole-deployment checkpoint.

    Every worker receives the same global checkpoint (hidden matrix
    stripped — it arrives via shared memory) and resumes with full-size
    arrays; rows of players it does not own are inert.
    """
    service = _ShardWorkerService.__new__(_ShardWorkerService)
    service._players = [int(p) for p in players]
    service._board = board
    service._pending_stage = None
    service._barrier_tag = None
    service.config = ckpt.config
    service.params = ckpt.params
    board.restore_state(ckpt.revealed, ckpt.values, ckpt.channels)
    service.oracle = ProbeOracle.restore(
        cast(np.ndarray, matrix),
        ckpt.counts,
        billboard=board,
        budget=ckpt.config.budget,
        charge_repeats=ckpt.config.charge_repeats,
    )
    service._resume_from_checkpoint(ckpt)
    return service


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
def _advance_barriers(service: _ShardWorkerService, board: SharedBillboard) -> bool:
    """Post this shard's marker and advance every already-full barrier.

    Must run before honouring an exhaustion marker: a shard parked at a
    barrier the rest of the set already passed first catches up to the
    common phase (identical rng consumption), so all shards drain at
    the same cut.
    """
    advanced = False
    while service.at_barrier:
        board.post_barrier(service.barrier_tag)
        if not board.barrier_complete(service.barrier_tag):
            break
        service.advance_stage()
        advanced = True
    return advanced


def _sync_and_advance(service: _ShardWorkerService, board: SharedBillboard) -> bool:
    """One coordination step: pull the log, advance barriers, honour drain."""
    moved = board.sync() > 0
    moved = _advance_barriers(service, board) or moved
    if not service.finished and board.exhausted_seen and not (
        service.at_barrier and board.barrier_complete(service.barrier_tag)
    ):
        service.mark_exhausted()
        moved = True
    return moved


def _drive_worker(
    service: _ShardWorkerService,
    router: MicroBatchRouter,
    board: SharedBillboard,
    probes: int | None,
) -> None:
    """Blocking run-to-completion loop of one shard."""
    stalled_since: float | None = None
    while not service.finished:
        moved = _sync_and_advance(service, board)
        if service.finished:
            break
        if service.at_barrier:
            # Parked: nothing to compute until the other shards arrive
            # (or an exhaustion marker lands).  Bounded by their work.
            time.sleep(_POLL_S)
            continue
        progressed = False
        active = service.sessions.active_players()
        if active:
            before = (
                int(service.oracle.stats().per_player.sum()),
                sum(s.posts_served for s in service.sessions),
                service.phase_j,
                service.stage,
            )
            for player in active:
                router.submit(player, probes)
            router.flush()
            after = (
                int(service.oracle.stats().per_player.sum()),
                sum(s.posts_served for s in service.sessions),
                service.phase_j,
                service.stage,
            )
            progressed = after != before or service.at_barrier or service.finished
        if progressed or moved:
            stalled_since = None
            continue
        # Every local session blocks on foreign posts: wait on the log.
        now = time.monotonic()
        if stalled_since is None:
            stalled_since = now
        elif now - stalled_since > _STALL_TIMEOUT_S:
            raise RuntimeError(
                f"shard {board.shard} stalled: no local progress and no post-log "
                f"movement for {_STALL_TIMEOUT_S:.0f}s"
            )
        time.sleep(_POLL_S)


def _serve_requests(
    service: _ShardWorkerService,
    router: MicroBatchRouter,
    board: SharedBillboard,
    pairs: list[tuple[int, int | None]],
) -> list[Response]:
    """One non-blocking request round (the front-end flush path)."""
    _sync_and_advance(service, board)
    for player, probes in pairs:
        router.submit(player, probes)
    responses = router.flush()
    _sync_and_advance(service, board)
    return responses


def _shard_summary(service: _ShardWorkerService) -> dict[str, Any]:
    return {
        "finished": service.finished,
        "phases_completed": service.phases_completed,
        "completed": list(service.completed),
        "exhausted": service.exhausted,
        "n_complete": service.sessions.count("complete"),
        "n_drained": service.sessions.count("drained"),
        "oracle_batches": service.oracle.batch_count,
    }


def _local_rows(service: _ShardWorkerService) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    players = np.asarray(service._local_players(), dtype=np.intp)
    outputs = service.outputs()[players]
    counts = service.oracle.stats().per_player[players]
    return players, outputs, counts


def _worker_main(
    conn: "Connection",
    handle: SharedInstanceHandle,
    log_name: str,
    lock: Any,
    shard: int,
    players: list[int],
    config: ServeConfig,
    n_shards: int,
    restore: ServiceCheckpoint | None,
) -> None:
    """Worker entry: build (or restore) the shard, then serve commands."""
    # A fresh registry per worker: the fork inherits the parent's, and
    # double-counting its history would break the exact merge.
    registry = MetricRegistry()
    set_registry(registry)
    log = PostLog.attach(log_name, lock=lock)
    try:
        n, m = handle.shape
        board = SharedBillboard(n, m, log=log, shard=shard, n_shards=n_shards)
        matrix = handle.bitmatrix()
        if restore is None:
            service = _ShardWorkerService(
                matrix, config=config, players=players, board=board
            )
        else:
            service = _restore_worker_service(matrix, restore, players, board)
        router = MicroBatchRouter(service, config=config.router_config())
        while True:
            cmd, payload = conn.recv()
            if cmd == "run":
                _drive_worker(service, router, board, payload)
                players_arr, rows, counts = _local_rows(service)
                conn.send(
                    ("done", (players_arr, rows, counts, _shard_summary(service)))
                )
            elif cmd == "requests":
                responses = _serve_requests(service, router, board, payload)
                wire = [
                    (r.player, r.status, r.probes_used, r.phases_completed)
                    for r in responses
                ]
                conn.send(("responses", (wire, _shard_summary(service))))
            elif cmd == "query":
                session = service.sessions[payload]
                conn.send(
                    (
                        "estimate",
                        (
                            session.status,
                            service.phases_completed,
                            service.estimate(payload),
                        ),
                    )
                )
            elif cmd == "checkpoint":
                _sync_and_advance(service, board)
                ckpt = service.checkpoint()
                if not payload:  # hidden travels once, from shard 0
                    ckpt = replace(ckpt, hidden=_EMPTY_HIDDEN)
                conn.send(("checkpoint", ckpt))
            elif cmd == "outputs":
                conn.send(("outputs", (*_local_rows(service), _shard_summary(service))))
            elif cmd == "metrics":
                conn.send(("metrics", registry.snapshot()))
            elif cmd == "stop":
                conn.send(("bye", None))
                return
            else:  # pragma: no cover - protocol corruption
                conn.send(("error", f"unknown command {cmd!r}"))
                return
    except EOFError:  # front-end died; nothing to report to
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        log.close()


# ---------------------------------------------------------------------------
# front-end dispatcher
# ---------------------------------------------------------------------------
class ShardedRuntime(ServeRuntime):
    """Front-end of the sharded topology (see module docstring).

    Routes requests to the owning shard, coordinates run/flush rounds,
    merges metrics, and assembles whole-deployment checkpoints.  Bulk
    flush responses carry ``estimate=None`` (the vectors stay in the
    workers); :meth:`query` fetches one player's estimate explicitly.
    """

    def __init__(
        self,
        instance: Instance | np.ndarray | BitMatrix,
        config: ServeConfig,
        *,
        _restore: ServiceCheckpoint | None = None,
    ) -> None:
        if config.workers < 2:
            raise ValueError(
                f"ShardedRuntime needs workers >= 2, got {config.workers} "
                "(use repro.serve.serve() for topology dispatch)"
            )
        self._config = config
        self._closed = False
        self._store = SharedInstanceStore()
        handle = self._store.publish(instance)
        self._n, self._m = handle.shape
        self._partitions = shard_players(self._n, config.workers)
        self._owner = np.empty(self._n, dtype=np.intp)
        for shard, players in enumerate(self._partitions):
            self._owner[players] = shard
        capacity = (
            config.log_capacity
            if config.log_capacity is not None
            else default_log_capacity(self._n, self._m)
        )
        ctx = mp.get_context("fork")
        lock = ctx.Lock()
        self._log = PostLog.create(capacity, lock=lock)
        # The hidden matrix reaches workers via shared memory, never the
        # pipe: strip it from the checkpoint each worker receives.
        worker_restore = (
            None if _restore is None else replace(_restore, hidden=_EMPTY_HIDDEN)
        )
        self._conns: list["Connection"] = []
        self._procs: list[mp.process.BaseProcess] = []
        for shard, players in enumerate(self._partitions):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    handle,
                    self._log.name,
                    lock,
                    shard,
                    players,
                    config,
                    config.workers,
                    worker_restore,
                ),
                daemon=True,
                name=f"repro-serve-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._pending: list[list[tuple[int, int | None]]] = [
            [] for _ in self._partitions
        ]
        self._ready: list[Response] = []
        self._metrics = MetricRegistry()
        max_j = anytime_phase_cap(self._n, config.max_phases)
        if _restore is not None:
            done = _restore.exhausted or _restore.phase > max_j
            status = (
                "drained" if _restore.exhausted else "complete" if done else "active"
            )
            self._summaries = [
                {
                    "finished": done,
                    "phases_completed": len(_restore.completed),
                    "completed": list(_restore.completed),
                    "exhausted": _restore.exhausted,
                }
                for _ in self._partitions
            ]
            self._statuses = [status] * self._n
        else:
            done = 0 > max_j  # the phase cap is never negative: always False
            self._summaries = [
                {
                    "finished": done,
                    "phases_completed": 0,
                    "completed": [],
                    "exhausted": False,
                }
                for _ in self._partitions
            ]
            self._statuses = ["active"] * self._n

    # -- plumbing ------------------------------------------------------------
    def _send(self, shard: int, cmd: str, payload: Any) -> None:
        self._conns[shard].send((cmd, payload))

    def _recv(self, shard: int, expect: str) -> Any:
        kind, payload = self._conns[shard].recv()
        if kind == "error":
            self.close()
            raise RuntimeError(f"serve worker {shard} failed:\n{payload}")
        if kind != expect:
            self.close()
            raise RuntimeError(
                f"serve worker {shard} protocol error: expected {expect!r}, got {kind!r}"
            )
        return payload

    def _broadcast(self, cmd: str, payloads: Sequence[Any], expect: str) -> list[Any]:
        for shard in range(self.workers):
            self._send(shard, cmd, payloads[shard])
        return [self._recv(shard, expect) for shard in range(self.workers)]

    def _note_summary(self, shard: int, summary: dict[str, Any]) -> None:
        self._summaries[shard] = summary
        if summary["finished"]:
            frozen = "drained" if summary["exhausted"] else "complete"
            for player in self._partitions[shard]:
                if self._statuses[player] not in ("complete", "drained"):
                    self._statuses[player] = frozen

    # -- ServeRuntime surface -------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._partitions)

    @property
    def n_players(self) -> int:
        return self._n

    @property
    def n_objects(self) -> int:
        return self._m

    @property
    def finished(self) -> bool:
        return all(s["finished"] for s in self._summaries)

    @property
    def phases_completed(self) -> int:
        return min(int(s["phases_completed"]) for s in self._summaries)

    @property
    def completed(self) -> list[float]:
        slowest = min(self._summaries, key=lambda s: int(s["phases_completed"]))
        return list(slowest["completed"])

    @property
    def exhausted(self) -> bool:
        return any(bool(s["exhausted"]) for s in self._summaries)

    @property
    def player_partitions(self) -> list[list[int]]:
        return [list(p) for p in self._partitions]

    def submit(self, player: int, probes: int | None = None) -> None:
        if not 0 <= player < self._n:
            raise ValueError(f"player index {player} out of range [0, {self._n})")
        if probes is not None and probes <= 0:
            raise ValueError(f"probe grant must be positive, got {probes}")
        self._pending[int(self._owner[player])].append((player, probes))
        if sum(len(q) for q in self._pending) >= self._config.window:
            self._ready.extend(self._flush_pending())

    def flush(self) -> list[Response]:
        responses = self._ready
        self._ready = []
        responses.extend(self._flush_pending())
        return responses

    def _flush_pending(self) -> list[Response]:
        batches = self._pending
        self._pending = [[] for _ in self._partitions]
        shards = [shard for shard, batch in enumerate(batches) if batch]
        if not shards:
            return []
        for shard in shards:
            self._send(shard, "requests", batches[shard])
        responses: list[Response] = []
        for shard in shards:
            wire, summary = self._recv(shard, "responses")
            self._note_summary(shard, summary)
            for player, status, probes_used, phases in wire:
                self._statuses[player] = status
                responses.append(
                    Response(
                        player=player,
                        status=status,
                        probes_used=probes_used,
                        phases_completed=phases,
                        estimate=None,
                    )
                )
        return responses

    def query(self, player: int) -> Response:
        if not 0 <= player < self._n:
            raise ValueError(f"player index {player} out of range [0, {self._n})")
        shard = int(self._owner[player])
        self._send(shard, "query", player)
        status, phases, estimate = self._recv(shard, "estimate")
        self._statuses[player] = status
        return Response(
            player=player,
            status=status,
            probes_used=0,
            phases_completed=phases,
            estimate=estimate,
        )

    def run_to_completion(self, *, probes: int | None = None) -> np.ndarray:
        """Tell every shard to drive its sessions to the end, then gather."""
        results = self._broadcast(
            "run", [probes] * self.workers, "done"
        )
        outputs = np.zeros((self._n, self._m), dtype=np.int8)
        for shard, (players, rows, _counts, summary) in enumerate(results):
            outputs[players] = rows
            self._note_summary(shard, summary)
        return outputs

    def outputs(self) -> np.ndarray:
        results = self._broadcast("outputs", [None] * self.workers, "outputs")
        outputs = np.zeros((self._n, self._m), dtype=np.int8)
        for shard, (players, rows, _counts, summary) in enumerate(results):
            outputs[players] = rows
            self._note_summary(shard, summary)
        return outputs

    def probe_counts(self) -> np.ndarray:
        results = self._broadcast("outputs", [None] * self.workers, "outputs")
        counts = np.zeros(self._n, dtype=np.int64)
        for shard, (players, _rows, shard_counts, summary) in enumerate(results):
            counts[players] = shard_counts
            self._note_summary(shard, summary)
        return counts

    def session_count(self, status: str) -> int:
        return sum(1 for s in self._statuses if s == status)

    def open_players(self) -> list[int]:
        return [
            player
            for player, status in enumerate(self._statuses)
            if status not in ("complete", "drained")
        ]

    @property
    def oracle_batches(self) -> int:
        return sum(int(s.get("oracle_batches", 0)) for s in self._summaries)

    def checkpoint(self) -> ServiceCheckpoint:
        """Assemble one whole-deployment checkpoint from the shard set.

        Workers first advance every already-full barrier, which lands
        all of them on the same phase cut (see :func:`_advance_barriers`);
        global arrays are then gathered row-wise by the player
        partition, and shard 0 contributes the shared pieces (rng
        state, channels, hidden matrix).
        """
        payloads = [shard == 0 for shard in range(self.workers)]
        ckpts: list[ServiceCheckpoint] = self._broadcast(
            "checkpoint", payloads, "checkpoint"
        )
        cuts = {(c.phase, tuple(c.completed), c.exhausted) for c in ckpts}
        if len(cuts) != 1:  # pragma: no cover - barrier protocol violation
            raise RuntimeError(f"shards checkpointed at different cuts: {sorted(cuts)}")
        base = ckpts[0]
        counts = np.zeros_like(base.counts)
        revealed = np.zeros_like(base.revealed)
        values = base.values.copy()
        best = None if base.best is None else np.zeros_like(base.best)
        for shard, ckpt in enumerate(ckpts):
            players = np.asarray(self._partitions[shard], dtype=np.intp)
            counts[players] = ckpt.counts[players]
            revealed[players] = ckpt.revealed[players]
            values[players] = ckpt.values[players]
            if best is not None:
                assert ckpt.best is not None
                best[players] = ckpt.best[players]
        return replace(base, counts=counts, revealed=revealed, values=values, best=best)

    def merged_metrics(self) -> MetricRegistry:
        """Exact fold of every worker's registry (counters/buckets add)."""
        merged = MetricRegistry()
        merged.merge(self._metrics)
        snaps = self._broadcast("metrics", [None] * self.workers, "metrics")
        for snap in snaps:
            merged.merge(MetricRegistry.from_snapshot(snap))
        return merged

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard, conn in enumerate(self._conns):
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._log.close()
        self._store.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"ShardedRuntime(n={self._n}, m={self._m}, workers={self.workers}, "
            f"finished={self.finished})"
        )
