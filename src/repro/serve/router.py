"""Micro-batching request router for the serving runtime.

Requests ("advance my session by a few probes") buffer inside a
configurable batching window; one :meth:`flush` then drives every
granted session to its next probe and issues the whole wavefront as a
single :meth:`ProbeOracle.probe_many` call — the amortisation the HPC
guides recommend, applied across *sessions* instead of across players of
one offline run.  Setting ``micro_batch=False`` (or entering the
library-wide :func:`repro.core.batching.sequential_probes` context)
swaps in per-probe scalar oracle calls, the A/B baseline
``benchmarks/bench_serve.py`` measures against.

Admission control is budget-based and degrades gracefully: when the
oracle raises :class:`~repro.billboard.exceptions.BudgetExceededError`
the service freezes at the last *completed* anytime phase and every
response — including the one that hit the wall — carries that phase's
estimate.  Clients never see an error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs import metrics
from repro.obs.metrics import SIZE_BUCKETS
from repro.billboard.exceptions import BudgetExceededError
from repro.core.batching import batching_enabled
from repro.serve.service import ServeService
from repro.serve.sessions import ADVANCE_DONE, ADVANCE_PROBE, advance

__all__ = ["MicroBatchRouter", "Request", "Response", "RouterConfig"]


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs.

    ``window`` is the batching window: buffered requests auto-flush once
    this many are pending (callers may flush earlier).
    ``probes_per_request`` is the default probe grant of one request.
    ``micro_batch`` selects the ``probe_many`` wavefront path; the
    scalar path is the reference baseline.
    """

    window: int = 32
    probes_per_request: int = 32
    micro_batch: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.probes_per_request <= 0:
            raise ValueError(f"probes_per_request must be positive, got {self.probes_per_request}")


@dataclass(frozen=True)
class Request:
    """One buffered session-advance request."""

    player: int
    probes: int


@dataclass(frozen=True)
class Response:
    """Answer to one request: always the best-so-far estimate.

    ``status`` is the session's state after the flush; a ``"drained"``
    status means the budget ran out and ``estimate`` is the last
    completed phase's answer (graceful degradation, never an error).
    The in-process router always fills ``estimate``; the sharded
    front-end returns ``None`` from bulk flushes (vectors stay in the
    workers) and fills it on explicit :meth:`ServeRuntime.query` calls.
    """

    player: int
    status: str
    probes_used: int
    phases_completed: int
    estimate: np.ndarray | None


class MicroBatchRouter:
    """Drives a :class:`~repro.serve.service.ServeService` request by request."""

    def __init__(self, service: ServeService, *, config: RouterConfig | None = None) -> None:
        self.service = service
        self.config = config if config is not None else RouterConfig()
        self._buffer: list[Request] = []
        self._ready: list[Response] = []

    @property
    def pending(self) -> int:
        """Requests buffered and not yet flushed."""
        return len(self._buffer)

    def submit(self, player: int, probes: int | None = None) -> None:
        """Buffer a request to advance *player* by up to *probes* probes.

        Auto-flushes when the batching window fills; collect responses
        with :meth:`flush` (which also flushes any remaining buffer).
        """
        if not (0 <= player < self.service.n_players):
            raise ValueError(f"player index {player} out of range [0, {self.service.n_players})")
        grant = self.config.probes_per_request if probes is None else int(probes)
        if grant <= 0:
            raise ValueError(f"probe grant must be positive, got {grant}")
        self._buffer.append(Request(player=player, probes=grant))
        obs.incr("serve.requests")
        metrics.incr("serve.requests_total")
        if len(self._buffer) >= self.config.window:
            self._ready.extend(self._flush_buffer())

    def query(self, player: int) -> Response:
        """Best-so-far answer for *player* without advancing anything."""
        session = self.service.sessions[player]
        return Response(
            player=player,
            status=session.status,
            probes_used=0,
            phases_completed=self.service.phases_completed,
            estimate=self.service.estimate(player),
        )

    def flush(self) -> list[Response]:
        """Flush the buffered window; returns every response since the last flush."""
        responses = self._ready
        self._ready = []
        responses.extend(self._flush_buffer())
        return responses

    def run_to_completion(self, *, probes: int | None = None) -> np.ndarray:
        """Drive every session until the service finishes; returns the outputs.

        The closed-loop convenience used by the CLI and the equivalence
        tests: each round grants every unfinished session *probes* more
        probes and flushes.  Ends at ``"done"`` or — when a budget is
        set — ``"drained"``; either way :meth:`ServeService.outputs` is
        the anytime answer.
        """
        service = self.service

        def progress_mark() -> tuple[int, int, int, str]:
            probes = int(service.oracle.stats().per_player.sum())
            posts = sum(s.posts_served for s in service.sessions)
            return (probes, posts, service.phase_j, service.stage)

        while not service.finished:
            before = progress_mark()
            for session in service.sessions:
                if session.status in ("complete", "drained"):
                    continue
                self.submit(session.player, probes)
            self.flush()
            if service.finished:
                break
            if progress_mark() == before:
                raise RuntimeError("service stalled: a full request round made no progress")
        return service.outputs()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush_buffer(self) -> list[Response]:
        requests = self._buffer
        self._buffer = []
        if not requests:
            return []
        service = self.service
        obs.incr("serve.flushes")
        obs.incr("serve.batch_occupancy", len(requests))
        registry = metrics.get_registry()
        if registry is not None:
            registry.incr("serve.flushes_total")
            registry.observe("serve.flush_occupancy", float(len(requests)), SIZE_BUCKETS)
        grants: dict[int, int] = {}
        used: dict[int, int] = {}
        for request in requests:
            grants[request.player] = grants.get(request.player, 0) + request.probes
            used.setdefault(request.player, 0)
            service.sessions[request.player].requests_served += 1
        t0 = time.perf_counter() if registry is not None else 0.0
        with obs.span("serve/flush", oracle=service.oracle, requests=len(requests)):
            self._drive(grants, used)
        if registry is not None:
            registry.observe("serve.flush_latency_seconds", time.perf_counter() - t0)
        responses = [
            Response(
                player=request.player,
                status=service.sessions[request.player].status,
                probes_used=used[request.player],
                phases_completed=service.phases_completed,
                estimate=service.estimate(request.player),
            )
            for request in requests
        ]
        if registry is not None:
            degraded = sum(1 for response in responses if response.status == "drained")
            if degraded:
                registry.incr("serve.degraded_admissions_total", degraded)
        return responses

    def _drive(self, grants: dict[int, int], used: dict[int, int]) -> None:
        """Advance granted sessions until probes run out or nothing moves."""
        service = self.service
        order = sorted(grants)
        # Sessions parked at a Wait stay blocked until a post or a stage
        # change lands (waits are has_channel-guarded, and only those two
        # events create channels) — skip them until then instead of
        # re-running their channel scans every sweep.
        blocked: set[int] = set()
        while not service.finished:
            batch_players: list[int] = []
            batch_objects: list[int] = []
            stage_done = False
            posted = False
            for player in order:
                if grants[player] <= 0 or player in blocked:
                    continue
                session = service.sessions[player]
                if session.status != "active":
                    continue
                posts_before = session.posts_served
                outcome = advance(session, service.oracle.billboard)
                posted = posted or session.posts_served != posts_before
                if outcome == ADVANCE_PROBE:
                    batch_players.append(player)
                    assert session.pending_probe is not None
                    batch_objects.append(session.pending_probe)
                elif outcome == ADVANCE_DONE:
                    assert session.stage_output is not None
                    service.note_stage_done(player, session.stage_output)
                    stage_done = True
                else:
                    blocked.add(player)
                    metrics.incr("serve.wait_parks_total")
            if stage_done or posted:
                blocked.clear()
            if batch_players:
                if not self._issue(batch_players, batch_objects, grants, used):
                    return
            elif not stage_done and not posted:
                return

    def _issue(
        self,
        players: list[int],
        objects: list[int],
        grants: dict[int, int],
        used: dict[int, int],
    ) -> bool:
        """Answer one probe wavefront; ``False`` when the budget ran out."""
        service = self.service
        registry = metrics.get_registry()
        t0 = time.perf_counter() if registry is not None else 0.0
        try:
            if self.config.micro_batch and batching_enabled():
                values = service.oracle.probe_many(
                    np.asarray(players, dtype=np.intp), np.asarray(objects, dtype=np.intp)
                )
            else:
                values = np.asarray(
                    [service.oracle.probe(p, o) for p, o in zip(players, objects)],
                    dtype=np.int8,
                )
        except BudgetExceededError:
            service.mark_exhausted()
            return False
        if registry is not None:
            registry.incr("serve.wavefronts_total")
            registry.incr("serve.probes_total", len(players))
            registry.observe("serve.wavefront_size", float(len(players)), SIZE_BUCKETS)
            registry.observe("serve.wavefront_latency_seconds", time.perf_counter() - t0)
        for player, value in zip(players, values):
            service.sessions[player].deliver(int(value))
            grants[player] -= 1
            used[player] += 1
        return True
