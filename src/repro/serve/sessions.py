"""Per-player session state for the online serving runtime.

A *session* is one player's suspended execution of the §6 anytime
algorithm: the same generator programs the round engine runs
(:func:`repro.engine.main_player.find_preferences_unknown_d_player` for
the phase body, :func:`repro.engine.anytime_player.merge_program` for
the phase merge), held at their last yield point so a request can
advance them by a handful of probes and park them again.

The player-program protocol (see :mod:`repro.engine.actions`) makes this
safe: programs only read billboard channels behind ``Wait``-guarded
``has_channel`` checks and every channel name embeds the posting
player's id, so sessions may be advanced at arbitrary relative rates —
interleaved, micro-batched, or one at a time — and still produce the
outputs and probe counts of the lockstep scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterator, Mapping, Sequence

import numpy as np

from repro import obs
from repro.obs import metrics
from repro.billboard.board import Billboard
from repro.engine.actions import Post, Probe, Wait

__all__ = [
    "ADVANCE_DONE",
    "ADVANCE_PROBE",
    "ADVANCE_WAIT",
    "PlayerProgram",
    "Session",
    "SessionStore",
    "advance",
]

#: A suspended player program: yields engine actions, returns the
#: player's output vector.
PlayerProgram = Generator[Any, Any, np.ndarray]

#: :func:`advance` outcomes.
ADVANCE_PROBE = "probe"
ADVANCE_WAIT = "wait"
ADVANCE_DONE = "done"


@dataclass
class Session:
    """One player's suspended anytime computation.

    ``status`` is one of:

    * ``"active"`` — holds a live program for the current service stage;
    * ``"barrier"`` — finished its stage program (``stage_output`` set)
      and waits for the rest of the population to reach the barrier;
    * ``"complete"`` — the service ran every phase to the end;
    * ``"drained"`` — the probe budget ran out; the session answers from
      the last completed phase forever after.
    """

    player: int
    status: str = "barrier"
    program: PlayerProgram | None = None
    send_value: int | None = None
    pending_probe: int | None = None
    stage_output: np.ndarray | None = None
    probes_served: int = 0
    posts_served: int = 0
    requests_served: int = 0

    def deliver(self, value: int) -> None:
        """Hand the grade of the pending probe back to the program."""
        if self.pending_probe is None:
            raise RuntimeError(f"session {self.player} has no pending probe")
        self.pending_probe = None
        self.send_value = int(value)
        self.probes_served += 1


def advance(session: Session, billboard: Billboard) -> str:
    """Advance *session* to its next round-consuming suspension point.

    ``Post`` actions are processed inline (they are free in the round
    model); the function returns at the first action that needs the
    router:

    * :data:`ADVANCE_PROBE` — ``pending_probe`` is set; the router owes
      the session one oracle grade (via :meth:`Session.deliver`);
    * :data:`ADVANCE_WAIT` — blocked on other sessions' posts;
    * :data:`ADVANCE_DONE` — the stage program returned;
      ``stage_output`` holds the vector and the session parks at the
      barrier.
    """
    if session.program is None:
        raise RuntimeError(f"session {session.player} has no live program")
    if session.pending_probe is not None:
        raise RuntimeError(f"session {session.player} still awaits a probe grade")
    while True:
        try:
            action = session.program.send(session.send_value)
        except StopIteration as stop:
            session.program = None
            session.send_value = None
            session.stage_output = np.asarray(stop.value, dtype=np.int8)
            session.status = "barrier"
            return ADVANCE_DONE
        session.send_value = None
        if isinstance(action, Post):
            billboard.post_vectors(action.channel, np.atleast_2d(action.vector))
            session.posts_served += 1
            metrics.incr("serve.billboard_posts_total")
            continue
        if isinstance(action, Probe):
            session.pending_probe = int(action.obj)
            return ADVANCE_PROBE
        if isinstance(action, Wait):
            return ADVANCE_WAIT
        raise TypeError(f"session {session.player} yielded unknown action {action!r}")


class SessionStore:
    """All sessions of one service, keyed by player id.

    The store tracks which sessions hold live programs and keeps the
    ``serve.active_sessions`` gauge current whenever telemetry is
    recording.  A sharded worker passes *players* — the subset of the
    population it owns — and stores sessions for those ids only.
    """

    def __init__(self, n_players: int, players: Sequence[int] | None = None) -> None:
        if n_players <= 0:
            raise ValueError(f"population must be positive, got n={n_players}")
        owned = range(n_players) if players is None else [int(p) for p in players]
        if players is not None:
            if not owned:
                raise ValueError("a session store must own at least one player")
            bad = [p for p in owned if not 0 <= p < n_players]
            if bad:
                raise ValueError(f"player ids out of range for n={n_players}: {bad}")
            if len(set(owned)) != len(owned):
                raise ValueError("duplicate player ids in session store")
        self._sessions = {player: Session(player=player) for player in owned}
        self._gauge()

    def __len__(self) -> int:
        return len(self._sessions)

    def __getitem__(self, player: int) -> Session:
        return self._sessions[player]

    def __iter__(self) -> Iterator[Session]:
        for player in sorted(self._sessions):
            yield self._sessions[player]

    def load_stage(self, programs: Mapping[int, PlayerProgram]) -> None:
        """Install one stage's programs; those sessions go ``"active"``."""
        for player, program in programs.items():
            session = self._sessions[player]
            session.program = program
            session.send_value = None
            session.pending_probe = None
            session.stage_output = None
            session.status = "active"
        self._gauge()

    def freeze(self, status: str) -> None:
        """Retire every session to *status* (``"complete"``/``"drained"``)."""
        if status not in ("complete", "drained"):
            raise ValueError(f"freeze status must be 'complete' or 'drained', got {status!r}")
        for session in self._sessions.values():
            if session.program is not None:
                session.program.close()
                session.program = None
            session.send_value = None
            session.pending_probe = None
            session.status = status
        self._gauge()

    def count(self, status: str) -> int:
        """Number of sessions currently in *status*."""
        return sum(1 for s in self._sessions.values() if s.status == status)

    def active_players(self) -> list[int]:
        """Player ids with a live stage program, in id order."""
        return sorted(p for p, s in self._sessions.items() if s.status == "active")

    def _gauge(self) -> None:
        active = self.count("active")
        obs.gauge("serve.active_sessions", active)
        metrics.set_gauge("serve.active_sessions", active)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"SessionStore(n={len(self._sessions)}, active={self.count('active')})"
