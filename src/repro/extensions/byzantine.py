"""Byzantine (dishonest) players — the introduction's eBay motivation.

"some eBay users may be dishonest": probe *results* are ground truth in
the model (the billboard records what a probe revealed), but the
intermediate **vectors players post** — the Zero Radius recursion
outputs that other players vote over — are self-reported.  A dishonest
player can post anything.

The round engine makes the attack natural to express: a Byzantine player
runs :func:`byzantine_zero_radius_player`, which follows the public
coins (so it knows exactly which channels honest players expect) but
posts an adversarial vector at every level instead of computed values —
here the *complement of its leaf probes extended with constant garbage*,
a worst-case-flavoured lie that maximally disagrees with every honest
candidate.

Resilience comes from the vote threshold: a vector needs an ``α/2``
fraction of a voting half to become a candidate, so liars below that
fraction can *add* garbage candidates (each costing honest Selects a few
probes) but cannot *remove* the truthful candidate; Select at bound 0
then discards every lie that disagrees with the player's own probes.
Experiment X7 measures the degradation curve as the Byzantine fraction
grows through ``α/2``.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.oracle import ProbeOracle
from repro.core.params import Params
from repro.core.zero_radius import NO_OUTPUT
from repro.engine.actions import Post, Probe
from repro.engine.coins import PublicCoins
from repro.engine.scheduler import EngineResult, RoundScheduler
from repro.engine.zero_radius_player import zero_radius_player
from repro.utils.rng import as_generator

__all__ = ["byzantine_zero_radius_player", "run_zero_radius_with_byzantine"]


def byzantine_zero_radius_player(
    player: int,
    coins: PublicCoins,
    n_objects: int,
) -> Generator[Any, Any, np.ndarray]:
    """A dishonest Fig. 2 participant.

    Probes its leaf (so its probe trace looks plausible), then posts the
    *complement* of the truth at the leaf and keeps posting complemented
    garbage at every ascent level — never adopting, never telling the
    truth.  Returns its (worthless) claimed output.
    """
    values = np.full(n_objects, NO_OUTPUT, dtype=np.int16)
    path = coins.path_of(player)
    leaf = path[-1]

    for obj in leaf.objects:
        truth = yield Probe(int(obj))
        values[obj] = 1 - truth  # lie
    yield Post(f"zr/{leaf.node_id or 'root'}/{player}", values[leaf.objects])

    for depth in range(len(path) - 2, -1, -1):
        node = path[depth]
        my_child = path[depth + 1]
        sibling = coins.sibling(my_child.node_id)
        # Claim constant garbage for the sibling's objects (no probing —
        # a liar need not spend budget to lie).
        values[sibling.objects] = 1
        yield Post(f"zr/{node.node_id or 'root'}/{player}", values[node.objects])

    return values


def run_zero_radius_with_byzantine(
    oracle: ProbeOracle,
    alpha: float,
    byzantine_fraction: float,
    *,
    params: Params | None = None,
    rng: int | np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
) -> tuple[np.ndarray, np.ndarray, EngineResult]:
    """Run the distributed Zero Radius with a dishonest sub-population.

    A uniformly random ``byzantine_fraction`` of players runs the
    Byzantine program; the rest run the honest one.  Returns
    ``(outputs, byzantine_mask, engine_result)``; honest players'
    guarantees should hold as long as the liars stay below the ``α/2``
    vote threshold within every half (w.h.p.).
    """
    if not (0 <= byzantine_fraction < 1):
        raise ValueError(f"byzantine_fraction must be in [0, 1), got {byzantine_fraction}")
    p = params or Params.practical()
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects
    players = np.arange(n, dtype=np.intp)

    n_bad = int(round(byzantine_fraction * n))
    bad = np.zeros(n, dtype=bool)
    if n_bad:
        bad[gen.choice(n, size=n_bad, replace=False)] = True

    coins = PublicCoins.draw(players, m, alpha, n_global=n, params=p, rng=gen)
    programs = {}
    for pl in range(n):
        if bad[pl]:
            programs[pl] = byzantine_zero_radius_player(pl, coins, m)
        else:
            programs[pl] = zero_radius_player(pl, coins, oracle.billboard, alpha, m, params=p)
    result = RoundScheduler(oracle, programs).run(max_rounds=max_rounds)

    out = np.full((n, m), NO_OUTPUT, dtype=np.int16)
    for pl, vec in result.outputs.items():
        out[pl] = vec
    return out, bad, result
