"""The "find one good object" problem (the paper's reference [4]).

Section 2: "the problem of finding a good object for each user can be
solved by very simple combinatorial algorithms without any restriction
on the preference vectors: for any set ``P`` of users with a common
object they all like, only ``O(m + n log |P|)`` probes are required
overall until all users in ``P`` find a good object (w.h.p.)".

The protocol (round-synchronous, faithful to the interactive model):

* every still-unsatisfied player flips a fair coin each round: **explore**
  (probe a uniformly random unprobed object) or **exploit** (probe a
  uniformly random object from the billboard's *recommendation pool* —
  objects some player reported liking);
* a player that probes an object it likes posts it as a recommendation
  and stops, outputting that object.

Intuition for the bound: the community ``P`` collectively explores at
rate ``|P|`` per round, so *someone* hits the common object after
``~ m/|P|`` rounds of total work ``m``; after that, each remaining member
finds a recommendation it likes in ``O(log)`` exploitation samples, for
``n log |P|`` more work.  The no-collaboration baseline
(:func:`solo_good_object`) explores only, paying ``~ m/(liked objects)``
probes per player.

This module measures, it does not prove: experiment X3 sweeps ``|P|``
and compares total probes against the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.utils.rng import as_generator
from repro.utils.validation import check_pos_int

__all__ = ["GoodObjectResult", "good_object_protocol", "solo_good_object"]


@dataclass(frozen=True)
class GoodObjectResult:
    """Outcome of a good-object run.

    Attributes
    ----------
    found:
        Per-player chosen object index, or -1 if unsatisfied at the
        round limit.
    rounds:
        Synchronous rounds executed.
    total_probes:
        Total probes charged across the population.
    satisfied:
        Boolean per-player satisfaction mask.
    """

    found: np.ndarray
    rounds: int
    total_probes: int

    @property
    def satisfied(self) -> np.ndarray:
        return self.found >= 0


def _first_liked(values: np.ndarray) -> bool:
    return bool(values == 1)


def good_object_protocol(
    oracle: ProbeOracle,
    *,
    max_rounds: int | None = None,
    explore_prob: float = 0.5,
    rng: int | np.random.Generator | None = None,
) -> GoodObjectResult:
    """Run the explore/exploit recommendation protocol for all players.

    Parameters
    ----------
    oracle:
        Probe gate; a player "likes" an object iff its hidden grade is 1.
    max_rounds:
        Safety cap on synchronous rounds (default ``4m``).
    explore_prob:
        Probability of exploring vs exploiting per round (paper-style: 1/2).
    rng:
        Seed or generator.
    """
    if not (0 < explore_prob <= 1):
        raise ValueError(f"explore_prob must be in (0, 1], got {explore_prob}")
    gen = as_generator(rng)
    n, m = oracle.n_players, oracle.n_objects
    cap = 4 * m if max_rounds is None else check_pos_int(max_rounds, "max_rounds")

    found = np.full(n, -1, dtype=np.int64)
    # Per-player set of already-probed objects (exploration without
    # replacement; exploitation may repeat, as in the model).
    probed: list[set[int]] = [set() for _ in range(n)]
    recommendations: list[int] = []
    rec_set: set[int] = set()
    before = oracle.stats()

    rounds = 0
    active = np.flatnonzero(found < 0)
    while active.size and rounds < cap:
        rounds += 1
        batch_players = []
        batch_objects = []
        for p in active:
            explore = (not recommendations) or gen.random() < explore_prob
            if explore:
                # uniformly random unprobed object
                tried = probed[p]
                if len(tried) >= m:
                    continue  # nothing left to learn; player dislikes everything
                while True:
                    o = int(gen.integers(0, m))
                    if o not in tried:
                        break
            else:
                o = int(recommendations[int(gen.integers(0, len(recommendations)))])
                if o in probed[p]:
                    continue  # already know this one (and disliked it)
            probed[p].add(o)
            batch_players.append(int(p))
            batch_objects.append(o)
        if not batch_players:
            break
        values = oracle.probe_many(np.asarray(batch_players), np.asarray(batch_objects))
        for p, o, v in zip(batch_players, batch_objects, values):
            if v == 1 and found[p] < 0:
                found[p] = o
                if o not in rec_set:
                    rec_set.add(o)
                    recommendations.append(o)
        active = np.flatnonzero(found < 0)

    stats = oracle.stats() - before
    return GoodObjectResult(found=found, rounds=rounds, total_probes=stats.total)


def solo_good_object(
    oracle: ProbeOracle,
    *,
    max_rounds: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> GoodObjectResult:
    """No-collaboration baseline: pure random exploration per player."""
    return good_object_protocol(
        oracle, max_rounds=max_rounds, explore_prob=1.0, rng=rng
    )
