"""Extensions beyond the paper's core results.

* :mod:`~repro.extensions.good_object` — the *single good recommendation*
  problem of the paper's closest prior work ([4], Awerbuch, Patt-Shamir,
  Peleg, Tuttle, SODA 2005): instead of reconstructing the whole
  preference vector, every player only needs *one* object it likes.
  Implemented here as the random-probe + billboard-recommendation
  protocol, with the no-collaboration baseline — experiment X3 measures
  the ``O(m + n log |P|)``-style total-work advantage the paper cites.
* dynamic-preference tracking lives in
  :mod:`repro.workloads.dynamic` (experiment X2).
"""

from repro.extensions.good_object import good_object_protocol, solo_good_object
from repro.extensions.byzantine import byzantine_zero_radius_player, run_zero_radius_with_byzantine

__all__ = [
    "good_object_protocol",
    "solo_good_object",
    "byzantine_zero_radius_player",
    "run_zero_radius_with_byzantine",
]
