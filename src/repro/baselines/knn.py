"""Probe-then-nearest-neighbour collaborative filtering baseline.

Classical memory-based CF adapted to the interactive model:

1. **Anchor phase** — all players probe the *same* ``anchor`` random
   objects (public coin), so every pair of players is comparable on a
   common coordinate set;
2. **Spread phase** — each player additionally probes ``spread`` random
   objects of its own, thickening column coverage;
3. **Imputation** — each player ranks all others by Hamming distance on
   the anchor set, keeps the ``k`` nearest, and fills each unknown
   coordinate with the majority grade among its neighbours' revealed
   entries there (falling back to the global column majority, then 0).

This is a strong heuristic on clustered instances and needs no knowledge
of ``α`` or ``D`` — but it offers no worst-case guarantee: anchor
distances estimate true distances only up to sampling noise, and
experiment E9 charts where it loses to the paper's algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.result import RunResult
from repro.utils.rng import as_generator

__all__ = ["knn_baseline"]


def knn_baseline(
    oracle: ProbeOracle,
    anchor: int,
    spread: int,
    k_neighbors: int = 10,
    *,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Run the kNN-CF baseline.

    Parameters
    ----------
    oracle:
        Probe gate.
    anchor:
        Number of shared anchor objects every player probes.
    spread:
        Extra per-player random probes (column coverage).
    k_neighbors:
        Neighbourhood size for imputation.
    rng:
        Seed or generator.
    """
    n, m = oracle.n_players, oracle.n_objects
    anchor = min(int(anchor), m)
    spread = min(int(spread), m)
    if anchor < 1:
        raise ValueError(f"anchor must be >= 1, got {anchor}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
    gen = as_generator(rng)
    before = oracle.stats()

    anchor_objs = np.sort(gen.choice(m, size=anchor, replace=False))
    anchor_vals = np.empty((n, anchor), dtype=np.int8)
    for player in range(n):
        anchor_vals[player] = oracle.probe_all(player, anchor_objs)
        if spread:
            extra = gen.choice(m, size=spread, replace=False)
            oracle.probe_all(player, np.sort(extra))

    # Pairwise anchor distances (vectorized, see metrics.hamming).
    af = anchor_vals.astype(np.float64)
    dist = af @ (1.0 - af).T
    dist += dist.T

    mask = oracle.billboard.revealed_mask()
    values = oracle.billboard.revealed_values()
    ones_col = ((values == 1) & mask).sum(axis=0)
    rev_col = mask.sum(axis=0)
    global_majority = (ones_col * 2 > rev_col).astype(np.int8)

    k_eff = min(k_neighbors, n - 1)
    outputs = np.zeros((n, m), dtype=np.int8)
    for player in range(n):
        order = np.argsort(dist[player], kind="stable")
        neighbors = order[order != player][:k_eff]
        nb_mask = mask[neighbors]
        nb_ones = ((values[neighbors] == 1) & nb_mask).sum(axis=0)
        nb_rev = nb_mask.sum(axis=0)
        est = np.where(nb_rev > 0, (nb_ones * 2 > nb_rev).astype(np.int8), global_majority)
        own = mask[player]
        outputs[player] = np.where(own, values[player], est)

    stats = oracle.stats() - before
    return RunResult(
        outputs=outputs,
        stats=stats,
        algorithm="knn",
        meta={"anchor": anchor, "spread": spread, "k_neighbors": k_eff},
    )
