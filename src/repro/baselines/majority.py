"""Pooled column-majority baseline.

The simplest possible collaboration: spread a global probe budget
uniformly over the matrix (each player probes ``budget`` random objects
and posts the results), then every player adopts, per object, the
majority grade among *all* revealed entries of that column.

Sound only when a single community dominates the whole population — the
"intuitively, it seems that arbitrary diversity is unmanageable" strawman
of the introduction.  With multiple communities or adversarial outsiders
its output is the population-wide average, which can be far from every
player; experiments E9 uses it to show why per-community reconstruction
is necessary.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.result import RunResult
from repro.utils.rng import as_generator

__all__ = ["majority_baseline"]


def majority_baseline(
    oracle: ProbeOracle,
    budget: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Probe ``budget`` random objects per player, output column majorities.

    Every player outputs the *same* vector: the per-column majority of
    all revealed grades (ties and never-probed columns default to 0).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    n, m = oracle.n_players, oracle.n_objects
    k = min(int(budget), m)
    gen = as_generator(rng)
    before = oracle.stats()

    for player in range(n):
        objs = gen.choice(m, size=k, replace=False)
        oracle.probe_all(player, np.sort(objs))

    mask = oracle.billboard.revealed_mask()
    values = oracle.billboard.revealed_values()
    ones = ((values == 1) & mask).sum(axis=0)
    revealed = mask.sum(axis=0)
    consensus = (ones * 2 > revealed).astype(np.int8)
    outputs = np.tile(consensus, (n, 1))

    stats = oracle.stats() - before
    return RunResult(outputs=outputs, stats=stats, algorithm="majority", meta={"budget": k})
