"""The "go it alone" baseline.

Section 1.1: "linear probing budget means that the player can go it
alone".  Every player probes every object: output is exact and the cost
is exactly ``m`` rounds — the yardstick the collaborative algorithms
must beat.  With a smaller budget, each player probes a random subset
and guesses the rest (the majority value of its probed entries), which
gives the trivial rate-distortion curve the anytime experiment plots
against.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.oracle import ProbeOracle
from repro.core.result import RunResult
from repro.utils.rng import as_generator

__all__ = ["solo_baseline"]


def solo_baseline(
    oracle: ProbeOracle,
    *,
    budget: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Each player probes on its own (no collaboration).

    Parameters
    ----------
    oracle:
        The probe gate.
    budget:
        Probes per player; default (None) = probe all ``m`` objects.
        With a partial budget each player probes a uniform random subset
        and fills unprobed coordinates with the majority of its own
        probed values (the best assumption-free guess).
    rng:
        Seed or generator for the subset choice.
    """
    n, m = oracle.n_players, oracle.n_objects
    gen = as_generator(rng)
    k = m if budget is None else min(int(budget), m)
    if k < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    before = oracle.stats()
    outputs = np.zeros((n, m), dtype=np.int8)
    for player in range(n):
        if k == m:
            objs = np.arange(m, dtype=np.intp)
        else:
            objs = np.sort(gen.choice(m, size=k, replace=False))
        if k > 0:
            values = oracle.probe_all(player, objs)
            outputs[player, objs] = values
            fill = 1 if values.mean() > 0.5 else 0
            if fill and k < m:
                mask = np.ones(m, dtype=bool)
                mask[objs] = False
                outputs[player, mask] = fill
    stats = oracle.stats() - before
    return RunResult(outputs=outputs, stats=stats, algorithm="solo", meta={"budget": k})
