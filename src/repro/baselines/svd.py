"""Masked truncated-SVD completion baseline (the spectral family).

Section 2: the non-interactive literature (Drineas et al., Azar et al.,
Papadimitriou et al., Sarwar et al.) assumes the preference matrix is
approximately low-rank — "a few canonical preference vectors" — and
reconstructs it spectrally from sparse samples.  This module implements
the standard recipe:

1. every player probes ``budget`` random objects (uniform mask);
2. build the zero-centered sampled matrix, rescaled by the inverse
   sampling rate (the Achlioptas–McSherry estimator of the full matrix);
3. truncate to the top ``rank`` singular directions;
4. round the reconstruction at 1/2, keeping each player's own probed
   entries verbatim.

Its guarantee needs a singular-value gap at ``rank`` — precisely the
assumption the paper drops.  Experiment E9 shows it winning on mixture
matrices; E12 shows it breaking on adversarial (full-rank) ones while
the paper's algorithms keep their bound.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from repro.billboard.oracle import ProbeOracle
from repro.core.result import RunResult
from repro.utils.rng import as_generator

__all__ = ["svd_baseline"]


def svd_baseline(
    oracle: ProbeOracle,
    budget: int,
    rank: int = 4,
    *,
    rng: int | np.random.Generator | None = None,
) -> RunResult:
    """Run the masked-SVD completion baseline.

    Parameters
    ----------
    oracle:
        Probe gate.
    budget:
        Probes per player (uniform random objects).
    rank:
        Truncation rank ``k`` (the assumed number of canonical types).
    rng:
        Seed or generator.
    """
    n, m = oracle.n_players, oracle.n_objects
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    k = min(int(budget), m)
    rank = min(int(rank), min(n, m) - 1) if min(n, m) > 1 else 1
    gen = as_generator(rng)
    before = oracle.stats()

    for player in range(n):
        objs = gen.choice(m, size=k, replace=False)
        oracle.probe_all(player, np.sort(objs))

    mask = oracle.billboard.revealed_mask()
    values = oracle.billboard.revealed_values()
    rate = mask.mean()
    # Centered ±1 encoding, zero-filled off the mask, unbiased rescale.
    centered = np.where(mask, 2.0 * values - 1.0, 0.0) / max(rate, 1e-9)

    try:
        u, s, vt = scipy.sparse.linalg.svds(centered, k=rank)
    except Exception:
        # svds can fail on tiny/degenerate inputs; fall back to dense SVD.
        u_full, s_full, vt_full = np.linalg.svd(centered, full_matrices=False)
        u, s, vt = u_full[:, :rank], s_full[:rank], vt_full[:rank]
    recon = (u * s) @ vt

    outputs = (recon > 0).astype(np.int8)
    # Players keep the entries they actually observed.
    outputs = np.where(mask, values, outputs).astype(np.int8)

    stats = oracle.stats() - before
    return RunResult(outputs=outputs, stats=stats, algorithm="svd", meta={"budget": k, "rank": rank})
