"""Baseline algorithms the paper compares against (in prose).

All baselines run through the same :class:`~repro.billboard.ProbeOracle`
substrate and cost model as the paper's algorithms, so probe counts are
directly comparable:

* :mod:`~repro.baselines.solo` — "go it alone": probe everything
  (exact output, ``m`` rounds; the paper's yardstick for linear budget).
* :mod:`~repro.baselines.majority` — pooled column-majority vote over a
  random sample (what naive crowd-sourcing does; only sound when one
  community dominates).
* :mod:`~repro.baselines.knn` — probe-then-nearest-neighbour
  collaborative filtering: sample shared coordinates publicly, impute
  from the most-overlapping neighbours (classical memory-based CF).
* :mod:`~repro.baselines.svd` — masked low-rank (truncated SVD)
  completion, the Drineas et al. / spectral family the paper's Section 2
  discusses; requires the singular-value-gap assumption that experiments
  E9/E12 probe.
"""

from repro.baselines.solo import solo_baseline
from repro.baselines.majority import majority_baseline
from repro.baselines.knn import knn_baseline
from repro.baselines.svd import svd_baseline

__all__ = ["solo_baseline", "majority_baseline", "knn_baseline", "svd_baseline"]
