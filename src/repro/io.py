"""Archiving instances and run results to ``.npz``.

Experiment sweeps produce (instance, outputs, probe counts) triples that
are expensive to regenerate and cheap to store.  This module provides a
stable on-disk format:

* :func:`save_instance` / :func:`load_instance` — hidden matrix plus
  every planted community (members, diameter, center, label);
* :func:`save_run` / :func:`load_run` — a
  :class:`~repro.core.result.RunResult` (outputs, per-player probes,
  algorithm tag; ``meta`` is stored for scalar/str/int-list values);
* :func:`save_probe_stats` / :func:`load_probe_stats` — bare
  :class:`~repro.billboard.accounting.ProbeStats` (the serving layer
  snapshots accounting independently of any run result).

Everything round-trips exactly; loading never requires the workload
generator or its seed.

Format versioning: every archive embeds ``{"version": FORMAT_VERSION}``
in its JSON metadata.  Version 2 added the ``probe_stats`` and
``service`` kinds; version 3 stores the ``service`` hidden matrix
bit-packed (``hidden_packed`` + logical shape in the metadata) instead
of dense; version 4 added whole-runtime snapshots — a directory with a
``manifest.json``, one ``kind="service-global"`` archive for shared
state, and per-shard ``kind="service-shard"`` archives (see
:mod:`repro.serve.snapshot`).  The loaders accept every version in
``SUPPORTED_VERSIONS`` (version-1 archives predate the version gate and
still load) and reject archives from a *newer* format than this build
understands.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.billboard.accounting import ProbeStats
from repro.core.result import RunResult
from repro.model.community import Community
from repro.model.instance import Instance

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "check_format_version",
    "load_instance",
    "load_probe_stats",
    "load_run",
    "save_instance",
    "save_probe_stats",
    "save_run",
]

#: Version written into new archives.
FORMAT_VERSION = 4

#: Versions the loaders of this build accept.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4})


def check_format_version(meta: dict[str, Any], path: str | Path) -> None:
    """Reject archives whose embedded format version this build cannot read.

    Archives written before the version gate default to version 1 (they
    always embedded it anyway); anything outside
    :data:`SUPPORTED_VERSIONS` — i.e. written by a newer build — raises
    ``ValueError`` instead of being misparsed.
    """
    version = meta.get("version", 1)
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_VERSIONS))
        raise ValueError(
            f"{path} has format version {version!r}; this build reads versions {{{supported}}}"
        )


def save_instance(path: str | Path, instance: Instance) -> Path:
    """Write *instance* to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {"prefs": instance.prefs}
    meta = {
        "version": FORMAT_VERSION,
        "kind": "instance",
        "name": instance.name,
        "communities": [],
    }
    for i, c in enumerate(instance.communities):
        arrays[f"community_{i}_members"] = c.members
        if c.center is not None:
            arrays[f"community_{i}_center"] = c.center
        meta["communities"].append(
            {"diameter": int(c.diameter), "label": c.label, "has_center": c.center is not None}
        )
    arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_instance(path: str | Path) -> Instance:
    """Load an instance written by :func:`save_instance`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path)
        if meta.get("kind") != "instance":
            raise ValueError(f"{path} does not contain an instance (kind={meta.get('kind')!r})")
        communities = []
        for i, cm in enumerate(meta["communities"]):
            center = data[f"community_{i}_center"] if cm["has_center"] else None
            communities.append(
                Community(
                    members=data[f"community_{i}_members"],
                    diameter=cm["diameter"],
                    center=center,
                    label=cm["label"],
                )
            )
        return Instance(prefs=data["prefs"], communities=communities, name=meta["name"])


def _jsonable_meta(meta: dict) -> dict:
    """Keep only JSON-serialisable meta entries (scalars, strings, flat lists)."""
    out = {}
    for k, v in meta.items():
        try:
            json.dumps(v)
        except TypeError:
            continue
        out[k] = v
    return out


def save_run(path: str | Path, run: RunResult) -> Path:
    """Write a run result to ``path``."""
    path = Path(path)
    meta = {
        "version": FORMAT_VERSION,
        "kind": "run",
        "algorithm": run.algorithm,
        "meta": _jsonable_meta(run.meta),
    }
    np.savez_compressed(
        path,
        outputs=run.outputs,
        per_player=run.stats.per_player,
        meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_run(path: str | Path) -> RunResult:
    """Load a run result written by :func:`save_run`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path)
        if meta.get("kind") != "run":
            raise ValueError(f"{path} does not contain a run result (kind={meta.get('kind')!r})")
        return RunResult(
            outputs=data["outputs"],
            stats=ProbeStats(data["per_player"]),
            algorithm=meta["algorithm"],
            meta=meta["meta"],
        )


def save_probe_stats(path: str | Path, stats: ProbeStats) -> Path:
    """Write per-player probe accounting to ``path``."""
    path = Path(path)
    meta = {"version": FORMAT_VERSION, "kind": "probe_stats"}
    np.savez_compressed(
        path,
        per_player=stats.per_player,
        meta_json=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_probe_stats(path: str | Path) -> ProbeStats:
    """Load probe accounting written by :func:`save_probe_stats`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        check_format_version(meta, path)
        if meta.get("kind") != "probe_stats":
            raise ValueError(f"{path} does not contain probe stats (kind={meta.get('kind')!r})")
        return ProbeStats(data["per_player"])
