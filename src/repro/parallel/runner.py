"""Trial-level parallelism for experiment sweeps.

The simulation itself is single-process by design (the billboard is
shared state every simulated player reads), but experiment *trials* —
independent (instance, seed) runs — are embarrassingly parallel.  This
module fans trials out over worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`, the standard recipe for
CPU-bound NumPy workloads (one process per core; no GIL contention; each
worker gets an independent, deterministically-derived seed).

The worker callable must be a module-level function (picklable); trial
inputs and outputs cross process boundaries, so keep them small —
return summary statistics, not output matrices.  For the big input that
every trial shares — the hidden preference matrix — pass a
:class:`~repro.parallel.shared.SharedInstanceHandle` instead of the
matrix itself: the parent publishes the bit-packed matrix to POSIX
shared memory once, and each worker attaches in place of unpickling
megabytes per trial.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["run_trials", "derive_seeds"]


def derive_seeds(base_seed: int | np.random.Generator | None, count: int) -> list[int]:
    """Derive *count* independent trial seeds from one base seed.

    *base_seed* may be an integer, an existing
    :class:`numpy.random.Generator`, or ``None`` (fresh entropy) — the
    same rng-like contract as every other entry point.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    gen = as_generator(base_seed)
    return [int(s) for s in gen.integers(0, 2**31 - 1, size=count)]


def run_trials(
    worker: Callable[..., Any],
    trial_args: Sequence[tuple],
    *,
    max_workers: int | None = None,
    parallel: bool | None = None,
) -> list[Any]:
    """Run ``worker(*args)`` for each tuple in *trial_args*.

    Parameters
    ----------
    worker:
        Module-level function (picklable).
    trial_args:
        One positional-argument tuple per trial.
    max_workers:
        Process count (default: ``os.cpu_count()``, capped at the trial
        count).
    parallel:
        Force parallel (True) or serial (False) execution; default picks
        parallel only when there are enough trials to amortise process
        start-up (≥ 4 trials and > 1 CPU).

    Returns
    -------
    list
        Worker results in trial order.
    """
    trial_args = list(trial_args)
    if not trial_args:
        return []
    cpus = os.cpu_count() or 1
    if parallel is None:
        parallel = len(trial_args) >= 4 and cpus > 1
    if not parallel:
        return [worker(*args) for args in trial_args]

    workers = min(max_workers or cpus, len(trial_args))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, *zip(*trial_args)))
