"""Trial-level parallelism: process-pool runner + shared-memory instances.

``repro.parallel`` fans independent (instance, seed) trials out over
worker processes and publishes the big shared input — the hidden
preference matrix — through POSIX shared memory so workers attach
instead of unpickling it per trial.

Public surface:

* :func:`run_trials` / :func:`derive_seeds` — the process-pool runner
  (formerly the ``repro.parallel`` module; same import path, same
  semantics).
* :class:`SharedInstanceStore` / :class:`SharedInstanceHandle` — the
  publish-once / attach-many instance transport.
"""

from repro.parallel.runner import derive_seeds, run_trials
from repro.parallel.shared import SharedInstanceHandle, SharedInstanceStore

__all__ = [
    "run_trials",
    "derive_seeds",
    "SharedInstanceStore",
    "SharedInstanceHandle",
]
