"""Shared-memory publication of trial instances.

Pre-PR, every parallel trial re-pickled the full ``n × m`` preference
matrix through the process-pool pipe — at ``n = m = 2048`` that is 4 MB
per trial, serialized, copied, and deserialized 16 times for a 16-trial
sweep.  A :class:`SharedInstanceStore` instead publishes the matrix
**once**, bit-packed (one bit per entry, 8× smaller than ``int8``), to
POSIX shared memory; trials carry only a tiny
:class:`SharedInstanceHandle` (segment name + shape + community
metadata) and each worker attaches and unpacks in place of unpickling.

Lifecycle contract:

* the **publisher** owns the segment: :meth:`SharedInstanceStore.close`
  (or the ``with`` block) closes *and unlinks* every published segment —
  call it only after all trials consuming the handles have finished;
* **workers** are read-only attachers: :meth:`SharedInstanceHandle.bitmatrix`
  (packed, the 8×-lighter default since the oracle consumes a
  :class:`~repro.metrics.bitpack.BitMatrix` directly) and the dense
  :meth:`~SharedInstanceHandle.prefs` / :meth:`~SharedInstanceHandle.instance`
  attach, copy out, and detach immediately, and never unlink (attachment
  is untracked, so a worker's exit cannot reap a segment other workers
  still read);
* handles are cheap picklable values — pass them through
  :func:`~repro.parallel.runner.run_trials` trial args freely.

Usage::

    with SharedInstanceStore() as store:
        handle = store.publish(instance)
        results = run_trials(worker, [(handle, s) for s in seeds])
    # segments unlinked here
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.metrics.bitpack import BitMatrix, pack_rows, packed_width, unpack_rows
from repro.model.community import Community
from repro.model.instance import Instance
from repro.utils.validation import check_binary_matrix

__all__ = ["SharedInstanceHandle", "SharedInstanceStore"]

# Segments published by THIS process (and, under fork, inherited from the
# parent).  Readers that find the name here reuse the publisher's own
# mapping — zero-copy for forked workers, and it keeps the resource
# tracker honest: attaching via SharedMemory(name=...) on Python < 3.13
# *registers* the segment, so a same-process attach + unregister would
# strip the publisher's registration and make the eventual unlink
# double-unregister.
_LOCAL_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering as its owner.

    Attachers must not be tracked: the resource tracker unlinks tracked
    segments when a process exits, so a tracked *reader* exiting early
    would reap the segment out from under the publisher and its sibling
    workers.  Python 3.13 exposes ``track=False``; earlier versions need
    the unregister workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track kwarg
        shm = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - best-effort on exotic platforms
            pass
        return shm


@dataclass(frozen=True)
class SharedInstanceHandle:
    """Picklable reference to a published instance.

    Attributes
    ----------
    shm_name:
        Shared-memory segment holding the bit-packed preference matrix.
    shape:
        Logical ``(n, m)`` of the dense matrix.
    instance_name:
        The source instance's workload label.
    communities:
        The planted ground truth (small arrays; pickled with the handle
        so workers can evaluate without touching shared memory twice).
    """

    shm_name: str
    shape: tuple[int, int]
    instance_name: str = "instance"
    communities: tuple[Community, ...] = field(default=())

    @property
    def packed_shape(self) -> tuple[int, int]:
        """Shape of the bit-packed storage, ``(n, ceil(m / 8))``."""
        n, m = self.shape
        return (n, packed_width(m))

    def _packed_copy(self) -> np.ndarray:
        """Attach, copy the packed rows out, and detach."""
        pn, pm = self.packed_shape
        local = _LOCAL_SEGMENTS.get(self.shm_name)
        shm = local if local is not None else _attach(self.shm_name)
        try:
            packed = np.ndarray((pn, pm), dtype=np.uint8, buffer=shm.buf).copy()
        finally:
            if local is None:
                shm.close()
        return packed

    def bitmatrix(self) -> BitMatrix:
        """Attach the matrix *still bit-packed* and detach.

        The worker fast path: the copy out of the segment is ``n·m/8``
        bytes and the result feeds
        :class:`~repro.billboard.oracle.ProbeOracle` directly, so the
        dense ``int8`` matrix never exists in the worker — an 8× cut of
        per-worker resident memory next to :meth:`prefs`.
        """
        return BitMatrix.from_packed(self._packed_copy(), self.shape[1])

    def prefs(self) -> np.ndarray:
        """Attach, unpack the dense ``(n, m)`` int8 matrix, and detach.

        A segment published by this process (or inherited through fork)
        is read through the publisher's existing mapping; only a foreign
        process actually re-attaches.
        """
        return unpack_rows(self._packed_copy(), self.shape[1])

    def instance(self) -> Instance:
        """Rebuild the full :class:`~repro.model.Instance` in this process."""
        return Instance(
            prefs=self.prefs(), communities=list(self.communities), name=self.instance_name
        )


class SharedInstanceStore:
    """Publisher-side registry of shared-memory instance segments.

    The store owns every segment it publishes; :meth:`close` (or leaving
    the ``with`` block) closes and unlinks them all.  Keep the store
    alive for as long as any worker may still attach.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def publish(self, instance: Instance | np.ndarray | BitMatrix) -> SharedInstanceHandle:
        """Publish an instance's preference matrix; returns the handle.

        An already-packed :class:`BitMatrix` (e.g. an mmap-attached
        dataset mirror) publishes its words as-is — no dense detour.
        """
        if isinstance(instance, Instance):
            packed = pack_rows(instance.prefs)
            shape = instance.prefs.shape
            name = instance.name
            communities = tuple(instance.communities)
        elif isinstance(instance, BitMatrix):
            packed = instance.packed
            shape = instance.shape
            name = "instance"
            communities = ()
        else:
            prefs = check_binary_matrix(instance, "instance")
            packed = pack_rows(prefs)
            shape = prefs.shape
            name = "instance"
            communities = ()
        shm = shared_memory.SharedMemory(create=True, size=packed.nbytes)
        view = np.ndarray(packed.shape, dtype=np.uint8, buffer=shm.buf)
        view[:] = packed
        self._segments.append(shm)
        _LOCAL_SEGMENTS[shm.name] = shm
        return SharedInstanceHandle(
            shm_name=shm.name,
            shape=(int(shape[0]), int(shape[1])),
            instance_name=name,
            communities=communities,
        )

    def __len__(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            _LOCAL_SEGMENTS.pop(shm.name, None)
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def __enter__(self) -> "SharedInstanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"SharedInstanceStore(segments={len(self._segments)})"
