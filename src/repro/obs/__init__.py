"""Run telemetry for the reproduction: spans, counters, JSONL events.

Instrumented library code uses the module-level helpers::

    from repro import obs

    with obs.span("large_radius/stitch", oracle=oracle, groups=n_groups):
        ...
    obs.incr("coalesce.candidates", cands.shape[0])
    obs.event("experiment.result", experiment="E4", passed=True)

All helpers are no-ops (a single ``None`` check) unless a
:class:`Recorder` is active::

    rec = obs.Recorder(meta={"command": "demo"})
    with obs.recording(rec):
        run_something()
    rec.dump_jsonl("out.jsonl")
    print(rec.render())

Alongside the post-hoc recorder sits the **live** side,
:mod:`repro.obs.metrics` — a process-wide :class:`MetricRegistry` of
counters, gauges, and log-bucketed histograms with the same
zero-overhead-when-off contract::

    from repro.obs import metrics

    with metrics.collecting(metrics.MetricRegistry()) as registry:
        run_serving()
    print(registry.expose_text())  # Prometheus text exposition

See :mod:`repro.obs.recorder` for the span data model,
:mod:`repro.obs.metrics` for the live registry,
:mod:`repro.obs.schema` for the JSONL format, and
``docs/observability.md`` for the full guide.
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricRegistry, MetricsSnapshotSink, collecting
from repro.obs.recorder import (
    NULL_SPAN,
    _NullSpan,
    Counters,
    Event,
    Recorder,
    Span,
    get_recorder,
    recording,
    set_recorder,
)
from repro.obs.schema import SpanNode, TelemetryRun, dump_jsonl, load_jsonl, run_from_recorder
from repro.obs.summary import phase_table, render_summary

__all__ = [
    "Counters",
    "Event",
    "Histogram",
    "MetricRegistry",
    "MetricsSnapshotSink",
    "NULL_SPAN",
    "Recorder",
    "Span",
    "SpanNode",
    "TelemetryRun",
    "collecting",
    "dump_jsonl",
    "enabled",
    "event",
    "gauge",
    "get_recorder",
    "incr",
    "load_jsonl",
    "metrics",
    "phase_table",
    "recording",
    "render_summary",
    "run_from_recorder",
    "set_recorder",
    "span",
]


def enabled() -> bool:
    """Whether a recorder is currently active."""
    return get_recorder() is not None


def span(name: str, *, oracle: Any = None, **attrs: Any) -> "Span | _NullSpan":
    """Open a telemetry span (the shared no-op singleton when disabled)."""
    recorder = get_recorder()
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, oracle=oracle, **attrs)


def incr(name: str, amount: int | float = 1) -> None:
    """Bump counter *name* on the active recorder (no-op when disabled)."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.counters.incr(name, amount)


def gauge(name: str, value: int | float) -> None:
    """Set gauge *name* on the active recorder (no-op when disabled)."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.counters.gauge(name, value)


def event(name: str, **attrs: Any) -> None:
    """Emit a structured event on the active recorder (no-op when disabled)."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.event(name, **attrs)
