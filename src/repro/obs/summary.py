"""Human-readable telemetry breakdowns.

Turns a :class:`~repro.obs.schema.TelemetryRun` into the ASCII report
behind ``python -m repro obs summarize out.jsonl``: a per-phase table
(spans aggregated by name), the probe-accounting check (exclusive span
deltas must sum to the root delta = the oracle's charged total), the
counter registry, and a sparkline of wall time over span starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import Histogram
from repro.obs.schema import TelemetryRun
from repro.utils.ascii_plot import sparkline
from repro.utils.tables import Table

__all__ = ["PhaseRow", "aggregate_phases", "metrics_table", "phase_table", "render_summary"]


@dataclass(frozen=True)
class PhaseRow:
    """Aggregate over all spans sharing one name.

    Attributes
    ----------
    name:
        The span name (e.g. ``"small_radius/zero_radius"``).
    count:
        Number of spans with that name.
    wall_s:
        Summed wall-clock duration.
    probes, probes_self, probe_rounds:
        Summed inclusive probes, exclusive probes, and round-clock growth.
    """

    name: str
    count: int
    wall_s: float
    probes: int
    probes_self: int
    probe_rounds: int


def aggregate_phases(run: TelemetryRun) -> list[PhaseRow]:
    """Group the run's spans by name, in first-appearance order."""
    order: list[str] = []
    acc: dict[str, list[float]] = {}
    for span in run.spans:
        if span.name not in acc:
            acc[span.name] = [0, 0.0, 0, 0, 0]
            order.append(span.name)
        bucket = acc[span.name]
        bucket[0] += 1
        bucket[1] += span.duration or 0.0
        bucket[2] += span.probes or 0
        bucket[3] += span.probes_self or 0
        bucket[4] += span.probe_rounds or 0
    return [
        PhaseRow(name=name, count=int(acc[name][0]), wall_s=acc[name][1],
                 probes=int(acc[name][2]), probes_self=int(acc[name][3]),
                 probe_rounds=int(acc[name][4]))
        for name in order
    ]


def phase_table(run: TelemetryRun) -> Table:
    """The per-phase cost table (probe shares are of the run's total)."""
    table = Table(
        title="Telemetry by phase (span name)",
        columns=["phase", "spans", "wall s", "probes", "excl", "rounds", "share"],
    )
    grand = max(run.probes_total, 1)
    for row in aggregate_phases(run):
        table.add(
            phase=row.name,
            spans=row.count,
            **{"wall s": round(row.wall_s, 4)},
            probes=row.probes,
            excl=row.probes_self,
            rounds=row.probe_rounds,
            share=f"{100 * row.probes_self / grand:.0f}%",
        )
    return table


def _counters_table(run: TelemetryRun) -> Table:
    table = Table(title="Counters", columns=["name", "value"])
    for name, value in run.counters.items():
        table.add(name=name, value=value)
    for name, value in run.gauges.items():
        table.add(name=f"{name} (gauge)", value=value)
    return table


def metrics_table(snapshot: dict[str, Any]) -> Table:
    """One table summarising a ``metrics`` snapshot line (the last one).

    Counters and gauges get their final values; histograms get count and
    p50/p95/p99 derived from the snapshot's own buckets, so the summary
    agrees exactly with any other reader of the same file.
    """
    table = Table(title="Live metrics (final snapshot)", columns=["name", "value"])
    for name, value in snapshot.get("counters", {}).items():
        table.add(name=name, value=value)
    for name, value in snapshot.get("gauges", {}).items():
        table.add(name=f"{name} (gauge)", value=value)
    for name, hist_snap in snapshot.get("histograms", {}).items():
        hist = Histogram.from_snapshot(name, hist_snap)
        quantiles = ", ".join(
            f"p{int(q * 100)}={hist.quantile(q):.6g}" for q in (0.50, 0.95, 0.99)
        )
        table.add(name=f"{name} (hist)", value=f"n={hist.count}, {quantiles}")
    return table


def render_summary(run: TelemetryRun) -> str:
    """Render the full ASCII summary of one telemetry run."""
    lines: list[str] = []
    if run.meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(run.meta.items()))
        lines.append(f"run meta: {pairs}")
        lines.append("")
    lines.append(phase_table(run).render())
    lines.append("")
    total = run.probes_total
    accounted = run.probes_accounted
    if total:
        exact = "exact" if accounted == total else "INCOMPLETE"
        lines.append(f"probe accounting: {accounted} / {total} charged probes attributed ({exact})")
    else:
        lines.append("probe accounting: no probe-metered spans recorded")
    if run.counters or run.gauges:
        lines.append("")
        lines.append(_counters_table(run).render())
    if run.events:
        lines.append("")
        lines.append(f"events: {len(run.events)}")
    if run.metrics:
        lines.append("")
        lines.append(metrics_table(run.metrics[-1]).render())
        lines.append(f"metric snapshots: {len(run.metrics)}")
    durations = [s.duration for s in run.spans if s.duration is not None]
    if len(durations) >= 2:
        lines.append("")
        lines.append(f"span wall time (start order): {sparkline(durations)}")
    return "\n".join(lines)
