"""Run telemetry: spans, counters, gauges, and structured events.

The paper's guarantees are resource claims — probing rounds, per-phase
probe budgets — so the observability layer treats **probe cost** as a
first-class signal next to wall-clock time:

* a :class:`Span` is one timed region of a run (a doubling guess, a
  Small Radius iteration, an engine execution).  Spans nest, carry
  free-form attributes, and — when opened with an oracle — snapshot
  :meth:`ProbeOracle.stats() <repro.billboard.oracle.ProbeOracle.stats>`
  on enter/exit so every span knows its probe delta (total and parallel
  rounds) in addition to its duration;
* :class:`Counters` is a flat registry of monotonic counters and
  last-write-wins gauges (probes charged, re-probes skipped, billboard
  posts, coalesce candidates, doubling iterations, …);
* :class:`Recorder` owns the span tree, the counters, and an ordered
  event log, and sinks them to JSONL via
  :func:`repro.obs.schema.dump_jsonl`.

Instrumented library code never talks to a ``Recorder`` directly; it
calls the module-level helpers in :mod:`repro.obs` (``obs.span``,
``obs.incr``, ``obs.event``), which are no-ops — a single ``None``
check — unless a recorder has been activated with
:func:`recording`/:func:`set_recorder`.  With no recorder active the
library takes the exact same code paths (no RNG use, no probing, no
allocation beyond the call itself), so telemetry-off runs are bitwise
identical to uninstrumented ones (``tests/test_obs.py`` pins this
against pre-instrumentation golden digests).

The recorder is deliberately not thread-safe: the population simulation
is single-threaded by design (see ``docs/performance.md``), and
:mod:`repro.parallel` fans out *processes*, which never share a
recorder.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator

__all__ = [
    "Counters",
    "Event",
    "NULL_SPAN",
    "Recorder",
    "Span",
    "get_recorder",
    "recording",
    "set_recorder",
]


class Span:
    """One timed (and probe-metered) region of a run.

    Spans are created by :meth:`Recorder.span` and used as context
    managers; entering pushes the span onto the recorder's stack (so
    spans opened inside become children), exiting pops it and freezes
    the timing and probe deltas.  All recorded spans stay reachable from
    :attr:`Recorder.spans` / :attr:`Recorder.roots`.
    """

    __slots__ = (
        "span_id",
        "name",
        "parent",
        "attrs",
        "children",
        "t_start",
        "t_end",
        "probes_enter",
        "probes_exit",
        "rounds_enter",
        "rounds_exit",
        "_recorder",
        "_oracle",
    )

    def __init__(
        self,
        recorder: "Recorder | None",
        span_id: int,
        name: str,
        parent: "Span | None",
        oracle: Any = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.attrs: dict[str, Any] = attrs or {}
        self.children: list[Span] = []
        self.t_start: float | None = None
        self.t_end: float | None = None
        self.probes_enter: int | None = None
        self.probes_exit: int | None = None
        self.rounds_enter: int | None = None
        self.rounds_exit: int | None = None
        self._recorder = recorder
        self._oracle = oracle

    # -- derived quantities -------------------------------------------------
    @property
    def duration(self) -> float | None:
        """Wall-clock seconds between enter and exit (``None`` while open)."""
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    @property
    def probes(self) -> int | None:
        """Charged probes during this span, children included."""
        if self.probes_enter is None or self.probes_exit is None:
            return None
        return self.probes_exit - self.probes_enter

    @property
    def probe_rounds(self) -> int | None:
        """Growth of the parallel-round clock (max per-player probes)."""
        if self.rounds_enter is None or self.rounds_exit is None:
            return None
        return self.rounds_exit - self.rounds_enter

    @property
    def probes_self(self) -> int | None:
        """Probes charged in this span but in none of its metered children.

        Summing ``probes_self`` over a whole tree reproduces the root's
        inclusive delta exactly — the invariant ``obs summarize``
        checks against ``ProbeOracle.stats().total``.
        """
        if self.probes is None:
            return None
        return self.probes - sum(c.probes or 0 for c in self.children)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes after entry (e.g. outcomes known only at exit)."""
        self.attrs.update(attrs)
        return self

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Span":
        self.t_start = time.perf_counter()
        if self._oracle is not None:
            stats = self._oracle.stats()
            self.probes_enter = stats.total
            self.rounds_enter = stats.rounds
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if self._oracle is not None:
            stats = self._oracle.stats()
            self.probes_exit = stats.total
            self.rounds_exit = stats.rounds
        self.t_end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._recorder is not None:
            self._recorder._pop(self)
        return False

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - convenience
        dur = f"{self.duration:.6f}s" if self.duration is not None else "open"
        probes = "-" if self.probes is None else str(self.probes)
        return f"Span({self.name!r}, {dur}, probes={probes}, children={len(self.children)})"


class _NullSpan:
    """Reusable do-nothing span (what ``obs.span`` returns when disabled)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: Singleton no-op span — shared so the disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class Counters:
    """Flat registry of monotonic counters and last-write-wins gauges."""

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}

    def incr(self, name: str, amount: int | float = 1) -> None:
        """Add *amount* (default 1) to counter *name*, creating it at 0."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: int | float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        self._gauges[name] = value

    def get(self, name: str, default: int | float = 0) -> int | float:
        """Current value of counter or gauge *name*."""
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, default)

    def as_dict(self) -> dict[str, dict[str, int | float]]:
        """``{"counters": {...}, "gauges": {...}}`` snapshot (sorted keys)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges


class Event:
    """One point-in-time structured event, attached to the enclosing span."""

    __slots__ = ("seq", "t", "name", "span_id", "attrs")

    def __init__(
        self, seq: int, t: float, name: str, span_id: int | None, attrs: dict[str, Any]
    ) -> None:
        self.seq = seq
        self.t = t
        self.name = name
        self.span_id = span_id
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"Event({self.seq}, {self.name!r}, span={self.span_id})"


class Recorder:
    """In-memory sink for one run's spans, counters, and events.

    Usage::

        rec = Recorder(meta={"command": "demo"})
        with recording(rec):
            ...  # instrumented library code
        rec.dump_jsonl("out.jsonl")
    """

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        self.meta: dict[str, Any] = dict(meta or {})
        self.spans: list[Span] = []  # every recorded span, in start order
        self.roots: list[Span] = []
        self.counters = Counters()
        self.events: list[Event] = []
        self._stack: list[Span] = []

    # -- spans --------------------------------------------------------------
    def span(self, name: str, *, oracle: Any = None, **attrs: Any) -> Span:
        """Create a child span of the currently open span (use with ``with``)."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, len(self.spans), name, parent, oracle=oracle, attrs=attrs or None)
        self.spans.append(sp)
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        return sp

    def _pop(self, span: Span) -> None:
        # Tolerate exception-path unwinding closing spans out of order:
        # drop everything above (and including) the closing span.
        if span in self._stack:
            while self._stack:
                if self._stack.pop() is span:
                    break

    @property
    def current_span(self) -> Span | None:
        """Innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- counters / events --------------------------------------------------
    def incr(self, name: str, amount: int | float = 1) -> None:
        """Shortcut for ``recorder.counters.incr``."""
        self.counters.incr(name, amount)

    def gauge(self, name: str, value: int | float) -> None:
        """Shortcut for ``recorder.counters.gauge``."""
        self.counters.gauge(name, value)

    def event(self, name: str, **attrs: Any) -> Event:
        """Append a structured event, attached to the innermost open span."""
        span = self.current_span
        ev = Event(
            seq=len(self.events),
            t=time.perf_counter(),
            name=name,
            span_id=span.span_id if span is not None else None,
            attrs=attrs,
        )
        self.events.append(ev)
        return ev

    # -- sinks --------------------------------------------------------------
    def dump_jsonl(self, path: str | Path) -> None:
        """Write the run to *path* as JSONL (see :mod:`repro.obs.schema`)."""
        from repro.obs.schema import dump_jsonl

        dump_jsonl(self, path)

    def render(self) -> str:
        """Human-readable ASCII breakdown (see :mod:`repro.obs.summary`)."""
        from repro.obs.schema import run_from_recorder
        from repro.obs.summary import render_summary

        return render_summary(run_from_recorder(self))

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"Recorder(spans={len(self.spans)}, events={len(self.events)}, "
            f"counters={len(self.counters)})"
        )


# ---------------------------------------------------------------------------
# Active-recorder runtime: the zero-overhead-when-disabled switch.
# ---------------------------------------------------------------------------

_ACTIVE: Recorder | None = None


def get_recorder() -> Recorder | None:
    """The currently active recorder, or ``None`` when telemetry is off."""
    return _ACTIVE


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install *recorder* as the active sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Activate *recorder* for the duration of the ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
