"""Live serving metrics: counters, gauges, and log-bucketed histograms.

Where :mod:`repro.obs.recorder` is a *post-hoc* sink — one run, one span
tree, dumped after the fact — this module is the **live** side of the
observability layer: a process-wide :class:`MetricRegistry` the serving
runtime updates request by request, readable at any instant while a
``repro loadgen`` run (or a future sharded deployment) is in flight.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonic totals (requests admitted, probes
  issued, degraded admissions);
* :class:`Gauge` — last-write-wins levels (active sessions, current
  anytime phase);
* :class:`Histogram` — log-bucketed distributions (request latency,
  wavefront size).  Bucket boundaries are **fixed module-level
  constants** — exact powers of two, identical in every process — so
  two histograms of the same metric merge *exactly* by adding bucket
  counts (:meth:`Histogram.merge`), the property a sharded service
  needs to aggregate per-worker histograms without approximation.

The registry surfaces three ways:

* :meth:`MetricRegistry.expose_text` — Prometheus text exposition
  (also ``repro obs export``);
* :class:`MetricsSnapshotSink` — periodic snapshots appended to a
  :mod:`repro.obs.schema` JSONL file (``"metrics"`` lines, schema v2);
* ``repro obs top`` — a refreshing terminal view of per-counter rates
  and histogram p50/p95/p99, rendered by :func:`render_frame`.

Like spans, metrics are **zero-overhead when off**: every module-level
helper (:func:`incr`, :func:`observe`, :func:`set_gauge`) is a single
``None`` check on the active registry, call sites pass literal metric
names (lint rule RPL011 rejects eagerly built labels), and enabling
metrics never touches RNG or probing — serve runs are bitwise identical
with metrics on or off (``tests/test_obs_metrics.py`` pins both).

Deliberately stdlib-only and, like the recorder, not thread-safe: one
registry belongs to one process, and cross-process aggregation goes
through snapshot files plus :meth:`MetricRegistry.merge`.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricRegistry",
    "MetricsSnapshotSink",
    "SIZE_BUCKETS",
    "collecting",
    "enabled",
    "get_registry",
    "incr",
    "observe",
    "render_frame",
    "set_gauge",
    "set_registry",
]

#: Latency bucket upper bounds in **seconds**: exact powers of two from
#: ~1 µs to 32 s.  Powers of two are exact binary floats, so boundaries
#: survive JSON round-trips bit for bit and merges stay exact.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(2.0**e for e in range(-20, 6))

#: Size/occupancy bucket upper bounds: powers of two from 1 to 2²⁰.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2**e) for e in range(21))

#: Prometheus metric names allow ``[a-zA-Z0-9_:]``; everything else
#: (the registry's dotted names) maps to ``_``.
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Registry name -> Prometheus exposition name (``repro_`` prefix)."""
    return "repro_" + _PROM_SANITIZE.sub("_", name)


class Counter:
    """One monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def incr(self, amount: int | float = 1) -> None:
        """Add *amount* (default 1); counters only ever grow."""
        self.value += amount


class Gauge:
    """One last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        """Overwrite the gauge with *value*."""
        self.value = value


class Histogram:
    """One log-bucketed distribution with fixed boundaries.

    ``bounds`` are cumulative-style upper bounds (a value lands in the
    first bucket whose bound is ``>= value``); one extra overflow bucket
    catches everything above ``bounds[-1]``.  Because boundaries are
    fixed per metric, histograms of the same metric from different
    processes merge exactly: bucket counts, observation count, and sum
    all add.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS_S) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be non-empty and ascending, got {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        """Add *other*'s buckets into this histogram (exact).

        Both sides must use identical boundaries — the whole point of
        fixing them module-wide.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r}: {len(self.bounds)} vs {other.name!r}: {len(other.bounds)})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``) from the buckets.

        Classic histogram estimation: find the bucket where the
        cumulative count crosses ``q * count`` and interpolate linearly
        inside it (the first bucket's lower edge is 0; the overflow
        bucket reports the highest finite boundary).  Deterministic
        given the bucket counts, so any two views of the same buckets —
        live registry, JSONL snapshot, merged shards — report the same
        percentiles.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cumulative + c >= target:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i]
                fraction = (target - cumulative) / c
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += c
        return self.bounds[-1]  # pragma: no cover - q=1 exits in the loop

    def to_snapshot(self) -> dict[str, Any]:
        """JSON-able form (bounds included so files are self-describing)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_snapshot(cls, name: str, snap: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_snapshot` output."""
        hist = cls(name, tuple(float(b) for b in snap["bounds"]))
        counts = [int(c) for c in snap["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram {name!r} snapshot has {len(counts)} buckets, "
                f"expected {len(hist.counts)}"
            )
        hist.counts = counts
        hist.count = int(snap["count"])
        hist.sum = float(snap["sum"])
        return hist


class MetricRegistry:
    """One process's live metrics: named counters, gauges, histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration / access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter *name*, created at 0 on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge *name*, created at 0 on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        """The histogram *name*; ``bounds`` bind on first use only.

        Re-registering with different boundaries is an error — fixed
        boundaries are the exact-merge contract.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, LATENCY_BUCKETS_S if bounds is None else bounds
            )
        elif bounds is not None and tuple(bounds) != h.bounds:
            raise ValueError(f"histogram {name!r} already registered with different bounds")
        return h

    # -- recording shortcuts -----------------------------------------------
    def incr(self, name: str, amount: int | float = 1) -> None:
        """Bump counter *name* by *amount*."""
        self.counter(name).incr(amount)

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
        """Record *value* into histogram *name*."""
        self.histogram(name, bounds).observe(value)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._counters or name in self._gauges or name in self._histograms

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "MetricRegistry") -> None:
        """Fold *other* into this registry (sharded-worker aggregation).

        Counters and histogram buckets add exactly; gauges take
        *other*'s value (last write wins, matching single-process
        semantics when merging in worker order).
        """
        for name, counter in other._counters.items():
            self.counter(name).incr(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other._histograms.items():
            self.histogram(name, hist.bounds).merge(hist)

    # -- sinks ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able point-in-time state (sorted names, self-describing)."""
        return {
            "counters": {n: self._counters[n].value for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
            "histograms": {
                n: self._histograms[n].to_snapshot() for n in sorted(self._histograms)
            },
        }

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "MetricRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict (JSONL line)."""
        registry = cls()
        for name, value in snap.get("counters", {}).items():
            registry.counter(name).incr(value)
        for name, value in snap.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, hist_snap in snap.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_snapshot(name, hist_snap)
        return registry

    def expose_text(self) -> str:
        """Prometheus text exposition of the whole registry.

        Counters keep their registry spelling (name your totals
        ``*_total``); histogram buckets are cumulative with the
        conventional ``le`` label and ``+Inf`` terminator.
        """
        lines: list[str] = []
        for name in sorted(self._counters):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {self._counters[name].value}")
        for name in sorted(self._gauges):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {self._gauges[name].value}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{bound!r}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{prom}_sum {hist.sum!r}")
            lines.append(f"{prom}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return (
            f"MetricRegistry(counters={len(self._counters)}, gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


class MetricsSnapshotSink:
    """Periodic registry snapshots appended to a telemetry JSONL file.

    The sink owns the file: opening writes the schema-v2 ``meta`` line,
    every :meth:`write` appends one ``"metrics"`` line (monotone ``seq``,
    ``perf_counter`` timestamp), and :meth:`maybe_write` rate-limits to
    ``interval_s``.  The result is a valid :func:`repro.obs.schema.load_jsonl`
    file whose snapshots ``repro obs top`` can tail and ``repro obs
    export`` can render as a Prometheus exposition.
    """

    def __init__(
        self,
        path: str | Path,
        registry: MetricRegistry,
        *,
        interval_s: float = 1.0,
        meta: dict[str, Any] | None = None,
    ) -> None:
        from repro.obs.schema import SCHEMA_VERSION, dumps_line

        if interval_s < 0:
            raise ValueError(f"interval_s must be non-negative, got {interval_s}")
        self.path = Path(path)
        self.registry = registry
        self.interval_s = interval_s
        self.seq = 0
        self._last_write: float | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._fh.write(
            dumps_line(
                {
                    "type": "meta",
                    "version": SCHEMA_VERSION,
                    "tool": "repro.obs",
                    "meta": dict(meta or {}),
                }
            )
        )
        self._fh.flush()

    def maybe_write(self) -> bool:
        """Append a snapshot if ``interval_s`` elapsed; returns whether it did."""
        now = time.perf_counter()
        if self._last_write is not None and now - self._last_write < self.interval_s:
            return False
        self.write()
        return True

    def write(self) -> None:
        """Append one snapshot line unconditionally."""
        from repro.obs.schema import dumps_line

        if self._fh is None:
            raise RuntimeError(f"metrics sink {self.path} is closed")
        line = {
            "type": "metrics",
            "seq": self.seq,
            "t": time.perf_counter(),
            **self.registry.snapshot(),
        }
        self._fh.write(dumps_line(line))
        self._fh.flush()
        self.seq += 1
        self._last_write = time.perf_counter()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MetricsSnapshotSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Active-registry runtime: the zero-overhead-when-disabled switch.
# ---------------------------------------------------------------------------

_ACTIVE: MetricRegistry | None = None


def get_registry() -> MetricRegistry | None:
    """The currently active registry, or ``None`` when metrics are off."""
    return _ACTIVE


def set_registry(registry: MetricRegistry | None) -> MetricRegistry | None:
    """Install *registry* as the live sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def enabled() -> bool:
    """Whether a metric registry is currently active."""
    return _ACTIVE is not None


@contextmanager
def collecting(registry: MetricRegistry) -> Iterator[MetricRegistry]:
    """Activate *registry* for the duration of the ``with`` block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def incr(name: str, amount: int | float = 1) -> None:
    """Bump counter *name* on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.incr(name, amount)


def set_gauge(name: str, value: int | float) -> None:
    """Set gauge *name* on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value)


def observe(name: str, value: float, bounds: tuple[float, ...] | None = None) -> None:
    """Record *value* into histogram *name* (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, bounds)


# ---------------------------------------------------------------------------
# `repro obs top` frame rendering (pure string formatting, tested offline).
# ---------------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    """Human scale for latency cells (µs/ms/s)."""
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def render_frame(
    current: dict[str, Any], previous: dict[str, Any] | None = None
) -> str:
    """Render one ``obs top`` frame from snapshot line(s).

    *current* (and optionally *previous*, for rates) are ``"metrics"``
    JSONL lines as parsed by :func:`repro.obs.schema.load_jsonl`.
    Counter rates are deltas over the snapshot interval; histogram rows
    report count, p50/p95/p99 from the buckets, and the mean.
    """
    lines: list[str] = []
    t_now = float(current.get("t", 0.0))
    header = f"metrics snapshot #{current.get('seq', '?')} @ t={t_now:.2f}s"
    dt: float | None = None
    if previous is not None:
        dt = t_now - float(previous.get("t", 0.0))
        header += f"  (rates over {dt:.2f}s)"
    lines.append(header)

    counters: dict[str, int | float] = current.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'total':>14} {'rate/s':>12}")
        prev_counters: dict[str, int | float] = (previous or {}).get("counters", {})
        for name in sorted(counters):
            total = counters[name]
            if dt is not None and dt > 0:
                rate = f"{(total - prev_counters.get(name, 0)) / dt:,.1f}"
            else:
                rate = "-"
            lines.append(f"{name:<40} {total:>14,} {rate:>12}")

    gauges: dict[str, int | float] = current.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<40} {'value':>14}")
        for name in sorted(gauges):
            lines.append(f"{name:<40} {gauges[name]:>14,}")

    histograms: dict[str, dict[str, Any]] = current.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<40} {'count':>10} {'p50':>10} {'p95':>10} {'p99':>10} {'mean':>10}"
        )
        for name in sorted(histograms):
            hist = Histogram.from_snapshot(name, histograms[name])
            if hist.count:
                mean = hist.sum / hist.count
                cells = [hist.quantile(0.50), hist.quantile(0.95), hist.quantile(0.99), mean]
                if name.endswith("_seconds"):
                    rendered = [f"{_fmt_seconds(c):>10}" for c in cells]
                else:
                    rendered = [f"{c:>10,.1f}" for c in cells]
            else:
                rendered = [f"{'-':>10}"] * 4
            lines.append(f"{name:<40} {hist.count:>10,} " + " ".join(rendered))
    return "\n".join(lines)
