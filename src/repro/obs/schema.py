"""The machine-readable telemetry format: JSONL with a stable schema.

One telemetry file is a sequence of JSON objects, one per line, in this
order:

1. exactly one ``meta`` line (always first)::

       {"type": "meta", "version": 1, "tool": "repro.obs", "meta": {...}}

2. zero or more ``span`` lines, in span start order (ids are dense,
   parents always precede children)::

       {"type": "span", "id": 3, "parent": 0, "name": "unknown_d/guess",
        "t_start": 0.0123, "t_end": 0.0456, "wall_s": 0.0333,
        "probes": 2048, "probe_rounds": 16, "probes_self": 512,
        "attrs": {"D": 4}}

   ``probes``/``probe_rounds``/``probes_self`` are ``null`` for spans
   recorded without an oracle; times come from ``perf_counter`` and are
   only meaningful relative to each other within one file;

3. zero or more ``event`` lines, in emission order::

       {"type": "event", "seq": 0, "t": 0.02, "name": "experiment.result",
        "span": 3, "attrs": {"passed": true}}

4. zero or more ``counter`` / ``gauge`` lines (sorted by name)::

       {"type": "counter", "name": "oracle.probes_charged", "value": 4096}
       {"type": "gauge", "name": "engine.live_players", "value": 64}

5. *(schema v2)* zero or more ``metrics`` lines — periodic
   point-in-time snapshots of a live :class:`~repro.obs.metrics.MetricRegistry`
   written by :class:`~repro.obs.metrics.MetricsSnapshotSink`, in
   ``seq`` order::

       {"type": "metrics", "seq": 0, "t": 1.25,
        "counters": {"serve.requests_total": 4096},
        "gauges": {"serve.active_sessions": 64},
        "histograms": {"serve.request_latency_seconds":
            {"bounds": [...], "counts": [...], "count": 4096, "sum": 1.9}}}

   Histogram bounds are embedded so files are self-describing; bucket
   counts from snapshots of the same metric merge exactly
   (:meth:`~repro.obs.metrics.Histogram.merge`).

The schema version is bumped on any incompatible change;
:func:`load_jsonl` rejects files from a newer major version rather than
misreading them — v1 files (no ``metrics`` lines) still load under the
v2 reader.  Round-tripping is exact: Python's JSON float encoding is
``repr``-based, so ``dump_jsonl`` → ``load_jsonl`` reproduces the span
tree bit for bit (``tests/test_obs.py`` pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.recorder import Recorder, Span

__all__ = [
    "SCHEMA_VERSION",
    "SpanNode",
    "TelemetryRun",
    "dump_jsonl",
    "dumps_line",
    "load_jsonl",
    "run_from_recorder",
]

#: Current JSONL schema version (see module docstring).  v2 added the
#: ``metrics`` line kind (live-registry snapshots); v1 files still load.
SCHEMA_VERSION = 2


@dataclass
class SpanNode:
    """One span as represented in a telemetry file (or converted recorder)."""

    span_id: int
    parent_id: int | None
    name: str
    t_start: float | None
    t_end: float | None
    probes: int | None
    probe_rounds: int | None
    probes_self: int | None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float | None:
        """Wall-clock seconds (``None`` for spans never closed)."""
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    def walk(self) -> Iterator["SpanNode"]:
        """This node and all descendants, depth-first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TelemetryRun:
    """A parsed telemetry file: span tree + counters + events."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[SpanNode] = field(default_factory=list)  # id order
    roots: list[SpanNode] = field(default_factory=list)
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, int | float] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)  # seq order

    @property
    def probes_total(self) -> int:
        """The run's charged-probe total: summed top-most metered spans.

        A root recorded without an oracle (an experiment wrapper, say)
        has no probe delta of its own; descend until the first metered
        span on each path so unmetered ancestors don't hide the total.
        """
        total = 0
        stack = list(self.roots)
        while stack:
            node = stack.pop()
            if node.probes is not None:
                total += node.probes
            else:
                stack.extend(node.children)
        return total

    @property
    def probes_accounted(self) -> int:
        """Sum of exclusive (self) probe deltas across every span."""
        return sum(s.probes_self or 0 for s in self.spans)


def _span_line(span: Span) -> dict[str, Any]:
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent.span_id if span.parent is not None else None,
        "name": span.name,
        "t_start": span.t_start,
        "t_end": span.t_end,
        "wall_s": span.duration,
        "probes": span.probes,
        "probe_rounds": span.probe_rounds,
        "probes_self": span.probes_self,
        "attrs": span.attrs,
    }


def dump_jsonl(recorder: Recorder, path: str | Path) -> Path:
    """Serialise *recorder* to *path* (parents created); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines: list[dict[str, Any]] = [
        {"type": "meta", "version": SCHEMA_VERSION, "tool": "repro.obs", "meta": recorder.meta}
    ]
    for span in recorder.spans:
        lines.append(_span_line(span))
    for ev in recorder.events:
        lines.append(
            {"type": "event", "seq": ev.seq, "t": ev.t, "name": ev.name, "span": ev.span_id, "attrs": ev.attrs}
        )
    snapshot = recorder.counters.as_dict()
    for name, value in snapshot["counters"].items():
        lines.append({"type": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        lines.append({"type": "gauge", "name": name, "value": value})
    with path.open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(dumps_line(line))
    return path


def dumps_line(obj: dict[str, Any]) -> str:
    """One telemetry JSONL line (sorted keys, trailing newline)."""
    return json.dumps(obj, sort_keys=True, default=_jsonable) + "\n"


def _jsonable(value: Any) -> Any:
    """Fallback encoder: NumPy scalars and arrays become plain Python."""
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 1) == 0:
        return item()
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} to telemetry JSON")


def run_from_recorder(recorder: Recorder) -> TelemetryRun:
    """Convert an in-memory :class:`Recorder` to the file-level view."""
    run = TelemetryRun(meta=dict(recorder.meta))
    by_id: dict[int, SpanNode] = {}
    for span in recorder.spans:
        node = SpanNode(
            span_id=span.span_id,
            parent_id=span.parent.span_id if span.parent is not None else None,
            name=span.name,
            t_start=span.t_start,
            t_end=span.t_end,
            probes=span.probes,
            probe_rounds=span.probe_rounds,
            probes_self=span.probes_self,
            attrs=dict(span.attrs),
        )
        by_id[node.span_id] = node
        run.spans.append(node)
        if node.parent_id is None:
            run.roots.append(node)
        else:
            by_id[node.parent_id].children.append(node)
    snapshot = recorder.counters.as_dict()
    run.counters = snapshot["counters"]
    run.gauges = snapshot["gauges"]
    run.events = [
        {"seq": ev.seq, "t": ev.t, "name": ev.name, "span": ev.span_id, "attrs": dict(ev.attrs)}
        for ev in recorder.events
    ]
    return run


def load_jsonl(path: str | Path) -> TelemetryRun:
    """Parse a telemetry file back into a :class:`TelemetryRun` tree."""
    path = Path(path)
    run = TelemetryRun()
    by_id: dict[int, SpanNode] = {}
    saw_meta = False
    with path.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            kind = obj.get("type")
            if kind == "meta":
                version = obj.get("version")
                if not isinstance(version, int) or version > SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}:{lineno}: unsupported telemetry schema version {version!r} "
                        f"(this reader understands <= {SCHEMA_VERSION})"
                    )
                run.meta = obj.get("meta", {})
                saw_meta = True
            elif kind == "span":
                node = SpanNode(
                    span_id=obj["id"],
                    parent_id=obj.get("parent"),
                    name=obj["name"],
                    t_start=obj.get("t_start"),
                    t_end=obj.get("t_end"),
                    probes=obj.get("probes"),
                    probe_rounds=obj.get("probe_rounds"),
                    probes_self=obj.get("probes_self"),
                    attrs=obj.get("attrs", {}),
                )
                by_id[node.span_id] = node
                run.spans.append(node)
                if node.parent_id is None:
                    run.roots.append(node)
                elif node.parent_id in by_id:
                    by_id[node.parent_id].children.append(node)
                else:
                    raise ValueError(f"{path}:{lineno}: span {node.span_id} references unknown parent {node.parent_id}")
            elif kind == "event":
                run.events.append(
                    {"seq": obj["seq"], "t": obj.get("t"), "name": obj["name"], "span": obj.get("span"), "attrs": obj.get("attrs", {})}
                )
            elif kind == "counter":
                run.counters[obj["name"]] = obj["value"]
            elif kind == "gauge":
                run.gauges[obj["name"]] = obj["value"]
            elif kind == "metrics":
                run.metrics.append(
                    {
                        "seq": obj["seq"],
                        "t": obj.get("t"),
                        "counters": obj.get("counters", {}),
                        "gauges": obj.get("gauges", {}),
                        "histograms": obj.get("histograms", {}),
                    }
                )
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    if not saw_meta:
        raise ValueError(f"{path}: missing meta line — not a repro telemetry file")
    return run
