"""The paper's wildcard-aware distance ``d̃`` (Notation 3.2).

Vectors produced by Coalesce and consumed by Select live in
``{0, 1, ?}^m``; the "?" wildcard is stored as ``-1``
(:data:`repro.utils.validation.WILDCARD`).  For two such vectors,

    ``d̃(u, v)`` = number of coordinates where *both* u and v have non-"?"
    entries and those entries differ.

``d̃_I`` (the restriction to a coordinate set ``I``) is obtained by
slicing before calling these functions.  Coalesce additionally needs
``ball(v, D) = {u : d̃(v, u) <= D}`` over a vector multiset.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import WILDCARD, check_value_matrix

__all__ = [
    "tilde_dist",
    "tilde_dist_to_each",
    "tilde_pairwise",
    "tilde_ball",
    "ball_sizes",
    "wildcard_count",
]


def tilde_dist(u: np.ndarray, v: np.ndarray) -> int:
    """``d̃(u, v)``: differing coordinates where both entries are non-"?".

    >>> tilde_dist(np.asarray([0, 1, -1]), np.asarray([1, 1, 0]))
    1
    """
    u = np.asarray(u)
    v = np.asarray(v)
    if u.shape != v.shape or u.ndim != 1:
        raise ValueError(f"expected two equal-length vectors, got shapes {u.shape} and {v.shape}")
    both = (u != WILDCARD) & (v != WILDCARD)
    return int(np.count_nonzero(both & (u != v)))


def tilde_dist_to_each(v: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """``d̃`` from vector *v* to each row of *matrix* (vectorized)."""
    v = np.asarray(v)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or v.ndim != 1 or matrix.shape[1] != v.shape[0]:
        raise ValueError(f"shape mismatch: v {v.shape} vs matrix {matrix.shape}")
    both = (matrix != WILDCARD) & (v[None, :] != WILDCARD)
    return np.count_nonzero(both & (matrix != v[None, :]), axis=1)


def tilde_pairwise(matrix: np.ndarray) -> np.ndarray:
    """All-pairs ``d̃`` matrix of the rows of *matrix* over ``{0,1,?}``.

    Decomposes into products of indicator matrices: with ``A1 = [v==1]``
    and ``A0 = [v==0]``, the count of coordinates where row *i* is 1 and
    row *j* is 0 is ``(A1 @ A0.T)[i, j]``, so
    ``d̃ = A1 @ A0.T + A0 @ A1.T`` — two BLAS calls, wildcards excluded
    automatically because they are in neither indicator.
    """
    arr = check_value_matrix(matrix)
    a1 = (arr == 1).astype(np.float64)
    a0 = (arr == 0).astype(np.float64)
    d = a1 @ a0.T
    d += d.T
    out = np.rint(d).astype(np.int64)
    np.fill_diagonal(out, 0)
    return out


def tilde_ball(v: np.ndarray, matrix: np.ndarray, radius: int) -> np.ndarray:
    """Indices of rows of *matrix* with ``d̃(v, row) <= radius`` (Coalesce's ball)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return np.flatnonzero(tilde_dist_to_each(v, matrix) <= radius)


def ball_sizes(matrix: np.ndarray, radius: int) -> np.ndarray:
    """``|ball(v, radius)|`` for every row *v* of *matrix* (includes the row itself)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return np.count_nonzero(tilde_pairwise(matrix) <= radius, axis=1)


def wildcard_count(v: np.ndarray) -> int:
    """Number of "?" entries in *v* (Theorem 5.3 bounds this by ``5D/α``)."""
    return int(np.count_nonzero(np.asarray(v) == WILDCARD))
