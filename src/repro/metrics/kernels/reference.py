"""Pure-NumPy reference implementations of the dispatched kernels.

This backend is always importable — no compiler, no cffi — and its
outputs define correctness: the compiled backend and the hypothesis
property suite in ``tests/test_kernels.py`` pin every other
implementation bitwise to the functions here.

It is also not a strawman.  The two frontier kernels are cache-blocked:

* :func:`extract_bits` gathers bytes through one flat ``take`` per
  32768-probe block (a single flat index buffer beats NumPy's 2-D fancy
  indexing on scattered reads) and resolves bits with an 8-entry mask
  LUT instead of a per-element variable shift;
* :func:`diameter_words` / :func:`pairwise_hamming_words` keep the
  row-tiled XOR buffer of the original ``BitMatrix`` loops but only
  visit ``j >= start`` column bands — the upper triangle plus the
  in-tile square — which halves the streamed bytes on average.

All index arrays are ``np.intp``, packed rows are big-endian
``np.packbits`` bytes, and word views are zero-padded ``uint64`` rows
exactly as produced by ``repro.metrics.bitpack._as_words``.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import bitpack

__all__ = [
    "extract_bits",
    "fused_extract_post",
    "scatter_values",
    "diameter_words",
    "pairwise_hamming_words",
    "scan_column",
    "pair_agreements",
]

#: Probes per gather block.  Large enough to amortise the per-block
#: Python overhead, small enough that the three per-block index/word
#: buffers (~3 × 256 KiB at intp width) stay cache-resident.
_GATHER_BLOCK = 32768

#: ``_BIT_MASK[j % 8]`` selects column ``j``'s bit inside its byte
#: (big-endian ``np.packbits`` order) — a tiny LUT gather is cheaper
#: than a per-element variable shift.
_BIT_MASK = (1 << (7 - np.arange(8))).astype(np.uint8)

#: Row-tile height of the blocked pairwise/diameter kernels; matches the
#: measured sweet spot of ``bitpack._PAIRWISE_TILE`` (see
#: docs/performance.md).
_TILE = 32


def extract_bits(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``matrix[rows, cols]`` (``int8``) read from big-endian packed rows.

    Bit-identical to fancy-indexing the dense matrix; *rows* and *cols*
    broadcast against each other like NumPy advanced indexing.
    """
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape:
        rows, cols = np.broadcast_arrays(rows, cols)
    shape = rows.shape
    rows = np.ascontiguousarray(rows).reshape(-1)
    cols = np.ascontiguousarray(cols).reshape(-1)
    pw = packed.shape[1]
    flat = np.ascontiguousarray(packed, dtype=np.uint8).reshape(-1)
    k = rows.size
    out = np.empty(k, dtype=np.int8)
    for start in range(0, k, _GATHER_BLOCK):
        sl = slice(start, min(start + _GATHER_BLOCK, k))
        idx = rows[sl] * pw
        idx += cols[sl] >> 3
        words = flat.take(idx)
        np.bitwise_and(words, _BIT_MASK.take(cols[sl] & 7), out=words)
        out[sl] = words != 0
    return out.reshape(shape)


def fused_extract_post(
    packed: np.ndarray,
    sink: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """Extract ``matrix[rows, cols]`` and scatter it into *sink* in one batch.

    *sink* is the billboard's dense ``(n, m)`` ``int8`` grade matrix; the
    scatter is NumPy fancy-put semantics (later duplicates win).  When
    *counts* (per-player ``int64`` accounting counters) is given, each
    listed row is charged one probe — the oracle's all-charged unbudgeted
    fast path folds its bincount in here.  Returns the extracted ``int8``
    values, exactly like :func:`extract_bits`.
    """
    rows = np.ascontiguousarray(rows, dtype=np.intp)
    cols = np.ascontiguousarray(cols, dtype=np.intp)
    values = extract_bits(packed, rows, cols)
    scatter_values(sink, rows, cols, values)
    if counts is not None:
        counts += np.bincount(rows, minlength=counts.size)
    return values


def scatter_values(
    sink: np.ndarray, rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> None:
    """``sink[rows, cols] = values`` through one flat index buffer.

    A single flattened fancy-put walks one index array instead of two,
    which measures ~2× faster than the 2-D form on scattered batches.
    Falls back to the 2-D assignment when *sink* is not C-contiguous.
    """
    if not sink.flags.c_contiguous:
        sink[rows, cols] = values
        return
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    idx = rows * sink.shape[1]
    idx += cols
    sink.reshape(-1)[idx] = values


def diameter_words(words: np.ndarray) -> int:
    """Max pairwise Hamming distance over zero-padded ``uint64`` word rows.

    Row-tiled XOR + popcount visiting only the ``j >= start`` band of
    each tile (the upper triangle plus the in-tile square, whose
    redundant ``j < i`` entries cannot change a maximum).
    """
    n, w = words.shape
    if n <= 1:
        return 0
    tile = min(_TILE, n)
    xbuf = np.empty((tile, n, w), dtype=np.uint64)
    best = 0
    for start in range(0, n - 1, tile):
        stop = min(start + tile, n)
        t = stop - start
        band = n - start
        np.bitwise_xor(
            words[start:stop, None, :], words[None, start:, :], out=xbuf[:t, :band]
        )
        best = max(best, int(bitpack.popcount_sum(xbuf[:t, :band]).max()))
    return best


def pairwise_hamming_words(words: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` ``int64`` Hamming matrix from ``uint64`` word rows.

    Computes each tile's ``j >= start`` band once and mirrors it into
    the lower triangle (the in-tile square is symmetric, so the mirror
    rewrites it with identical values).
    """
    n, w = words.shape
    out = np.zeros((n, n), dtype=np.int64)
    if n <= 1:
        return out
    tile = min(_TILE, n)
    xbuf = np.empty((tile, n, w), dtype=np.uint64)
    for start in range(0, n, tile):
        stop = min(start + tile, n)
        t = stop - start
        band = n - start
        np.bitwise_xor(
            words[start:stop, None, :], words[None, start:, :], out=xbuf[:t, :band]
        )
        d = bitpack.popcount_sum(xbuf[:t, :band])
        out[start:stop, start:] = d
        out[start:, start:stop] = d.T
    return out


def scan_column(
    col: np.ndarray,
    value: int,
    wildcard: int,
    bound: int,
    disagreements: np.ndarray,
    alive: np.ndarray,
) -> int:
    """Select's fused per-probe candidate scan (in place).

    Bumps ``disagreements[i]`` for every candidate whose non-wildcard
    entry *col[i]* contradicts the probed *value*, then clears ``alive``
    for candidates whose count crossed *bound*.  Returns how many
    candidates were eliminated by this probe.
    """
    hit = col != wildcard
    hit &= col != value
    disagreements += hit
    over = alive & (disagreements > bound)
    eliminated = int(np.count_nonzero(over))
    if eliminated:
        alive &= ~over
    return eliminated


def pair_agreements(
    col_a: np.ndarray, col_b: np.ndarray, values: np.ndarray
) -> tuple[int, int]:
    """RSelect's per-match tally: coordinates agreeing with a, then b.

    First-match-wins order: a coordinate that agrees with candidate *a*
    is never also credited to *b*, matching the scalar
    ``if va == v ... elif vb == v`` loop it replaces.
    """
    a_hit = col_a == values
    agree_a = int(np.count_nonzero(a_hit))
    b_hit = ~a_hit
    b_hit &= col_b == values
    return agree_a, int(np.count_nonzero(b_hit))
