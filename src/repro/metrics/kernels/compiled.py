"""cffi wrappers around the compiled kernel extension.

Importing this module only succeeds when the prebuilt
``repro.metrics.kernels._ckernels`` extension is importable and the
platform is 64-bit (index arrays cross the FFI boundary as ``int64_t``,
which must be ``np.intp``).  The dispatch layer in
``repro.metrics.kernels`` treats any :class:`ImportError` here as "use
the NumPy reference backend" — exactly how ``bitpack`` falls back from
``np.bitwise_count`` to the 16-bit LUT.

Every wrapper normalises its operands (dtype, C-contiguity) before
handing raw buffers to C; on the hot paths the callers already pass
conforming arrays, so the ``ascontiguousarray`` calls are no-op views.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.kernels import _ckernels  # built by repro.metrics.kernels.build

__all__ = [
    "extract_bits",
    "fused_extract_post",
    "scatter_values",
    "diameter_words",
    "pairwise_hamming_words",
    "scan_column",
    "pair_agreements",
]

if np.dtype(np.intp).itemsize != 8:  # pragma: no cover - 32-bit platforms only
    raise ImportError(
        "the compiled kernel backend requires a 64-bit platform "
        "(np.intp must be int64_t)"
    )

_ffi = _ckernels.ffi
_lib = _ckernels.lib


def _u8(arr: np.ndarray) -> object:
    arr = np.ascontiguousarray(arr, dtype=np.uint8)
    return _ffi.from_buffer("uint8_t[]", arr, require_writable=False)


def _i64(arr: np.ndarray) -> object:
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    return _ffi.from_buffer("int64_t[]", arr, require_writable=False)


def extract_bits(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``matrix[rows, cols]`` (``int8``) — compiled scatter-gather loop."""
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.shape != cols.shape:
        rows, cols = np.broadcast_arrays(rows, cols)
    shape = rows.shape
    rows = np.ascontiguousarray(rows).reshape(-1)
    cols = np.ascontiguousarray(cols).reshape(-1)
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    out = np.empty(rows.size, dtype=np.int8)
    _lib.repro_extract_bits(
        _u8(packed),
        packed.shape[1],
        _i64(rows),
        _i64(cols),
        rows.size,
        _ffi.from_buffer("int8_t[]", out, require_writable=True),
    )
    return out.reshape(shape)


def fused_extract_post(
    packed: np.ndarray,
    sink: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """Extract + scatter into the billboard sink in one compiled pass.

    *counts*, when given, receives one charged probe per listed row —
    the oracle's unbudgeted accounting bincount, folded into the loop.
    """
    rows = np.ascontiguousarray(rows, dtype=np.intp)
    cols = np.ascontiguousarray(cols, dtype=np.intp)
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if sink.dtype != np.int8 or not sink.flags.c_contiguous:
        raise ValueError("sink must be a C-contiguous int8 matrix")
    if counts is None:
        counts_ptr = _ffi.NULL
    else:
        if counts.dtype != np.int64 or not counts.flags.c_contiguous:
            raise ValueError("counts must be a C-contiguous int64 vector")
        counts_ptr = _ffi.from_buffer("int64_t[]", counts, require_writable=True)
    out = np.empty(rows.size, dtype=np.int8)
    _lib.repro_fused_extract_post(
        _u8(packed),
        packed.shape[1],
        _ffi.from_buffer("int8_t[]", sink, require_writable=True),
        sink.shape[1],
        _i64(rows),
        _i64(cols),
        rows.size,
        _ffi.from_buffer("int8_t[]", out, require_writable=True),
        counts_ptr,
    )
    return out


def scatter_values(
    sink: np.ndarray, rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> None:
    """``sink[rows, cols] = values`` (later duplicates win), compiled."""
    if sink.dtype != np.int8 or not sink.flags.c_contiguous:
        sink[rows, cols] = values
        return
    rows = np.ascontiguousarray(rows, dtype=np.intp)
    cols = np.ascontiguousarray(cols, dtype=np.intp)
    values = np.ascontiguousarray(values, dtype=np.int8)
    _lib.repro_scatter_values(
        _ffi.from_buffer("int8_t[]", sink, require_writable=True),
        sink.shape[1],
        _i64(rows),
        _i64(cols),
        _ffi.from_buffer("int8_t[]", values, require_writable=False),
        rows.size,
    )


def diameter_words(words: np.ndarray) -> int:
    """Max pairwise Hamming distance over ``uint64`` word rows, compiled."""
    n, w = words.shape
    if n <= 1:
        return 0
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return int(
        _lib.repro_diameter_words(
            _ffi.from_buffer("uint64_t[]", words, require_writable=False), n, w
        )
    )


def pairwise_hamming_words(words: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` ``int64`` Hamming matrix, compiled upper triangle."""
    n, w = words.shape
    out = np.zeros((n, n), dtype=np.int64)
    if n <= 1:
        return out
    words = np.ascontiguousarray(words, dtype=np.uint64)
    _lib.repro_pairwise_hamming_words(
        _ffi.from_buffer("uint64_t[]", words, require_writable=False),
        n,
        w,
        _ffi.from_buffer("int64_t[]", out, require_writable=True),
    )
    return out


def scan_column(
    col: np.ndarray,
    value: int,
    wildcard: int,
    bound: int,
    disagreements: np.ndarray,
    alive: np.ndarray,
) -> int:
    """Select's fused candidate scan (in place), compiled."""
    if (
        col.dtype != np.int16
        or not col.flags.c_contiguous
        or disagreements.dtype != np.int64
        or not disagreements.flags.c_contiguous
        or alive.dtype != np.bool_
        or not alive.flags.c_contiguous
        or not (-(2**15) <= int(value) < 2**15)
        or not (-(2**15) <= int(wildcard) < 2**15)
    ):
        from repro.metrics.kernels import reference

        return reference.scan_column(col, value, wildcard, bound, disagreements, alive)
    return int(
        _lib.repro_scan_column(
            _ffi.from_buffer("int16_t[]", col, require_writable=False),
            col.size,
            int(value),
            int(wildcard),
            int(bound),
            _ffi.from_buffer("int64_t[]", disagreements, require_writable=True),
            _ffi.from_buffer("uint8_t[]", alive.view(np.uint8), require_writable=True),
        )
    )


def pair_agreements(
    col_a: np.ndarray, col_b: np.ndarray, values: np.ndarray
) -> tuple[int, int]:
    """RSelect's first-match-wins agreement tally, compiled.

    Delegates to the NumPy reference unless all operands are already
    ``int16`` — a silent narrowing cast could alias distinct values.
    """
    if col_a.dtype != np.int16 or col_b.dtype != np.int16 or values.dtype != np.int16:
        from repro.metrics.kernels import reference

        return reference.pair_agreements(col_a, col_b, values)
    col_a = np.ascontiguousarray(col_a)
    col_b = np.ascontiguousarray(col_b)
    values = np.ascontiguousarray(values)
    out = np.zeros(2, dtype=np.int64)
    _lib.repro_pair_agreements(
        _ffi.from_buffer("int16_t[]", col_a, require_writable=False),
        _ffi.from_buffer("int16_t[]", col_b, require_writable=False),
        _ffi.from_buffer("int16_t[]", values, require_writable=False),
        col_a.size,
        _ffi.from_buffer("int64_t[]", out, require_writable=True),
    )
    return int(out[0]), int(out[1])
