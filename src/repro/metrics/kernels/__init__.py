"""Kernel dispatch: one namespace, two interchangeable backends.

The raw-speed frontier of the packed substrate — scattered single-bit
extraction, the n² diameter loop, and the per-probe candidate scans —
lives behind this package.  Two backends implement the same seven
kernels:

* :mod:`repro.metrics.kernels.reference` — pure NumPy, cache-blocked,
  always importable.  Its outputs define correctness.
* :mod:`repro.metrics.kernels.compiled` — a cffi extension
  (``_ckernels``) built from :mod:`repro.metrics.kernels._csrc` by
  ``pip install -e .[compiled]`` or
  ``python -m repro.metrics.kernels.build``; pinned bitwise to the
  reference by ``tests/test_kernels.py`` and the substrate-equivalence
  suite.

Selection happens **once at import time**, the way ``bitpack`` picks
between ``np.bitwise_count`` and the 16-bit LUT:

1. ``REPRO_FORCE_PY_KERNELS=1`` → NumPy reference (the CI forced-
   fallback leg);
2. ``REPRO_KERNEL_BACKEND=numpy`` → NumPy reference;
3. ``REPRO_KERNEL_BACKEND=compiled`` → compiled, building the extension
   in place if needed; *hard error* if that fails (CI legs must never
   silently measure the wrong backend);
4. default → compiled if the extension imports, else NumPy with the
   failure recorded in :func:`backend_reason`.

For in-process A/B (benchmarks, equivalence tests) the
:func:`numpy_kernels` context manager forces the reference backend on
the current thread, mirroring ``bitpack.lut_popcount``.  Introspection
— which backend, why, and the per-kernel dispatch table — is exposed
via :func:`kernel_info` and surfaced by ``repro kernels`` and
``repro.api``.
"""

from __future__ import annotations

import os
import threading
import types
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.metrics.kernels import reference

__all__ = [
    "KERNEL_NAMES",
    "extract_bits",
    "fused_extract_post",
    "scatter_values",
    "diameter_words",
    "pairwise_hamming_words",
    "scan_column",
    "pair_agreements",
    "kernel_backend",
    "backend_reason",
    "dispatch_table",
    "kernel_info",
    "numpy_kernels",
    "compiled_kernels_enabled",
]

#: Every kernel routed through this dispatch layer, in docs order.
KERNEL_NAMES = (
    "extract_bits",
    "fused_extract_post",
    "scatter_values",
    "diameter_words",
    "pairwise_hamming_words",
    "scan_column",
    "pair_agreements",
)

_state = threading.local()


def _select_backend() -> tuple[types.ModuleType, str, str]:
    """Pick the active backend module once, returning (module, name, why)."""
    if os.environ.get("REPRO_FORCE_PY_KERNELS") == "1":
        return reference, "numpy", "forced by REPRO_FORCE_PY_KERNELS=1"
    requested = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
    if requested not in ("", "numpy", "compiled"):
        raise RuntimeError(
            f"REPRO_KERNEL_BACKEND={requested!r} is not one of 'numpy', 'compiled'"
        )
    if requested == "numpy":
        return reference, "numpy", "forced by REPRO_KERNEL_BACKEND=numpy"
    try:
        from repro.metrics.kernels import compiled

        return compiled, "compiled", "compiled extension (_ckernels) importable"
    except ImportError as exc:
        if requested != "compiled":
            return reference, "numpy", f"compiled extension unavailable: {exc}"
        import_error = exc
    # REPRO_KERNEL_BACKEND=compiled but no prebuilt extension: build now.
    try:
        from repro.metrics.kernels.build import build_inplace

        build_inplace()
        from repro.metrics.kernels import compiled

        return compiled, "compiled", "built in place (REPRO_KERNEL_BACKEND=compiled)"
    except (RuntimeError, ImportError) as exc:
        raise RuntimeError(
            "REPRO_KERNEL_BACKEND=compiled but the compiled backend is "
            f"unavailable (import: {import_error}; build: {exc})"
        ) from exc


_active, _BACKEND, _REASON = _select_backend()


def _impl() -> types.ModuleType:
    """The backend serving this thread (honours :func:`numpy_kernels`)."""
    if getattr(_state, "force_numpy", False):
        return reference
    return _active


# ----------------------------------------------------------------------
# introspection + A/B toggle
# ----------------------------------------------------------------------
def kernel_backend() -> str:
    """The backend serving this thread: ``"numpy"`` or ``"compiled"``."""
    if getattr(_state, "force_numpy", False):
        return "numpy"
    return _BACKEND


def backend_reason() -> str:
    """Why the import-time selection landed where it did."""
    if getattr(_state, "force_numpy", False):
        return "forced by numpy_kernels() on this thread"
    return _REASON


def compiled_kernels_enabled() -> bool:
    """Whether this thread currently dispatches to the compiled backend."""
    return kernel_backend() == "compiled"


def dispatch_table() -> dict[str, str]:
    """Per-kernel backend map, e.g. ``{"extract_bits": "compiled", ...}``.

    All kernels dispatch together today; the per-kernel shape is the
    stable introspection contract so a future mixed dispatch (one kernel
    compiled, another NumPy) needs no API change.
    """
    backend = kernel_backend()
    return {name: backend for name in KERNEL_NAMES}


def kernel_info() -> dict[str, Any]:
    """One JSON-ready report: backend, why, and the dispatch table.

    The payload behind ``repro kernels`` and the honesty metadata the
    benchmark records embed.
    """
    return {
        "backend": kernel_backend(),
        "reason": backend_reason(),
        "env": {
            "REPRO_KERNEL_BACKEND": os.environ.get("REPRO_KERNEL_BACKEND"),
            "REPRO_FORCE_PY_KERNELS": os.environ.get("REPRO_FORCE_PY_KERNELS"),
        },
        "kernels": dispatch_table(),
    }


@contextmanager
def numpy_kernels() -> Iterator[None]:
    """Force the NumPy reference backend within the block (thread-local).

    The kernel-layer twin of ``bitpack.lut_popcount``: benchmarks use it
    for in-process A/B and the equivalence tests use it to pin the
    compiled backend bitwise to the reference.
    """
    prev = getattr(_state, "force_numpy", False)
    _state.force_numpy = True
    try:
        yield
    finally:
        _state.force_numpy = prev


# ----------------------------------------------------------------------
# the dispatched kernels
# ----------------------------------------------------------------------
def extract_bits(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``matrix[rows, cols]`` (``int8``) read from big-endian packed rows."""
    return _impl().extract_bits(packed, rows, cols)  # type: ignore[no-any-return]


def fused_extract_post(
    packed: np.ndarray,
    sink: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """Extract ``matrix[rows, cols]``, scatter into *sink*, charge *counts*."""
    return _impl().fused_extract_post(packed, sink, rows, cols, counts)  # type: ignore[no-any-return]


def scatter_values(
    sink: np.ndarray, rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> None:
    """``sink[rows, cols] = values`` (later duplicates win)."""
    _impl().scatter_values(sink, rows, cols, values)


def diameter_words(words: np.ndarray) -> int:
    """Max pairwise Hamming distance over zero-padded ``uint64`` rows."""
    return int(_impl().diameter_words(words))


def pairwise_hamming_words(words: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` ``int64`` Hamming matrix from ``uint64`` rows."""
    return _impl().pairwise_hamming_words(words)  # type: ignore[no-any-return]


def scan_column(
    col: np.ndarray,
    value: int,
    wildcard: int,
    bound: int,
    disagreements: np.ndarray,
    alive: np.ndarray,
) -> int:
    """Fused Select candidate scan (in place); returns eliminations."""
    return int(_impl().scan_column(col, value, wildcard, bound, disagreements, alive))


def pair_agreements(
    col_a: np.ndarray, col_b: np.ndarray, values: np.ndarray
) -> tuple[int, int]:
    """RSelect's first-match-wins agreement tally ``(agree_a, agree_b)``."""
    agree_a, agree_b = _impl().pair_agreements(col_a, col_b, values)
    return int(agree_a), int(agree_b)
