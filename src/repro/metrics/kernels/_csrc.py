"""The C source of the compiled kernel backend (cffi API mode).

One translation unit, shared verbatim by :mod:`repro.metrics.kernels.build`
(which compiles it into ``repro.metrics.kernels._ckernels``) and kept
next to the dispatch layer so the reference and compiled implementations
are reviewed side by side.  Every function mirrors one kernel in
:mod:`repro.metrics.kernels.reference` bit for bit: same big-endian
``np.packbits`` word layout, same wildcard sentinel, same tie rules.

Index arrays arrive as ``int64_t`` (``np.intp`` on every 64-bit
platform; :mod:`repro.metrics.kernels.compiled` refuses to load
elsewhere), packed rows as ``uint8_t`` and their zero-padded word views
as ``uint64_t`` — padding bits are zero on both rows, so XOR/popcount
over padded words equals the logical Hamming distance exactly.
"""

from __future__ import annotations

__all__ = ["CDEF", "SOURCE"]

#: Declarations visible to cffi (and therefore to the Python wrappers).
CDEF = """
void repro_extract_bits(const uint8_t *packed, int64_t pw,
                        const int64_t *rows, const int64_t *cols,
                        int64_t k, int8_t *out);
void repro_fused_extract_post(const uint8_t *packed, int64_t pw,
                              int8_t *sink, int64_t m,
                              const int64_t *rows, const int64_t *cols,
                              int64_t k, int8_t *out, int64_t *counts);
void repro_scatter_values(int8_t *sink, int64_t m,
                          const int64_t *rows, const int64_t *cols,
                          const int8_t *vals, int64_t k);
int64_t repro_diameter_words(const uint64_t *words, int64_t n, int64_t w);
void repro_pairwise_hamming_words(const uint64_t *words, int64_t n,
                                  int64_t w, int64_t *out);
int64_t repro_scan_column(const int16_t *col, int64_t k, int64_t value,
                          int64_t wildcard, int64_t bound,
                          int64_t *disagreements, uint8_t *alive);
void repro_pair_agreements(const int16_t *col_a, const int16_t *col_b,
                           const int16_t *vals, int64_t k, int64_t *out);
"""

#: The implementation compiled behind the declarations above.
SOURCE = r"""
#include <stdint.h>

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_POPCOUNT64(x) __builtin_popcountll(x)
#else
static int repro_popcount64_slow(uint64_t x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int)((x * 0x0101010101010101ULL) >> 56);
}
#define REPRO_POPCOUNT64(x) repro_popcount64_slow(x)
#endif

/* matrix[rows[i], cols[i]] from big-endian np.packbits rows. */
void repro_extract_bits(const uint8_t *packed, int64_t pw,
                        const int64_t *rows, const int64_t *cols,
                        int64_t k, int8_t *out)
{
    int64_t i;
    for (i = 0; i < k; i++) {
        int64_t c = cols[i];
        uint8_t word = packed[rows[i] * pw + (c >> 3)];
        out[i] = (int8_t)((word >> (7 - (c & 7))) & 1u);
    }
}

/* One pass over the probe batch: read the packed bit, emit it, scatter
 * it into the billboard's dense int8 grade matrix, and (optionally,
 * counts != NULL) bump the per-player charged-probe counters.  The
 * fusion is the point — the word gather, the grade post, and the
 * accounting bincount share one loop, so the batch touches each
 * (row, col) pair exactly once. */
void repro_fused_extract_post(const uint8_t *packed, int64_t pw,
                              int8_t *sink, int64_t m,
                              const int64_t *rows, const int64_t *cols,
                              int64_t k, int8_t *out, int64_t *counts)
{
    int64_t i;
    for (i = 0; i < k; i++) {
        int64_t r = rows[i], c = cols[i];
        int8_t v = (int8_t)((packed[r * pw + (c >> 3)] >> (7 - (c & 7))) & 1u);
        out[i] = v;
        sink[r * m + c] = v;
        if (counts)
            counts[r] += 1;
    }
}

/* sink[rows[i], cols[i]] = vals[i]; later duplicates win, exactly like
 * NumPy fancy-index assignment. */
void repro_scatter_values(int8_t *sink, int64_t m,
                          const int64_t *rows, const int64_t *cols,
                          const int8_t *vals, int64_t k)
{
    int64_t i;
    for (i = 0; i < k; i++)
        sink[rows[i] * m + cols[i]] = vals[i];
}

/* Max pairwise Hamming distance over zero-padded uint64 word rows.
 * 8-row i-blocks stay register/L1-resident while j streams the matrix
 * once per block; only i < j pairs are visited. */
int64_t repro_diameter_words(const uint64_t *words, int64_t n, int64_t w)
{
    int64_t best = 0, ib;
    for (ib = 0; ib < n; ib += 8) {
        int64_t ie = ib + 8 < n ? ib + 8 : n;
        int64_t j;
        for (j = ib + 1; j < n; j++) {
            const uint64_t *wj = words + j * w;
            int64_t itop = j < ie ? j : ie;
            int64_t i;
            for (i = ib; i < itop; i++) {
                const uint64_t *wi = words + i * w;
                int64_t d = 0, t;
                for (t = 0; t < w; t++)
                    d += REPRO_POPCOUNT64(wi[t] ^ wj[t]);
                if (d > best)
                    best = d;
            }
        }
    }
    return best;
}

/* Full (n, n) distance matrix: upper triangle computed, mirrored. */
void repro_pairwise_hamming_words(const uint64_t *words, int64_t n,
                                  int64_t w, int64_t *out)
{
    int64_t i;
    for (i = 0; i < n; i++) {
        const uint64_t *wi = words + i * w;
        int64_t j;
        out[i * n + i] = 0;
        for (j = i + 1; j < n; j++) {
            const uint64_t *wj = words + j * w;
            int64_t d = 0, t;
            for (t = 0; t < w; t++)
                d += REPRO_POPCOUNT64(wi[t] ^ wj[t]);
            out[i * n + j] = d;
            out[j * n + i] = d;
        }
    }
}

/* Select's per-probe candidate scan (Fig. 3 step 1), one fused loop:
 * bump the disagreement count of every candidate whose non-wildcard
 * entry at the probed column contradicts the probed value, then retire
 * candidates that crossed the bound.  Returns how many were retired. */
int64_t repro_scan_column(const int16_t *col, int64_t k, int64_t value,
                          int64_t wildcard, int64_t bound,
                          int64_t *disagreements, uint8_t *alive)
{
    int64_t eliminated = 0, i;
    for (i = 0; i < k; i++) {
        if (col[i] != (int16_t)wildcard && col[i] != (int16_t)value)
            disagreements[i] += 1;
        if (alive[i] && disagreements[i] > bound) {
            alive[i] = 0;
            eliminated++;
        }
    }
    return eliminated;
}

/* RSelect's per-match tally (Fig. 7): out[0] counts coordinates agreeing
 * with candidate a, out[1] those agreeing with b among the rest — the
 * same first-match-wins order as the scalar loop it replaces. */
void repro_pair_agreements(const int16_t *col_a, const int16_t *col_b,
                           const int16_t *vals, int64_t k, int64_t *out)
{
    int64_t agree_a = 0, agree_b = 0, i;
    for (i = 0; i < k; i++) {
        if (col_a[i] == vals[i])
            agree_a++;
        else if (col_b[i] == vals[i])
            agree_b++;
    }
    out[0] = agree_a;
    out[1] = agree_b;
}
"""
