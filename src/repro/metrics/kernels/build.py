"""Build the compiled kernel backend in place (cffi API mode).

``python -m repro.metrics.kernels.build`` compiles the C translation
unit in :mod:`repro.metrics.kernels._csrc` into the extension module
``repro.metrics.kernels._ckernels`` next to this package's sources —
the same layout ``pip install -e .[compiled]`` produces, so a source
checkout and an installed tree dispatch identically.

The build is strictly optional: nothing imports this module unless the
user asks for the compiled backend (``REPRO_KERNEL_BACKEND=compiled``)
or runs the builder explicitly, and every failure mode (no cffi, no C
compiler) surfaces as a clear :class:`RuntimeError` while the library
keeps serving on the NumPy reference backend.
"""

from __future__ import annotations

import os
import sys
from typing import Any

__all__ = ["build_inplace"]

#: The extension's importable name; must match ``set_source`` below and
#: the import in :mod:`repro.metrics.kernels.compiled`.
MODULE_NAME = "repro.metrics.kernels._ckernels"


def _ffibuilder(extra_compile_args: list[str]) -> Any:
    from cffi import FFI

    from repro.metrics.kernels._csrc import CDEF, SOURCE

    ffi = FFI()
    ffi.cdef(CDEF)
    ffi.set_source(MODULE_NAME, SOURCE, extra_compile_args=extra_compile_args)
    return ffi


def build_inplace(*, verbose: bool = False) -> str:
    """Compile the extension next to the package sources; return its path.

    Tries ``-O3 -march=native`` first and retries plain ``-O3`` for
    toolchains that reject the flag (cross builds, old compilers).
    Raises :class:`RuntimeError` if cffi is missing or no working C
    compiler is found — callers fall back to the NumPy backend.
    """
    try:
        import cffi  # noqa: F401
    except ImportError as exc:
        raise RuntimeError(
            "the compiled kernel backend needs cffi "
            "(pip install 'repro[compiled]')"
        ) from exc
    # src root: .../src/repro/metrics/kernels/build.py -> .../src
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    last_error: Exception | None = None
    for args in (["-O3", "-march=native"], ["-O3"]):
        try:
            ffi = _ffibuilder(args)
            path = ffi.compile(tmpdir=src_root, verbose=verbose)
            return str(path)
        except Exception as exc:  # distutils raises a zoo of error types
            last_error = exc
    raise RuntimeError(
        f"could not compile {MODULE_NAME} (is a C compiler installed?): {last_error}"
    ) from last_error


if __name__ == "__main__":  # pragma: no cover - exercised by CI, not pytest
    built = build_inplace(verbose="-v" in sys.argv[1:])
    print(f"built {built}")
