"""Distance and quality metrics from the paper.

* :mod:`repro.metrics.hamming` — plain Hamming distance machinery
  (pairwise matrices, set diameter) with bit-packed fast paths.
* :mod:`repro.metrics.tilde` — the paper's ``d̃`` (Notation 3.2): Hamming
  distance restricted to coordinates where *both* vectors are non-"?",
  plus the ``ball(v, D)`` used by Coalesce.
* :mod:`repro.metrics.evaluation` — discrepancy ``Δ(P*)``, stretch
  ``ρ(P*)`` (Section 1.1) and whole-run evaluation reports.
"""

from repro.metrics.hamming import (
    diameter,
    hamming,
    hamming_many,
    hamming_to_each,
    pairwise_hamming,
)
from repro.metrics.tilde import (
    ball_sizes,
    tilde_ball,
    tilde_dist,
    tilde_dist_to_each,
    tilde_pairwise,
    wildcard_count,
)
from repro.metrics.evaluation import (
    EvaluationReport,
    discrepancy,
    errors,
    evaluate,
    stretch,
)
from repro.metrics.bitpack import BitMatrix

__all__ = [
    "hamming",
    "hamming_many",
    "hamming_to_each",
    "pairwise_hamming",
    "diameter",
    "tilde_dist",
    "tilde_dist_to_each",
    "tilde_pairwise",
    "tilde_ball",
    "ball_sizes",
    "wildcard_count",
    "errors",
    "discrepancy",
    "stretch",
    "evaluate",
    "EvaluationReport",
    "BitMatrix",
]
