"""Hamming-distance machinery.

The paper measures everything in Hamming distance ``dist(x, y)`` — the
number of coordinates on which two 0/1 vectors differ (Definition 1.1).
This module provides scalar, one-vs-many, and all-pairs variants.

Performance notes (per the HPC guides: vectorize the hot loop, mind
memory layout):

* one-vs-many and all-pairs computations are vectorized NumPy;
* :func:`pairwise_hamming` uses the matrix-product identity
  ``dist(x, y) = x·(1−y) + (1−x)·y`` so the whole distance matrix is two
  BLAS calls instead of an ``O(n² m)`` Python loop;
* bit-packing (``np.packbits`` + ``bitwise_count``) is used for
  :func:`diameter` on large inputs, cutting memory traffic 8×.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_matrix

__all__ = [
    "hamming",
    "hamming_many",
    "hamming_to_each",
    "pairwise_hamming",
    "diameter",
]


def hamming(x: np.ndarray, y: np.ndarray) -> int:
    """Hamming distance between two equal-length 0/1 vectors.

    >>> hamming(np.asarray([0, 1, 1, 0]), np.asarray([0, 0, 1, 1]))
    2
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"expected two equal-length vectors, got shapes {x.shape} and {y.shape}")
    return int(np.count_nonzero(x != y))


def hamming_many(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Row-wise Hamming distance between two equally-shaped 0/1 matrices."""
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if xs.shape != ys.shape or xs.ndim != 2:
        raise ValueError(f"expected two equal-shape matrices, got {xs.shape} and {ys.shape}")
    return np.count_nonzero(xs != ys, axis=1)


def hamming_to_each(v: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Hamming distance from vector *v* to each row of *matrix*."""
    v = np.asarray(v)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or v.ndim != 1 or matrix.shape[1] != v.shape[0]:
        raise ValueError(f"shape mismatch: v {v.shape} vs matrix {matrix.shape}")
    return np.count_nonzero(matrix != v[None, :], axis=1)


def pairwise_hamming(matrix: np.ndarray) -> np.ndarray:
    """All-pairs Hamming distance matrix of the rows of a 0/1 *matrix*.

    Uses ``dist(x, y) = x·(1−y) + (1−x)·y`` evaluated as two matrix
    products in ``float64`` (exact for m < 2**53), so runtime is BLAS-bound.
    """
    arr = check_binary_matrix(matrix).astype(np.float64)
    ones = 1.0 - arr
    d = arr @ ones.T
    d += d.T
    out = np.rint(d).astype(np.int64)
    np.fill_diagonal(out, 0)
    return out


def _packed_diameter(arr: np.ndarray) -> int:
    """Exact diameter via bit-packed XOR popcount (memory-light path)."""
    packed = np.packbits(arr.astype(np.uint8), axis=1)
    n = packed.shape[0]
    best = 0
    # Row-blocked loop keeps the XOR buffer small and cache-resident.
    block = max(1, 4_000_000 // max(1, packed.shape[1]))
    for start in range(0, n, block):
        chunk = packed[start : start + block]
        for i in range(chunk.shape[0]):
            x = np.bitwise_xor(packed, chunk[i])
            dist = np.bitwise_count(x).sum(axis=1)
            best = max(best, int(dist.max()))
    return best


def diameter(matrix: np.ndarray) -> int:
    """Diameter ``D(P*)`` — maximum pairwise Hamming distance among rows.

    Matches the paper's ``D(P*) = max dist(v(p), v(q))``.  Returns 0 for
    zero or one row.

    >>> diameter(np.asarray([[0, 0, 0], [1, 1, 0], [0, 1, 0]]))
    2
    """
    arr = check_binary_matrix(matrix)
    n = arr.shape[0]
    if n <= 1:
        return 0
    # Above ~1k rows the n×n float Gram matrices start to dominate memory;
    # switch to the packed popcount path.
    if n > 1024:
        return _packed_diameter(arr)
    return int(pairwise_hamming(arr).max())
