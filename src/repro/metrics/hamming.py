"""Hamming-distance machinery.

The paper measures everything in Hamming distance ``dist(x, y)`` — the
number of coordinates on which two 0/1 vectors differ (Definition 1.1).
This module provides scalar, one-vs-many, and all-pairs variants.

Performance notes (per the HPC guides: vectorize the hot loop, mind
memory layout):

* one-vs-many and all-pairs computations are vectorized NumPy;
* :func:`pairwise_hamming` uses the matrix-product identity
  ``dist(x, y) = x·(1−y) + (1−x)·y`` so the whole distance matrix is two
  BLAS calls instead of an ``O(n² m)`` Python loop;
* the one-vs-many and all-pairs kernels accept an already-packed
  :class:`~repro.metrics.bitpack.BitMatrix` and then run on XOR +
  popcount words directly — 8× less memory traffic, no unpack;
* for *dense* input the BLAS identity stays the all-pairs default: on
  the reference box the blocked popcount kernel only reaches parity at
  n ≈ 1024 (53.4 ms vs 54.8 ms) and wins ~5 % at n = 2048 (338.6 ms vs
  356.9 ms) *before* paying the pack, so :func:`diameter` — which needs
  no ``n × n`` output and can stream tiles — switches to the packed
  path above the measured crossover :data:`PACKED_CROSSOVER`.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.bitpack import BitMatrix, hamming_to_packed, pack_vector, popcount_sum
from repro.utils.validation import check_binary_matrix

__all__ = [
    "hamming",
    "hamming_many",
    "hamming_to_each",
    "pairwise_hamming",
    "diameter",
    "PACKED_CROSSOVER",
]

#: Row count above which :func:`diameter` leaves BLAS for the blocked
#: XOR/popcount kernel.  Measured, not guessed: dense BLAS vs
#: ``BitMatrix.pairwise_hamming`` on the reference box crosses between
#: n = 512 (BLAS ~2× ahead) and n = 1024 (parity); see
#: docs/performance.md for the numbers and benchmarks/bench_micro_substrate.py
#: for the harness that re-derives them.
PACKED_CROSSOVER = 1024


def hamming(x: np.ndarray, y: np.ndarray) -> int:
    """Hamming distance between two equal-length 0/1 vectors.

    >>> hamming(np.asarray([0, 1, 1, 0]), np.asarray([0, 0, 1, 1]))
    2
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"expected two equal-length vectors, got shapes {x.shape} and {y.shape}")
    return int(np.count_nonzero(x != y))


def hamming_many(xs: np.ndarray | BitMatrix, ys: np.ndarray | BitMatrix) -> np.ndarray:
    """Row-wise Hamming distance between two equally-shaped 0/1 matrices.

    Either side may be an already-packed
    :class:`~repro.metrics.bitpack.BitMatrix`; when both are, the kernel
    is a packed XOR + popcount with no dense materialisation.
    """
    if isinstance(xs, BitMatrix) or isinstance(ys, BitMatrix):
        xb = xs if isinstance(xs, BitMatrix) else BitMatrix(xs)
        yb = ys if isinstance(ys, BitMatrix) else BitMatrix(ys)
        if xb.shape != yb.shape:
            raise ValueError(
                f"expected two equal-shape matrices, got {xb.shape} and {yb.shape}"
            )
        return popcount_sum(np.bitwise_xor(xb.packed, yb.packed))
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if xs.shape != ys.shape or xs.ndim != 2:
        raise ValueError(f"expected two equal-shape matrices, got {xs.shape} and {ys.shape}")
    return np.count_nonzero(xs != ys, axis=1)


def hamming_to_each(v: np.ndarray, matrix: np.ndarray | BitMatrix) -> np.ndarray:
    """Hamming distance from vector *v* to each row of *matrix*.

    A :class:`~repro.metrics.bitpack.BitMatrix` *matrix* runs packed:
    the vector is packed once and each row costs an ``m/8``-byte XOR +
    popcount — the substrate's flagship one-vs-all kernel.
    """
    v = np.asarray(v)
    if isinstance(matrix, BitMatrix):
        if v.ndim != 1 or matrix.shape[1] != v.shape[0]:
            raise ValueError(f"shape mismatch: v {v.shape} vs matrix {matrix.shape}")
        return hamming_to_packed(matrix.packed, pack_vector(v))
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or v.ndim != 1 or matrix.shape[1] != v.shape[0]:
        raise ValueError(f"shape mismatch: v {v.shape} vs matrix {matrix.shape}")
    return np.count_nonzero(matrix != v[None, :], axis=1)


def pairwise_hamming(matrix: np.ndarray | BitMatrix) -> np.ndarray:
    """All-pairs Hamming distance matrix of the rows of a 0/1 *matrix*.

    Dense input uses ``dist(x, y) = x·(1−y) + (1−x)·y`` evaluated as two
    matrix products in ``float64`` (exact for m < 2**53, BLAS-bound —
    still the measured winner below :data:`PACKED_CROSSOVER` rows and
    within ~5 % above it, so packing dense input never pays here); an
    already-packed :class:`~repro.metrics.bitpack.BitMatrix` skips BLAS
    for the blocked XOR/popcount kernel.
    """
    if isinstance(matrix, BitMatrix):
        return matrix.pairwise_hamming()
    arr = check_binary_matrix(matrix).astype(np.float64)
    ones = 1.0 - arr
    d = arr @ ones.T
    d += d.T
    out = np.rint(d).astype(np.int64)
    np.fill_diagonal(out, 0)
    return out


def diameter(matrix: np.ndarray | BitMatrix) -> int:
    """Diameter ``D(P*)`` — maximum pairwise Hamming distance among rows.

    Matches the paper's ``D(P*) = max dist(v(p), v(q))``.  Returns 0 for
    zero or one row.  Above :data:`PACKED_CROSSOVER` rows (the measured
    BLAS/popcount crossover) dense input is packed and streamed through
    the tiled popcount kernel, which needs no ``n × n`` intermediate;
    a :class:`~repro.metrics.bitpack.BitMatrix` always runs packed.

    >>> diameter(np.asarray([[0, 0, 0], [1, 1, 0], [0, 1, 0]]))
    2
    """
    if isinstance(matrix, BitMatrix):
        return matrix.diameter()
    arr = check_binary_matrix(matrix)
    n = arr.shape[0]
    if n <= 1:
        return 0
    if n > PACKED_CROSSOVER:
        return BitMatrix(arr).diameter()
    return int(pairwise_hamming(arr).max())
