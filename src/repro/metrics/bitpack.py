"""The bit-packed substrate: storage and kernels at one bit per entry.

Dense ``int8`` preference matrices and billboard channels move 8× more
bytes than the information they carry, and at serving-scale populations
the wall-clock is bandwidth-bound.  This module makes the packed
``uint8`` representation (``np.packbits`` rows, big-endian bit order —
bit ``7 - (j % 8)`` of byte ``j // 8`` is column ``j``) the system's
*native* substrate:

* **storage helpers** — :func:`pack_rows` / :func:`unpack_rows` /
  :func:`pack_vector` / :func:`unpack_vector` are the only sanctioned
  pack/unpack points (lint rule RPL010 bans ``np.unpackbits`` anywhere
  else in the library, so dense materialisation cannot silently creep
  back in);
* **word-indexed access** — :func:`extract_bits` answers
  ``matrix[rows, cols]`` reads straight from packed storage (the
  :class:`~repro.billboard.oracle.ProbeOracle` probe path);
* **Hamming kernels** — XOR + popcount row kernels
  (:func:`hamming_to_packed`, :func:`popcount_sum`) with a
  ``np.unpackbits``-free 16-bit-LUT fallback for NumPy builds without
  ``np.bitwise_count`` (force it with :func:`lut_popcount` — the CI
  fallback leg runs the whole suite under it);
* **the A/B switch** — :func:`dense_substrate` forces the dense
  reference representation within a block, exactly like
  :func:`repro.core.batching.sequential_probes` forces the scalar probe
  path; every packed/dense pair is pinned bit-identical by
  ``tests/test_substrate_equivalence.py``.

:class:`BitMatrix` wraps a packed matrix as a value type; it is the
currency between the shared-memory store, the oracle, and workloads
that keep many snapshots in memory.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.utils.validation import check_binary_matrix

__all__ = [
    "BitMatrix",
    "dense_substrate",
    "packed_substrate",
    "packed_substrate_enabled",
    "lut_popcount",
    "native_popcount_enabled",
    "packed_width",
    "pack_rows",
    "pack_vector",
    "unpack_rows",
    "unpack_vector",
    "extract_bits",
    "popcount_sum",
    "hamming_to_packed",
    "differing_columns",
]

#: Whether this NumPy build ships the vectorized popcount ufunc
#: (NumPy >= 2.0).  Older builds transparently use the 16-bit-LUT path.
#: ``REPRO_FORCE_LUT_POPCOUNT=1`` simulates such a build — the CI
#: fallback leg sets it to run the substrate suites on the LUT engine.
_HAS_NATIVE_POPCOUNT = (
    hasattr(np, "bitwise_count") and os.environ.get("REPRO_FORCE_LUT_POPCOUNT") != "1"
)

_state = threading.local()


# ----------------------------------------------------------------------
# substrate A/B toggle (mirrors repro.core.batching.sequential_probes)
# ----------------------------------------------------------------------
def packed_substrate_enabled() -> bool:
    """Whether new oracles/billboards store their matrices bit-packed."""
    return getattr(_state, "packed", True)


@contextmanager
def dense_substrate() -> Iterator[None]:
    """Force the dense ``int8`` reference representation within the block.

    The storage decision is taken at *construction* time: an oracle or
    billboard built inside the block stays dense for its lifetime, which
    is what the A/B benchmarks and the dense-vs-packed equivalence suite
    rely on.  The toggle is thread-local.
    """
    prev = packed_substrate_enabled()
    _state.packed = False
    try:
        yield
    finally:
        _state.packed = prev


@contextmanager
def packed_substrate() -> Iterator[None]:
    """Force the packed substrate within the block (undoes an outer
    :func:`dense_substrate`)."""
    prev = packed_substrate_enabled()
    _state.packed = True
    try:
        yield
    finally:
        _state.packed = prev


# ----------------------------------------------------------------------
# popcount engine: np.bitwise_count, or the 16-bit LUT fallback
# ----------------------------------------------------------------------
def native_popcount_enabled() -> bool:
    """Whether popcounts use ``np.bitwise_count`` (vs the 16-bit LUT)."""
    return _HAS_NATIVE_POPCOUNT and not getattr(_state, "lut", False)


@contextmanager
def lut_popcount() -> Iterator[None]:
    """Force the ``np.unpackbits``-free 16-bit-LUT popcount in the block.

    The fallback is what NumPy builds without ``np.bitwise_count`` use
    unconditionally; tests and the CI fallback leg pin both engines to
    identical counts.
    """
    prev = getattr(_state, "lut", False)
    _state.lut = True
    try:
        yield
    finally:
        _state.lut = prev


_LUT16: np.ndarray | None = None


def _lut16() -> np.ndarray:
    """The 65536-entry popcount table, built once without unpackbits."""
    global _LUT16
    if _LUT16 is None:
        lut8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
        idx = np.arange(1 << 16)
        _LUT16 = (lut8[idx >> 8] + lut8[idx & 0xFF]).astype(np.uint8)
    return _LUT16


def popcount_sum(words: np.ndarray) -> np.ndarray:
    """Per-row popcount: total set bits along the last axis.

    *words* is any unsigned-integer array (``uint8`` packed rows or the
    ``uint64`` word views the blocked kernels use); the result drops the
    last axis and is ``int64``.  Dispatches to ``np.bitwise_count`` or,
    under :func:`lut_popcount` / on old NumPy, to the 16-bit LUT.
    """
    if native_popcount_enabled():
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    arr = np.ascontiguousarray(words)
    if arr.dtype != np.uint16:
        if arr.dtype == np.uint8 and arr.shape[-1] % 2:
            pad = np.zeros(arr.shape[:-1] + (1,), dtype=np.uint8)
            arr = np.concatenate([arr, pad], axis=-1)
        arr = arr.view(np.uint16)
    return _lut16()[arr].sum(axis=-1, dtype=np.int64)


# ----------------------------------------------------------------------
# pack / unpack (the API boundary; RPL010 keeps unpackbits in here)
# ----------------------------------------------------------------------
def packed_width(m: int) -> int:
    """Bytes per packed row for *m* columns: ``ceil(m / 8)``."""
    return (int(m) + 7) // 8


def pack_rows(rows: np.ndarray) -> np.ndarray:
    """Pack a 2-D 0/1 matrix into ``(n, ceil(m / 8))`` ``uint8`` rows.

    Bit order is ``np.packbits``'s big-endian convention; the zero-padded
    tail of the last byte is shared by all rows, so packed bytes compare
    and XOR like the rows themselves.
    """
    arr = np.ascontiguousarray(rows)
    if arr.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {arr.shape}")
    return np.packbits(arr.astype(np.uint8, copy=False), axis=1)


def pack_vector(v: np.ndarray) -> np.ndarray:
    """Pack a 1-D 0/1 vector into ``ceil(m / 8)`` ``uint8`` bytes."""
    arr = np.asarray(v)
    if arr.ndim != 1:
        raise ValueError(f"vector must be 1-D, got shape {arr.shape}")
    return np.packbits(arr.astype(np.uint8, copy=False))


def unpack_rows(packed: np.ndarray, m: int, dtype: np.dtype | type = np.int8) -> np.ndarray:
    """Unpack ``(n, ceil(m / 8))`` packed rows back to a dense ``(n, m)`` matrix."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError(f"packed rows must be 2-D, got shape {packed.shape}")
    if packed.shape[1] != packed_width(m):
        raise ValueError(
            f"packed width {packed.shape[1]} does not match m={m} (need {packed_width(m)})"
        )
    if m == 0:
        return np.zeros((packed.shape[0], 0), dtype=dtype)
    return np.unpackbits(packed, axis=1, count=m).astype(dtype)


def unpack_vector(packed: np.ndarray, m: int, dtype: np.dtype | type = np.int8) -> np.ndarray:
    """Unpack a packed vector back to a dense length-*m* 0/1 vector."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 1:
        raise ValueError(f"packed vector must be 1-D, got shape {packed.shape}")
    if packed.shape[0] != packed_width(m):
        raise ValueError(
            f"packed width {packed.shape[0]} does not match m={m} (need {packed_width(m)})"
        )
    if m == 0:
        return np.zeros(0, dtype=dtype)
    return np.unpackbits(packed, count=m).astype(dtype)


def extract_bits(packed: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``matrix[rows, cols]`` read directly from packed rows (``int8``).

    Word-indexed bit extraction: one byte gather plus a shift/mask, no
    dense materialisation.  Bit-identical to fancy-indexing the dense
    matrix.  Dispatches through :mod:`repro.metrics.kernels` (compiled
    scatter-gather loop when the extension is available, cache-blocked
    NumPy otherwise).
    """
    from repro.metrics import kernels

    return kernels.extract_bits(packed, rows, cols)


# ----------------------------------------------------------------------
# packed Hamming kernels
# ----------------------------------------------------------------------
def hamming_to_packed(packed: np.ndarray, packed_v: np.ndarray) -> np.ndarray:
    """Hamming distance of every packed row to one packed vector."""
    return popcount_sum(np.bitwise_xor(packed, packed_v))


def differing_columns(packed: np.ndarray, m: int) -> np.ndarray:
    """Ascending column indices on which some two packed rows differ.

    The packed twin of ``X(V)`` for wildcard-free 0/1 candidate sets: a
    column distinguishes two rows iff its OR-bit and AND-bit differ.
    """
    if packed.shape[0] <= 1:
        return np.empty(0, dtype=np.intp)
    both = np.bitwise_and.reduce(packed, axis=0)
    any_ = np.bitwise_or.reduce(packed, axis=0)
    mask = unpack_vector(np.bitwise_xor(any_, both), m, dtype=np.uint8)
    return np.flatnonzero(mask)


def _as_words(packed: np.ndarray) -> np.ndarray:
    """Packed ``uint8`` rows as zero-padded C-contiguous ``uint64`` words."""
    n, pm = packed.shape
    pad = (-pm) % 8
    if pad:
        padded = np.zeros((n, pm + pad), dtype=np.uint8)
        padded[:, :pm] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


# The row-tiled pairwise/diameter loops formerly inlined here moved to
# repro.metrics.kernels.reference (upper-triangle tiles) with a compiled
# twin in repro.metrics.kernels.compiled; BitMatrix dispatches below.


class BitMatrix:
    """An immutable bit-packed 0/1 matrix.

    Parameters
    ----------
    matrix:
        Dense ``(n, m)`` 0/1 matrix to pack.
    name:
        Name used in validation error messages (so substrate owners like
        the oracle report ``prefs must ...``, not ``matrix must ...``).
    """

    def __init__(self, matrix: np.ndarray, *, name: str = "matrix") -> None:
        dense = check_binary_matrix(matrix, name)
        self._n, self._m = dense.shape
        self._packed = pack_rows(dense)
        self._words: np.ndarray | None = None

    @classmethod
    def from_packed(cls, packed: np.ndarray, m: int, *, copy: bool = True) -> "BitMatrix":
        """Wrap already-packed rows (copied; the padding tail is re-zeroed).

        The attach path of :class:`repro.parallel.SharedInstanceHandle`:
        a worker adopts the published packed matrix without ever
        materialising the dense form.

        ``copy=False`` adopts the buffer as-is — the zero-copy attach
        path for mmap-backed dataset mirrors and freshly packed blocks
        the caller owns.  The buffer may be read-only (mmap mode ``r``);
        since an adopted tail can't be re-zeroed in place, dirty padding
        bits past column *m* are a hard error instead.
        """
        packed = np.ascontiguousarray(packed, dtype=np.uint8)
        if packed.ndim != 2:
            raise ValueError(f"packed rows must be 2-D, got shape {packed.shape}")
        if packed.shape[1] != packed_width(m):
            raise ValueError(
                f"packed width {packed.shape[1]} does not match m={m} "
                f"(need {packed_width(m)})"
            )
        self = cls.__new__(cls)
        self._n = int(packed.shape[0])
        self._m = int(m)
        tail_mask = np.uint8(0xFF << (8 - m % 8) & 0xFF)
        if copy:
            self._packed = packed.copy()
            if m % 8 and self._packed.size:
                # Zero the padding bits so XOR/popcount/equality stay exact
                # even if the source buffer carried garbage past column m.
                self._packed[:, -1] &= tail_mask
        else:
            if m % 8 and packed.size and bool((packed[:, -1] & np.uint8(~tail_mask & 0xFF)).any()):
                raise ValueError(
                    f"cannot adopt packed buffer: padding bits past column {m} "
                    "are dirty (re-pack it, or use copy=True)"
                )
            self._packed = packed
        self._words = None
        return self

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, columns)``."""
        return (self._n, self._m)

    @property
    def nbytes(self) -> int:
        """Packed storage size in bytes."""
        return self._packed.nbytes

    @property
    def packed(self) -> np.ndarray:
        """Read-only view of the packed ``(n, ceil(m / 8))`` rows."""
        view = self._packed.view()
        view.flags.writeable = False
        return view

    def _word_view(self) -> np.ndarray:
        if self._words is None:
            self._words = _as_words(self._packed)
        return self._words

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def unpack(self) -> np.ndarray:
        """Back to a dense ``int8`` matrix."""
        return unpack_rows(self._packed, self._m)

    def row(self, i: int) -> np.ndarray:
        """Dense copy of row *i*."""
        if not (0 <= i < self._n):
            raise IndexError(f"row {i} out of range [0, {self._n})")
        return unpack_vector(self._packed[i], self._m)

    # ------------------------------------------------------------------
    # Hamming operations
    # ------------------------------------------------------------------
    def hamming_to_row(self, i: int) -> np.ndarray:
        """Hamming distance of every row to row *i*."""
        if not (0 <= i < self._n):
            raise IndexError(f"row {i} out of range [0, {self._n})")
        words = self._word_view()
        return popcount_sum(np.bitwise_xor(words, words[i]))

    def hamming_to_vector(self, v: np.ndarray) -> np.ndarray:
        """Hamming distance of every row to a dense 0/1 vector *v*."""
        v = np.asarray(v)
        if v.shape != (self._m,):
            raise ValueError(f"vector must have shape ({self._m},), got {v.shape}")
        pv = pack_vector(v)
        return hamming_to_packed(self._packed, pv)

    def pairwise_hamming(self) -> np.ndarray:
        """Exact all-pairs Hamming distance matrix (upper-triangle tiles).

        Dispatches through :mod:`repro.metrics.kernels`: the compiled
        backend runs an upper-triangle XOR + ``popcountll`` loop; the
        NumPy reference computes row-tiled ``j >= start`` bands and
        mirrors them — both bit-identical to the dense distance matrix
        (measured numbers in docs/performance.md).
        """
        from repro.metrics import kernels

        return kernels.pairwise_hamming_words(self._word_view())

    def diameter(self) -> int:
        """Maximum pairwise Hamming distance (tiled, no n×n matrix)."""
        if self._n <= 1:
            return 0
        from repro.metrics import kernels

        return kernels.diameter_words(self._word_view())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.shape == other.shape and np.array_equal(self._packed, other._packed)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"BitMatrix(shape={self.shape}, nbytes={self.nbytes})"
