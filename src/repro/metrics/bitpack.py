"""Bit-packed binary matrices.

At the scales the asymptotics start to show (``n = m ≳ 10⁴``), dense
``int8`` matrices and their pairwise-distance intermediates dominate
memory traffic.  :class:`BitMatrix` stores a 0/1 matrix at one bit per
entry (``np.packbits`` rows) and provides the Hamming operations the
library needs via XOR + ``bitwise_count`` — an 8× cut in memory and
typically a similar cut in bandwidth-bound runtime.

Used by :func:`repro.metrics.hamming.diameter` for large inputs;
exposed publicly for workloads that want to keep many snapshots
(e.g. the dynamic-tracking history) in memory.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_matrix

__all__ = ["BitMatrix"]


class BitMatrix:
    """An immutable bit-packed 0/1 matrix.

    Parameters
    ----------
    matrix:
        Dense ``(n, m)`` 0/1 matrix to pack.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        dense = check_binary_matrix(matrix, "matrix")
        self._n, self._m = dense.shape
        self._packed = np.packbits(dense.astype(np.uint8), axis=1)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, columns)``."""
        return (self._n, self._m)

    @property
    def nbytes(self) -> int:
        """Packed storage size in bytes."""
        return self._packed.nbytes

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def unpack(self) -> np.ndarray:
        """Back to a dense ``int8`` matrix."""
        return np.unpackbits(self._packed, axis=1)[:, : self._m].astype(np.int8)

    def row(self, i: int) -> np.ndarray:
        """Dense copy of row *i*."""
        if not (0 <= i < self._n):
            raise IndexError(f"row {i} out of range [0, {self._n})")
        return np.unpackbits(self._packed[i])[: self._m].astype(np.int8)

    # ------------------------------------------------------------------
    # Hamming operations
    # ------------------------------------------------------------------
    def hamming_to_row(self, i: int) -> np.ndarray:
        """Hamming distance of every row to row *i*."""
        if not (0 <= i < self._n):
            raise IndexError(f"row {i} out of range [0, {self._n})")
        x = np.bitwise_xor(self._packed, self._packed[i])
        return np.bitwise_count(x).sum(axis=1).astype(np.int64)

    def hamming_to_vector(self, v: np.ndarray) -> np.ndarray:
        """Hamming distance of every row to a dense 0/1 vector *v*."""
        v = np.asarray(v)
        if v.shape != (self._m,):
            raise ValueError(f"vector must have shape ({self._m},), got {v.shape}")
        pv = np.packbits(v.astype(np.uint8))
        x = np.bitwise_xor(self._packed, pv)
        return np.bitwise_count(x).sum(axis=1).astype(np.int64)

    def pairwise_hamming(self) -> np.ndarray:
        """Exact all-pairs Hamming distance matrix (row-blocked popcount)."""
        out = np.empty((self._n, self._n), dtype=np.int64)
        for i in range(self._n):
            out[i] = self.hamming_to_row(i)
        return out

    def diameter(self) -> int:
        """Maximum pairwise Hamming distance."""
        if self._n <= 1:
            return 0
        best = 0
        for i in range(self._n):
            best = max(best, int(self.hamming_to_row(i).max()))
        return best

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.shape == other.shape and np.array_equal(self._packed, other._packed)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"BitMatrix(shape={self.shape}, nbytes={self.nbytes})"
