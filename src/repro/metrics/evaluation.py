"""Run-quality metrics: discrepancy, stretch, and evaluation reports.

Section 1.1 of the paper defines, for a typical set ``P*``:

* ``Δ(P*) = max_{p in P*} dist(w(p), v(p))``  — the *discrepancy*;
* ``ρ(P*) = Δ(P*) / D(P*)``                    — the *stretch*.

Theorem 1.1 promises constant stretch after polylog rounds.  The library
reports both, plus per-player errors and probe statistics, via
:func:`evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.metrics.hamming import diameter as _diameter
from repro.utils.validation import WILDCARD

__all__ = ["errors", "discrepancy", "stretch", "evaluate", "EvaluationReport"]


def errors(outputs: np.ndarray, truth: np.ndarray, *, wildcard_as_zero: bool = True) -> np.ndarray:
    """Per-player Hamming error ``dist(w(p), v(p))``.

    Large Radius may emit "?" entries; the paper sets them to 0 ("which
    may be set to 0", Section 5).  With ``wildcard_as_zero=False``,
    wildcards instead count as automatic errors (a pessimistic bound).
    """
    outputs = np.asarray(outputs)
    truth = np.asarray(truth)
    if outputs.shape != truth.shape or outputs.ndim != 2:
        raise ValueError(f"shape mismatch: outputs {outputs.shape} vs truth {truth.shape}")
    if wildcard_as_zero:
        outputs = np.where(outputs == WILDCARD, 0, outputs)
        return np.count_nonzero(outputs != truth, axis=1)
    wild = outputs == WILDCARD
    return np.count_nonzero((outputs != truth) | wild, axis=1)


def discrepancy(outputs: np.ndarray, truth: np.ndarray, members: Sequence[int] | np.ndarray | None = None) -> int:
    """``Δ(P*)``: maximum error over the players in *members* (all players if None)."""
    errs = errors(outputs, truth)
    if members is not None:
        members = np.asarray(members, dtype=np.intp)
        if members.size == 0:
            raise ValueError("members must be non-empty")
        errs = errs[members]
    return int(errs.max())


def stretch(
    outputs: np.ndarray,
    truth: np.ndarray,
    members: Sequence[int] | np.ndarray | None = None,
    *,
    diam: int | None = None,
) -> float:
    """``ρ(P*) = Δ(P*) / D(P*)``.

    The paper's definition divides by the true diameter; for ``D = 0``
    communities (identical preferences) we follow the standard convention
    of dividing by ``max(D, 1)`` so the quantity stays finite — a
    zero-diameter community with zero discrepancy has stretch 0.
    """
    disc = discrepancy(outputs, truth, members)
    if diam is None:
        rows = np.asarray(truth) if members is None else np.asarray(truth)[np.asarray(members, dtype=np.intp)]
        diam = _diameter(rows)
    return disc / max(int(diam), 1)


@dataclass(frozen=True)
class EvaluationReport:
    """Summary of one algorithm run against ground truth.

    Attributes
    ----------
    discrepancy:
        ``Δ(P*)`` over the evaluated member set.
    diameter:
        True preference diameter ``D(P*)`` of the member set.
    stretch:
        ``Δ / max(D, 1)``.
    mean_error, median_error, max_error:
        Statistics of per-player errors over the member set.
    n_members:
        Number of players evaluated.
    """

    discrepancy: int
    diameter: int
    stretch: float
    mean_error: float
    median_error: float
    max_error: int
    n_members: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"EvaluationReport(Δ={self.discrepancy}, D={self.diameter}, "
            f"ρ={self.stretch:.2f}, mean={self.mean_error:.2f}, n={self.n_members})"
        )


def evaluate(
    outputs: np.ndarray,
    truth: np.ndarray,
    members: Sequence[int] | np.ndarray | None = None,
    *,
    diam: int | None = None,
) -> EvaluationReport:
    """Build an :class:`EvaluationReport` for *outputs* against *truth*.

    Parameters
    ----------
    outputs, truth:
        ``(n, m)`` matrices; outputs may contain wildcards (scored as 0s).
    members:
        Player indices forming the typical set ``P*``; defaults to all.
    diam:
        Known diameter of the member set; computed from *truth* if omitted.
    """
    errs = errors(outputs, truth)
    idx = np.arange(truth.shape[0]) if members is None else np.asarray(members, dtype=np.intp)
    if idx.size == 0:
        raise ValueError("members must be non-empty")
    member_errs = errs[idx]
    if diam is None:
        diam = _diameter(np.asarray(truth)[idx])
    disc = int(member_errs.max())
    return EvaluationReport(
        discrepancy=disc,
        diameter=int(diam),
        stretch=disc / max(int(diam), 1),
        mean_error=float(member_errs.mean()),
        median_error=float(np.median(member_errs)),
        max_error=int(member_errs.max()),
        n_members=int(idx.size),
    )
