"""repro — reproduction of *Tell Me Who I Am: An Interactive Recommendation
System* (Alon, Awerbuch, Azar, Patt-Shamir — SPAA 2006).

The library simulates the paper's interactive recommendation model —
``n`` players probing an ``m``-object world through a shared billboard —
and implements the full algorithm tower (Select, RSelect, Zero Radius,
Small Radius, Coalesce, Large Radius, and the unknown-parameter wrappers
of Section 6), plus baselines, synthetic workloads, and the experiment
harness validating every theorem.

Quickstart::

    import repro

    inst = repro.planted_instance(n=256, m=256, alpha=0.5, D=0, rng=7)
    oracle = repro.ProbeOracle(inst)
    result = repro.find_preferences(oracle, alpha=0.5, D=0, rng=7)
    report = repro.evaluate(result.outputs, inst.prefs, inst.main_community().members)
    print(report, result.stats)
"""

from repro import api
from repro.billboard import Billboard, BudgetExceededError, ProbeOracle, ProbeStats
from repro.core import (
    Params,
    RunResult,
    anytime_find_preferences,
    coalesce,
    find_preferences,
    find_preferences_unknown_d,
    large_radius,
    rselect,
    select,
    small_radius,
    zero_radius,
)
from repro.metrics import discrepancy, evaluate, stretch
from repro.model import Community, Instance
from repro.workloads import (
    adversarial_instance,
    anti_spectral_instance,
    flip_noise,
    mixture_instance,
    nested_instance,
    planted_instance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # stable facade (the supported external surface)
    "api",
    # substrate
    "Billboard",
    "ProbeOracle",
    "ProbeStats",
    "BudgetExceededError",
    # model
    "Instance",
    "Community",
    # core algorithms
    "Params",
    "RunResult",
    "select",
    "rselect",
    "coalesce",
    "zero_radius",
    "small_radius",
    "large_radius",
    "find_preferences",
    "find_preferences_unknown_d",
    "anytime_find_preferences",
    # metrics
    "evaluate",
    "discrepancy",
    "stretch",
    # workloads
    "planted_instance",
    "nested_instance",
    "mixture_instance",
    "adversarial_instance",
    "anti_spectral_instance",
    "flip_noise",
]
