"""The watermark-protocol-checking post log (``REPRO_SANITIZE=1``).

:class:`SanitizedPostLog` is a drop-in :class:`~repro.billboard.postlog.PostLog`
subclass that turns the commit protocol's informal guarantees into
hard assertions, on both sides of the shared segment:

**Writer side** (checked in :meth:`_publish`, *before* the watermark
store becomes visible to any reader):

* the watermark only ever advances, by a positive 8-byte-aligned step;
* the segment's current watermark equals the value the append started
  from — a mismatch means two writers raced past the lock (or a caller
  bypassed it);
* *bytes land first*: the record body in ``[old, new)`` must already
  re-parse completely — valid kind, self-consistent size, channel name
  that decodes, payload that fits — because the moment the watermark
  moves, a reader is entitled to interpret those bytes.  A variant
  that stores the watermark before the body (the classic torn-write
  bug) fails here deterministically, no adversarial scheduling needed.

**Reader side** (checked via the read hooks):

* the observed epoch never regresses on a given handle and never
  exceeds the segment capacity;
* every record parsed sits entirely below the epoch snapshot — a
  record straddling the watermark means the reader is interpreting
  uncommitted bytes;
* record headers are sane: positive aligned size, known kind, payload
  length consistent with the size field.

All violations raise :class:`SanitizeError` (an ``AssertionError``
subclass: sanitizer findings are contract violations, not operational
errors, and ``except Exception`` recovery paths in the runtime still
propagate them in spirit — nothing catches bare ``AssertionError``).

The class is instantiated automatically by ``PostLog.create``/
``attach`` when ``REPRO_SANITIZE=1`` (see ``_log_class`` in the
billboard module), so the whole sharded runtime — every worker's
appends and every epoch read — runs under these checks with no call
sites changed.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.billboard.postlog import (
    _HEADER,
    _REC,
    KIND_BARRIER,
    KIND_DENSE,
    KIND_EXHAUSTED,
    KIND_PACKED,
    PostLog,
)
from repro.metrics.bitpack import packed_width

__all__ = ["SanitizeError", "SanitizedPostLog"]

_KNOWN_KINDS = frozenset({KIND_PACKED, KIND_DENSE, KIND_BARRIER, KIND_EXHAUSTED})


class SanitizeError(AssertionError):
    """A watermark-protocol violation detected by the sanitizer."""


class SanitizedPostLog(PostLog):
    """A :class:`PostLog` whose commit protocol is assertion-checked."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Highest epoch this handle has observed (reader monotonicity).
        self._last_epoch = 0

    # ------------------------------------------------------------------
    # writer side: bytes-land-first, monotonic watermark
    # ------------------------------------------------------------------
    def _publish(self, old: int, new: int) -> None:
        if new <= old or (new - old) % 8 != 0:
            raise SanitizeError(
                f"watermark step must be a positive multiple of 8: {old} -> {new}"
            )
        current = self.committed
        if current != old:
            raise SanitizeError(
                f"lost update: append started at watermark {old} but the segment "
                f"is at {current} — writers raced past the append lock"
            )
        self._check_committed_record(old, new)
        super()._publish(old, new)

    def _check_committed_record(self, old: int, new: int) -> None:
        """Re-parse the record in ``[old, new)``: its bytes must be down."""
        buf = self._shm.buf
        offset = _HEADER.size + old
        try:
            size, kind, _shard, rows, m, _seq, name_len = _REC.unpack_from(buf, offset)
        except struct.error as exc:
            raise SanitizeError(f"record header at {old} does not parse: {exc}") from exc
        if size != new - old:
            raise SanitizeError(
                f"record size field {size} at {old} disagrees with the published "
                f"watermark step {new - old}: body bytes are not down before commit"
            )
        self._check_record(old, new, size, kind, rows, m, name_len)
        name_start = offset + _REC.size
        try:
            bytes(buf[name_start : name_start + name_len]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SanitizeError(
                f"channel name bytes at {old} are not valid UTF-8 — "
                f"the record body was not written before the watermark"
            ) from exc

    # ------------------------------------------------------------------
    # reader side: epoch monotonicity, records strictly below the epoch
    # ------------------------------------------------------------------
    def _observe_epoch(self, epoch: int) -> None:
        if epoch < self._last_epoch:
            raise SanitizeError(
                f"epoch regressed on this handle: {self._last_epoch} -> {epoch}"
            )
        if epoch > self.capacity or epoch % 8 != 0:
            raise SanitizeError(f"implausible epoch {epoch} (capacity {self.capacity})")
        self._last_epoch = epoch

    def _check_record(
        self, pos: int, epoch: int, size: int, kind: int, rows: int, m: int, name_len: int
    ) -> None:
        if size <= 0 or size % 8 != 0:
            raise SanitizeError(
                f"record at {pos} has invalid size {size}: reading bytes the "
                f"writer never committed (watermark published before the body?)"
            )
        if pos + size > epoch:
            raise SanitizeError(
                f"record at {pos} (size {size}) straddles the epoch {epoch}: "
                f"a reader is interpreting uncommitted bytes"
            )
        if kind not in _KNOWN_KINDS:
            raise SanitizeError(f"record at {pos} has unknown kind {kind}")
        if kind == KIND_PACKED:
            payload_len = rows * packed_width(m)
        elif kind == KIND_DENSE:
            payload_len = rows * m * 2
        else:
            payload_len = 0
        if _REC.size + name_len + payload_len > size:
            raise SanitizeError(
                f"record at {pos}: name ({name_len}) + payload ({payload_len}) "
                f"overflow the size field {size}"
            )
