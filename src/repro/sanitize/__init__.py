"""Runtime sanitizer for the sharded runtime's shared-memory protocols.

The static rules (RPL013–016, :mod:`repro.lint.project`) check the
*code*; this package checks the *execution*.  Setting

.. code-block:: bash

    REPRO_SANITIZE=1 PYTHONPATH=src python -m pytest tests/test_serve_equivalence.py

swaps every post log the process creates or attaches for
:class:`~repro.sanitize.postlog.SanitizedPostLog`, which asserts the
watermark protocol on both sides: writers must land record bytes
before the watermark store (re-parsed at the commit point), readers
must never interpret bytes past their epoch snapshot, and epochs must
be monotonic per handle.  Violations raise
:class:`~repro.sanitize.postlog.SanitizeError`.

:mod:`repro.sanitize.harness` adds the deterministic interleaving
harness: writer/reader protocol steps as generators, replayed under
exhaustively enumerated schedules, so the torn-write window between a
record's body write and its publish is *provably* — not
probabilistically — exercised.

The mode is opt-in and zero-cost when off: the only integration point
is one environment check inside ``PostLog.create``/``attach``.
"""

from __future__ import annotations

import os

from repro.sanitize.harness import (
    InterleavingHarness,
    ScheduleResult,
    interleavings,
    stepped_append,
    stepped_read,
)
from repro.sanitize.postlog import SanitizedPostLog, SanitizeError

__all__ = [
    "InterleavingHarness",
    "SanitizeError",
    "SanitizedPostLog",
    "ScheduleResult",
    "interleavings",
    "is_enabled",
    "stepped_append",
    "stepped_read",
]


def is_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` is on for this process."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
