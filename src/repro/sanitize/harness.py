"""Deterministic interleaving harness for the post-log protocol.

Real cross-process races are found by luck; this harness finds them by
enumeration.  The two sides of the protocol — a writer appending a
record, a reader parsing an epoch — are expressed as **step
generators**: plain generators that perform one protocol action per
``next()`` and yield a label at every boundary where the other process
could observe intermediate state.  The harness then *replays a
schedule*: an explicit sequence of actor names deciding, at every
step, which logical process advances.  Both actors run in one OS
process against the same shared-memory segment (the reader holds a
second, borrowed :class:`~repro.billboard.postlog.PostLog` handle on
the writer's segment — exactly the same bytes two real processes would
share), so every adversarial interleaving of the append/read boundary
is reproduced bit-for-bit, deterministically, on every run.

``interleavings(counts)`` enumerates *all* schedules for the given
per-actor step counts (the merge lattice), so a test can sweep every
possible timing of "reader snapshots the epoch between the writer's
body write and its watermark store" rather than hoping a stress loop
hits it.  With the stock :class:`PostLog` every schedule must observe
either *nothing* or *the complete record* (the crash-safety claim);
with the seeded watermark-first bug the sanitized reader/writer raises
on the schedules where the torn state is visible — which is how the
test suite proves the sanitizer actually fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Mapping, Sequence

from repro.billboard.postlog import PostLog

__all__ = [
    "InterleavingHarness",
    "ScheduleResult",
    "interleavings",
    "stepped_append",
    "stepped_read",
]

#: One actor: a generator yielding a label at each observable boundary.
Steps = Generator[str, None, None]


def stepped_append(
    log: PostLog,
    kind: int,
    shard: int,
    channel: str,
    seq: int,
    payload: bytes = b"",
    *,
    rows: int = 0,
    m: int = 0,
) -> Steps:
    """A writer actor: one append split at its protocol boundaries.

    Steps: ``reserve`` (watermark snapshot taken) → ``body`` (record
    bytes written, **not yet published**) → ``publish`` (watermark
    store; the record is committed).  Between ``body`` and ``publish``
    a reader must still see the old epoch — the exact window the
    crash-safety argument is about.
    """
    name_b = channel.encode("utf-8")
    from repro.billboard.postlog import _REC, _align8  # protocol internals

    size = _align8(_REC.size + len(name_b) + len(payload))
    committed = log.committed
    if committed + size > log.capacity:
        raise RuntimeError("harness append exceeds log capacity")
    yield "reserve"
    log._write_body(committed, size, kind, shard, seq, name_b, payload, rows, m)
    yield "body"
    log._publish(committed, committed + size)
    yield "publish"


def stepped_read(
    log: PostLog, results: list[Any], *, start: int = 0
) -> Steps:
    """A reader actor: one epoch read, its result appended to *results*.

    A single step (``read``) — the read path is lock-free and atomic
    at the watermark snapshot, so its only observable boundary is the
    call itself.  Schedule several of these around a writer's steps to
    probe every timing.
    """
    yield "ready"
    results.append(log.read(start))
    yield "read"


@dataclass
class ScheduleResult:
    """What one replayed schedule did."""

    #: The schedule as executed (actor name per step).
    schedule: tuple[str, ...]
    #: Labels yielded, in order, as ``(actor, label)`` pairs.
    trace: list[tuple[str, str]] = field(default_factory=list)
    #: The exception the schedule raised, if any (sanitizer findings).
    error: BaseException | None = None


class InterleavingHarness:
    """Replays explicit schedules over a set of step-generator actors.

    Deterministic by construction: the schedule *is* the arbiter — no
    threads, no sleeps, no OS scheduler.  Actor factories (not live
    generators) are passed in so every schedule starts from fresh
    actors; the caller's ``reset`` hook rebuilds shared state (e.g. a
    fresh log segment) between schedules.
    """

    def __init__(
        self,
        actors: Mapping[str, Callable[[], Steps]],
        *,
        reset: Callable[[], None] | None = None,
    ) -> None:
        self._factories = dict(actors)
        self._reset = reset

    def run(self, schedule: Sequence[str]) -> ScheduleResult:
        """Replay one schedule; sanitizer errors are captured, not raised."""
        if self._reset is not None:
            self._reset()
        live = {name: factory() for name, factory in self._factories.items()}
        result = ScheduleResult(schedule=tuple(schedule))
        try:
            for actor in schedule:
                gen = live[actor]
                try:
                    label = next(gen)
                except StopIteration:
                    continue  # actor already finished: schedule step is a no-op
                result.trace.append((actor, label))
            for name, gen in live.items():  # drain: no actor left mid-protocol
                for label in gen:
                    result.trace.append((name, label))
        except AssertionError as exc:  # SanitizeError included
            result.error = exc
        return result

    def run_all(
        self, counts: Mapping[str, int]
    ) -> Iterator[ScheduleResult]:
        """Replay every interleaving of the given per-actor step counts."""
        for schedule in interleavings(counts):
            yield self.run(schedule)


def interleavings(counts: Mapping[str, int]) -> Iterator[tuple[str, ...]]:
    """All order-preserving merges of ``counts[actor]`` steps per actor.

    ``interleavings({"w": 2, "r": 1})`` yields the 3 schedules
    ``(w w r) (w r w) (r w w)`` — each actor's own steps stay in
    program order, every cross-actor timing is produced exactly once.
    """
    names = sorted(counts)
    remaining = {name: int(counts[name]) for name in names}

    def rec(prefix: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        if all(v == 0 for v in remaining.values()):
            yield prefix
            return
        for name in names:
            if remaining[name] > 0:
                remaining[name] -= 1
                yield from rec(prefix + (name,))
                remaining[name] += 1

    yield from rec(())
