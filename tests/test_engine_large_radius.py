"""Tests for the player-local Large Radius program (engine twin of Fig. 5)."""

import numpy as np
import pytest

from repro.billboard.oracle import ProbeOracle
from repro.core.large_radius import large_radius
from repro.engine import LargeRadiusCoins, run_large_radius_engine
from repro.metrics.evaluation import evaluate
from repro.utils.validation import WILDCARD
from repro.workloads.planted import planted_instance


class TestLargeRadiusCoins:
    def test_draw_structure(self):
        coins = LargeRadiusCoins.draw(64, 64, 0.5, 24, rng=0)
        assert len(coins.groups) == len(coins.player_groups) == len(coins.sr_coins)
        covered = np.sort(np.concatenate(coins.groups))
        assert np.array_equal(covered, np.arange(64))
        assert all(g.size > 0 for g in coins.player_groups)
        assert coins.lam >= 1
        assert coins.super_tree.root.players.size == 64

    def test_deterministic(self):
        a = LargeRadiusCoins.draw(64, 64, 0.5, 24, rng=9)
        b = LargeRadiusCoins.draw(64, 64, 0.5, 24, rng=9)
        for ga, gb in zip(a.groups, b.groups):
            assert np.array_equal(ga, gb)
        for pa, pb in zip(a.player_groups, b.player_groups):
            assert np.array_equal(pa, pb)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed,D", [(4, 24), (17, 32)])
    def test_matches_global(self, seed, D):
        inst = planted_instance(96, 96, 0.5, D, rng=seed)
        o1 = ProbeOracle(inst)
        global_out = large_radius(o1, 0.5, D, rng=seed + 27)
        o2 = ProbeOracle(inst)
        engine_out, result = run_large_radius_engine(o2, 0.5, D, rng=seed + 27)
        assert np.array_equal(global_out, engine_out)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)
        assert result.probe_rounds == o1.stats().rounds

    def test_multi_group_membership_matches_global(self):
        # copies = ceil(D/(alpha n)) > 1: each player runs Small Radius
        # for several groups; the engine must still match bitwise.
        from repro.core.params import Params

        p = Params.practical()
        assert p.lr_player_copies(48, 0.25, 64) == 3
        inst = planted_instance(64, 64, 0.25, 48, rng=5)
        o1 = ProbeOracle(inst)
        g = large_radius(o1, 0.25, 48, rng=31)
        o2 = ProbeOracle(inst)
        e, _ = run_large_radius_engine(o2, 0.25, 48, rng=31)
        assert np.array_equal(g, e)
        assert np.array_equal(o1.stats().per_player, o2.stats().per_player)

    def test_lockstep_at_least_probe_rounds(self):
        inst = planted_instance(64, 64, 0.5, 20, rng=5)
        oracle = ProbeOracle(inst)
        _, result = run_large_radius_engine(oracle, 0.5, 20, rng=6)
        assert result.rounds >= result.probe_rounds


class TestQuality:
    def test_constant_stretch(self):
        inst = planted_instance(96, 96, 0.5, 24, rng=7)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, _ = run_large_radius_engine(oracle, 0.5, 24, rng=8)
        rep = evaluate(out, inst.prefs, comm.members, diam=comm.diameter)
        assert rep.stretch <= 8.0

    def test_output_domain(self):
        inst = planted_instance(64, 64, 0.5, 20, rng=9)
        oracle = ProbeOracle(inst)
        out, _ = run_large_radius_engine(oracle, 0.5, 20, rng=10)
        assert np.isin(out, (0, 1, WILDCARD)).all()
        assert out.shape == (64, 64)

    def test_all_players_agree_per_community(self):
        inst = planted_instance(96, 96, 0.5, 24, rng=11)
        comm = inst.main_community()
        oracle = ProbeOracle(inst)
        out, _ = run_large_radius_engine(oracle, 0.5, 24, rng=12)
        rows = out[comm.members]
        agree = (rows == rows[0]).all(axis=1).mean()
        assert agree >= 0.9
