"""Tests for the named workload registry."""

import pytest

from repro.model.instance import Instance
from repro.workloads.registry import WORKLOADS, make_instance


class TestRegistry:
    def test_known_names(self):
        assert {
            "planted", "planted-unique", "mixture", "adversarial",
            "anti-spectral", "markov",
        } == set(WORKLOADS)

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_factory_builds(self, name):
        inst = make_instance(name, 48, 48, 0.25, 4, rng=1)
        assert isinstance(inst, Instance)
        assert inst.shape == (48, 48)
        assert inst.communities

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_instance("nope", 10, 10, 0.5, 0)

    def test_mixture_types_from_alpha(self):
        inst = make_instance("mixture", 60, 60, 0.25, 0, rng=2)
        assert len(inst.communities) == 4

    def test_reproducible(self):
        import numpy as np

        a = make_instance("adversarial", 40, 40, 0.25, 2, rng=5)
        b = make_instance("adversarial", 40, 40, 0.25, 2, rng=5)
        assert np.array_equal(a.prefs, b.prefs)
