"""Tests for the concentration-bound helpers."""

import math

import numpy as np
import pytest

from repro.analysis.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_two_sided,
    min_leaf_constant_for,
    zero_radius_vote_failure_bound,
)


class TestChernoff:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(8.0, 0.5) == pytest.approx(math.exp(-1.0))

    def test_lower_tail_edges(self):
        assert chernoff_lower_tail(10, 0) == 1.0
        assert chernoff_lower_tail(0, 1) == 1.0

    def test_lower_tail_validation(self):
        with pytest.raises(ValueError):
            chernoff_lower_tail(-1, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(1, 1.5)

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(9.0, 1.0) == pytest.approx(math.exp(-3.0))

    def test_upper_tail_large_delta_branch(self):
        assert chernoff_upper_tail(3.0, 2.0) == pytest.approx(math.exp(-2.0))

    def test_upper_tail_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(1, -0.1)

    def test_lower_tail_empirically_valid(self):
        # Binomial(40, 0.5), threshold (1-δ)μ with δ=0.5: empirical tail
        # must not exceed the bound (plus Monte-Carlo slack).
        gen = np.random.default_rng(0)
        mu, delta = 20.0, 0.5
        samples = gen.binomial(40, 0.5, size=20_000)
        empirical = float((samples <= (1 - delta) * mu).mean())
        assert empirical <= chernoff_lower_tail(mu, delta) + 0.01


class TestHoeffding:
    def test_formula(self):
        assert hoeffding_two_sided(50, 0.1) == pytest.approx(2 * math.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_two_sided(0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_two_sided(10, -1)

    def test_decreases_with_n(self):
        assert hoeffding_two_sided(100, 0.1) < hoeffding_two_sided(10, 0.1)


class TestVoteFailure:
    def test_decreases_with_constant(self):
        a = zero_radius_vote_failure_bound(1.0, 0.25, 512)
        b = zero_radius_vote_failure_bound(5.0, 0.25, 512)
        assert b < a

    def test_alpha_free(self):
        # The expected member count at the deciding vote is alpha-free
        # (leaf size scales as 1/alpha), so the bound is too.
        a = zero_radius_vote_failure_bound(2.0, 0.5, 512)
        b = zero_radius_vote_failure_bound(2.0, 0.1, 512)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            zero_radius_vote_failure_bound(0, 0.5, 512)
        with pytest.raises(ValueError):
            zero_radius_vote_failure_bound(1, 0.5, 512, vote_frac=1.0)

    def test_inverse_consistency(self):
        n = 1024
        c = min_leaf_constant_for(0.01, n)
        assert zero_radius_vote_failure_bound(c, 0.5, n) == pytest.approx(0.01, rel=1e-6)

    def test_min_constant_validation(self):
        with pytest.raises(ValueError):
            min_leaf_constant_for(0.0, 100)
        with pytest.raises(ValueError):
            min_leaf_constant_for(0.5, 1)
        with pytest.raises(ValueError):
            min_leaf_constant_for(0.5, 100, vote_frac=0)

    def test_min_constant_monotone_in_target(self):
        assert min_leaf_constant_for(0.001, 512) > min_leaf_constant_for(0.1, 512)
