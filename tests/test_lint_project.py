"""Tests for the whole-program lint pass: the project context, the
cross-file escape analysis behind RPL013, the dead-waiver audit, SARIF
output, and suppression-parsing edge cases (property-based)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint import (
    ALL_RULES,
    DEAD_WAIVER_ID,
    ProjectContext,
    find_dead_waivers,
    lint_paths,
    rules_by_id,
    to_sarif,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import build_context, lint_contexts

SERVE_DIR = "src/repro/serve"


def _contexts(files: dict[str, str]):
    return [build_context(path, source) for path, source in files.items()]


# ----------------------------------------------------- project context


def test_resolve_call_same_module():
    ctxs = _contexts(
        {
            f"{SERVE_DIR}/a.py": '"""a."""\n__all__ = ["f", "g"]\n\n\ndef g():\n    pass\n\n\ndef f():\n    g()\n'
        }
    )
    project = ProjectContext.from_contexts(ctxs)
    import ast

    call = next(
        n for n in ast.walk(ctxs[0].tree) if isinstance(n, ast.Call)
    )
    info = project.resolve_call(ctxs[0], call)
    assert info is not None and info.qualname == "g"


def test_resolve_call_across_modules():
    ctxs = _contexts(
        {
            "src/repro/serve/helpers.py": '"""h."""\n__all__ = ["write_into"]\n\n\ndef write_into(view):\n    view[0] = 1\n',
            "src/repro/serve/caller.py": (
                '"""c."""\nfrom repro.serve.helpers import write_into\n\n'
                "__all__ = [\"f\"]\n\n\ndef f(handle: 'SharedInstanceHandle') -> None:\n"
                "    write_into(handle.bitmatrix())\n"
            ),
        }
    )
    diagnostics = lint_contexts(ctxs, ALL_RULES)
    rpl013 = [d for d in diagnostics if d.rule == "RPL013"]
    # The write site is inside helpers.py — reached only through the
    # cross-file escape of the shared view out of caller.py.
    assert [d.path for d in rpl013] == ["src/repro/serve/helpers.py"]


def test_escape_into_commit_protocol_is_allowed():
    ctxs = _contexts(
        {
            "src/repro/billboard/postlog.py": (
                '"""p."""\n__all__ = ["commit"]\n\n\ndef commit(view):\n    view[0] = 1\n'
            ),
            "src/repro/serve/caller.py": (
                '"""c."""\nfrom repro.billboard.postlog import commit\n\n'
                "__all__ = [\"f\"]\n\n\ndef f(handle: 'SharedInstanceHandle') -> None:\n"
                "    commit(handle.bitmatrix())\n"
            ),
        }
    )
    diagnostics = lint_contexts(ctxs, ALL_RULES)
    assert [d for d in diagnostics if d.rule == "RPL013"] == []


def test_project_rule_findings_respect_waivers():
    source = (
        '"""m."""\n__all__ = ["f"]\n\n\ndef f(handle: "SharedInstanceHandle") -> None:\n'
        "    handle.bitmatrix()[0] = 1  # repro: noqa[RPL013] deliberate, for a test\n"
    )
    ctxs = _contexts({f"{SERVE_DIR}/waived.py": source})
    assert [d for d in lint_contexts(ctxs, ALL_RULES) if d.rule == "RPL013"] == []
    # ... and because the waiver fired, the dead-waiver audit stays quiet.
    assert find_dead_waivers(ctxs) == []


def test_lockstep_rule_scoped_to_serve():
    source = (
        '"""m."""\n__all__ = ["f"]\n\n\ndef f(gen, shard, n):\n'
        "    if shard == 0:\n        return gen.integers(0, 2, size=n)\n"
    )
    in_serve = _contexts({f"{SERVE_DIR}/m.py": source})
    elsewhere = _contexts({"src/repro/core/m.py": source})
    assert [d.rule for d in lint_contexts(in_serve, ALL_RULES)] == ["RPL014"]
    assert [d for d in lint_contexts(elsewhere, ALL_RULES) if d.rule == "RPL014"] == []


# -------------------------------------------------- dead-waiver audit


def test_dead_waiver_detected():
    source = (
        '"""m."""\n__all__ = ["f"]\n\n\ndef f() -> int:\n'
        "    return 1  # repro: noqa[RPL004] nothing here ever tripped it\n"
    )
    ctxs = _contexts({"src/repro/core/m.py": source})
    lint_contexts(ctxs, ALL_RULES)
    dead = find_dead_waivers(ctxs)
    assert [d.rule for d in dead] == [DEAD_WAIVER_ID]
    assert dead[0].severity == "warning"
    assert "RPL004" in dead[0].message


def test_cli_dead_waivers_exit_three(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "core" / "m.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        '"""m."""\n__all__ = ["X"]\n\nX = 1  # repro: noqa[RPL001] stale\n',
        encoding="utf-8",
    )
    assert lint_main([str(target)]) == 3
    out = capsys.readouterr().out
    assert DEAD_WAIVER_ID in out and "dead waiver" in out


def test_cli_no_dead_waivers_flag(tmp_path, capsys):
    target = tmp_path / "src" / "repro" / "core" / "m.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        '"""m."""\n__all__ = ["X"]\n\nX = 1  # repro: noqa[RPL001] stale\n',
        encoding="utf-8",
    )
    assert lint_main(["--no-dead-waivers", str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_audit_skipped_under_select(tmp_path):
    target = tmp_path / "src" / "repro" / "core" / "m.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        '"""m."""\n__all__ = ["X"]\n\nX = 1  # repro: noqa[RPL004] unexercised under select\n',
        encoding="utf-8",
    )
    assert lint_main(["--select", "RPL007", str(target)]) == 0


# --------------------------------------------------------------- SARIF


def test_sarif_structure():
    log = to_sarif([], ALL_RULES)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {r["id"] for r in driver["rules"]} == set(rules_by_id())
    assert run["results"] == []


def test_sarif_cli_roundtrip(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\n\nu = np.unique(v, axis=0)\n", encoding="utf-8")
    out_file = tmp_path / "lint.sarif"
    assert lint_main(["--format", "sarif", "--output-file", str(out_file), str(bad)]) == 1
    log = json.loads(out_file.read_text(encoding="utf-8"))
    (run,) = log["runs"]
    results = run["results"]
    assert sorted(r["ruleId"] for r in results) == ["RPL004", "RPL006"]
    for result in results:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["level"] in ("error", "warning")
    # --output is accepted as an alias of --format.
    assert lint_main(["--output", "sarif", "--no-dead-waivers", str(bad)]) == 1
    assert json.loads(capsys.readouterr().out)["version"] == "2.1.0"


# ----------------------------------- suppression parsing (hypothesis)

_RULE_IDS = st.sampled_from([f"RPL{i:03d}" for i in range(1, 17)])


@given(codes=st.lists(_RULE_IDS, min_size=1, max_size=5, unique=True), spaces=st.integers(0, 3))
def test_multi_code_waivers_parse(codes, spaces):
    """Any code list — any order, any spacing — suppresses exactly the
    listed rules on that line."""
    sep = "," + " " * spaces
    source = f"import numpy as np\n\nx = np.unique(a, axis=0)  # repro: noqa[{sep.join(codes)}]\n"
    ctx = build_context("src/repro/core/m.py", source)
    assert ctx.suppressions == {3: set(codes)}


@given(pad=st.text(alphabet=" \t", max_size=4))
def test_blanket_waiver_whitespace_insensitive(pad):
    source = f"import numpy as np\n\nx = np.unique(a, axis=0)  #{pad}repro: noqa\n"
    ctx = build_context("src/repro/core/m.py", source)
    assert ctx.suppressions == {3: set()}


@given(decorators=st.integers(min_value=1, max_value=4))
def test_waiver_on_decorated_def_attaches_to_its_line(decorators):
    """A suppression on a decorated def's own line stays on that line —
    decorator stacking must not shift it."""
    dec_lines = "".join(f"@deco{i}\n" for i in range(decorators))
    source = f"{dec_lines}def f(x=[]):  # repro: noqa[RPL007]\n    return x\n"
    ctx = build_context("src/repro/core/m.py", source)
    assert ctx.suppressions == {decorators + 1: {"RPL007"}}
    assert [d for d in lint_contexts([ctx], ALL_RULES) if d.rule == "RPL007"] == []


def test_noqa_inside_string_literal_is_not_a_waiver():
    """Tokenize-based parsing: noqa-shaped *strings* neither suppress
    nor register as (dead) waivers."""
    source = '"""m."""\n__all__ = ["S"]\n\nS = "x  # repro: noqa[RPL004]"\n'
    ctx = build_context("src/repro/core/m.py", source)
    assert ctx.suppressions == {}
    lint_contexts([ctx], ALL_RULES)
    assert find_dead_waivers([ctx]) == []


def test_repo_waiver_inventory_is_live():
    """Every waiver currently in the repo suppresses something: the
    full-surface dead-waiver audit comes back empty."""
    repo_root = Path(__file__).resolve().parents[1]
    paths = [repo_root / p for p in ("src", "tests", "benchmarks", "examples")]
    diagnostics = lint_paths([p for p in paths if p.exists()], dead_waivers=True)
    dead = [d for d in diagnostics if d.rule == DEAD_WAIVER_ID]
    assert dead == [], [d.format() for d in dead]
