"""Tests for the reproduction-report builder."""

import pytest

from repro.cli import main
from repro.reporting import ReproductionReport, build_report, render_markdown, write_report


class TestBuildReport:
    def test_subset(self):
        report = build_report(["E2", "E5"], quick=True, seed=2)
        assert [r.experiment for r in report.results] == ["E2", "E5"]
        assert report.n_passed == 2
        assert report.all_passed

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_report(["E99"])

    def test_quick_flag_recorded(self):
        report = build_report(["E5"], quick=True, seed=3)
        assert report.quick


class TestRenderMarkdown:
    def test_structure(self):
        report = build_report(["E2"], quick=True, seed=2)
        md = render_markdown(report)
        assert md.startswith("# Reproduction report")
        assert "| E2 |" in md
        assert "## E2" in md
        assert "```" in md
        assert "✅" in md

    def test_failed_check_rendered(self):
        from repro.experiments.harness import ExperimentResult
        from repro.utils.tables import Table

        t = Table("t", ["a"])
        t.add(a=1)
        fake = ExperimentResult(experiment="EX", claim="c", table=t, passed=False,
                                checks={"bad": False})
        report = ReproductionReport(results=[fake])
        md = render_markdown(report)
        assert "FAIL" in md and "❌" in md
        assert not report.all_passed


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        out = tmp_path / "r.md"
        report = write_report(out, ["E5"], quick=True, seed=4)
        assert out.exists()
        assert report.all_passed
        assert "E5" in out.read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        out = tmp_path / "cli.md"
        code = main(["report", "--out", str(out), "--experiments", "E5", "--seed", "2"])
        assert code == 0
        assert out.exists()
        assert "1/1 experiments passed" in capsys.readouterr().out
