"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--seed", "5", "--full"])
        assert args.experiments == ["E1", "E2"]
        assert args.seed == 5
        assert args.full

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 256 and args.alpha == 0.5 and args.d == 0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.n == 256 and args.window == 32 and args.probes == 32
        assert args.snapshot is None and args.restore is None
        assert not args.sequential

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.sessions == 256 and args.mode == "closed"
        assert not args.quick and args.json is None


class TestCommands:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i}" in out
        for i in range(1, 9):
            assert f"X{i}" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E2", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out

    def test_run_archives_report(self, tmp_path, capsys):
        assert main(["run", "E2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "E2.txt").exists()

    def test_demo_runs(self, capsys):
        assert main(["demo", "--n", "64", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "discrepancy: 0" in out

    def test_demo_robust(self, capsys):
        assert main(["demo", "--n", "64", "--robust", "--seed", "4"]) == 0

    def test_demo_unknown_d(self, capsys):
        assert main(["demo", "--n", "64", "--d", "2", "--unknown-d", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "unknown_d" in out


class TestServeCommand:
    ARGS = ["serve", "--n", "48", "--max-phases", "1", "--d-max", "2", "--seed", "3"]

    def test_serve_runs_to_done(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "stage done" in out
        assert "discrepancy: 0" in out

    def test_serve_sequential_same_answer(self, capsys):
        assert main(self.ARGS + ["--sequential"]) == 0
        assert "discrepancy: 0" in capsys.readouterr().out

    def test_serve_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_serve_snapshot_then_restore(self, tmp_path, capsys):
        snap = tmp_path / "svc.npz"
        assert main(self.ARGS + ["--snapshot", str(snap)]) == 0
        first = capsys.readouterr().out
        assert snap.exists()
        assert main(["serve", "--restore", str(snap)]) == 0
        second = capsys.readouterr().out
        assert f"restored   : {snap}" in second
        # The snapshot was cut at the finish barrier: same probe totals.
        probes_line = [l for l in first.splitlines() if l.startswith("probes")][0]
        assert probes_line.split(",")[0] in second

    def test_serve_restore_missing_file(self, tmp_path, capsys):
        assert main(["serve", "--restore", str(tmp_path / "nope.npz")]) == 2
        assert "cannot restore" in capsys.readouterr().out


class TestLoadgenCommand:
    def test_loadgen_quick_smoke(self, tmp_path, capsys):
        """The CI smoke invocation: loadgen --sessions 64 --quick."""
        out_json = tmp_path / "report.json"
        code = main(["loadgen", "--sessions", "64", "--quick", "--seed", "3",
                     "--json", str(out_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out and "p50" in out
        payload = json.loads(out_json.read_text())
        assert payload["config"]["sessions"] == 64
        assert payload["requests"] > 0

    def test_loadgen_open_mode(self, capsys):
        code = main(["loadgen", "--sessions", "32", "--quick", "--mode", "open",
                     "--rate", "16", "--seed", "3"])
        assert code == 0
        assert "mode     : open" in capsys.readouterr().out

    def test_loadgen_unknown_workload(self, capsys):
        assert main(["loadgen", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_loadgen_warmup_reports_steady_state(self, capsys):
        code = main(["loadgen", "--sessions", "32", "--quick", "--seed", "3",
                     "--warmup", "8"])
        assert code == 0
        assert "steady" in capsys.readouterr().out


class TestMetricsFlags:
    def _run_with_metrics(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        code = main(["loadgen", "--sessions", "32", "--quick", "--seed", "3",
                     "--metrics", str(path), "--metrics-interval", "0"])
        return code, path

    def test_loadgen_metrics_writes_snapshots(self, tmp_path, capsys):
        code, path = self._run_with_metrics(tmp_path)
        assert code == 0
        assert f"metrics  : {path}" in capsys.readouterr().out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta" and lines[0]["version"] == 2
        assert lines[-1]["type"] == "metrics"
        assert lines[-1]["counters"]["serve.requests_total"] > 0

    def test_obs_top_renders_final_snapshot(self, tmp_path, capsys):
        _, path = self._run_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["obs", "top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot #" in out
        assert "serve.requests_total" in out
        assert "p50" in out and "p99" in out

    def test_obs_export_prometheus_text(self, tmp_path, capsys):
        _, path = self._run_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["obs", "export", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in out
        assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"}' in out

    def test_obs_export_snapshot_index_out_of_range(self, tmp_path, capsys):
        _, path = self._run_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["obs", "export", str(path), "--snapshot", "99"]) == 2
        assert "snapshot" in capsys.readouterr().out

    def test_obs_top_no_metrics_lines(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        main(["demo", "--n", "64", "--seed", "3", "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["obs", "top", str(path)]) == 2
        assert "no metric snapshots" in capsys.readouterr().out

    def test_obs_export_missing_file(self, tmp_path, capsys):
        assert main(["obs", "export", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such telemetry file" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_demo_telemetry_writes_valid_jsonl(self, tmp_path, capsys):
        """The ISSUE acceptance: demo --telemetry emits valid JSONL whose
        per-phase probe deltas sum exactly to the oracle's charged total."""
        path = tmp_path / "out.jsonl"
        assert main(["demo", "--n", "64", "--seed", "3", "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"telemetry  : {path}" in out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        run = obs.load_jsonl(path)
        assert run.meta["command"] == "demo"
        assert run.probes_total > 0
        assert run.probes_accounted == run.probes_total
        assert run.probes_total == run.counters["oracle.probes_charged"]
        names = {s.name for s in run.spans}
        assert {"demo", "find_preferences"} <= names

    def test_demo_without_telemetry_leaves_recorder_off(self):
        assert main(["demo", "--n", "64", "--seed", "3"]) == 0
        assert not obs.enabled()

    def test_obs_summarize_renders_phase_table(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        main(["demo", "--n", "64", "--d", "2", "--seed", "5", "--telemetry", str(path)])
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry by phase" in out
        assert "find_preferences" in out
        assert "(exact)" in out

    def test_obs_summarize_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such telemetry file" in capsys.readouterr().out

    def test_obs_summarize_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert main(["obs", "summarize", str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_report_telemetry_archives_jsonl(self, tmp_path, capsys):
        out_md = tmp_path / "REPORT.md"
        code = main(
            ["report", "--out", str(out_md), "--experiments", "E2", "--telemetry"]
        )
        assert code == 0
        assert out_md.exists()
        sidecar = tmp_path / "REPORT.telemetry.jsonl"
        assert sidecar.exists()
        assert f"telemetry archived at {sidecar}" in capsys.readouterr().out
        run = obs.load_jsonl(sidecar)
        assert run.meta["command"] == "report"
        assert any(s.name == "experiment/E2" for s in run.spans)
