"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "E1", "E2", "--seed", "5", "--full"])
        assert args.experiments == ["E1", "E2"]
        assert args.seed == 5
        assert args.full

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 256 and args.alpha == 0.5 and args.d == 0


class TestCommands:
    def test_list_prints_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i}" in out
        for i in range(1, 9):
            assert f"X{i}" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E2", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "overall: PASS" in out

    def test_run_archives_report(self, tmp_path, capsys):
        assert main(["run", "E2", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "E2.txt").exists()

    def test_demo_runs(self, capsys):
        assert main(["demo", "--n", "64", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "discrepancy: 0" in out

    def test_demo_robust(self, capsys):
        assert main(["demo", "--n", "64", "--robust", "--seed", "4"]) == 0

    def test_demo_unknown_d(self, capsys):
        assert main(["demo", "--n", "64", "--d", "2", "--unknown-d", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "unknown_d" in out
