"""Tests for the ratings-import surface and community discovery."""

import numpy as np
import pytest

from repro.workloads.planted import planted_instance
from repro.workloads.ratings import discover_communities, instance_from_ratings


class TestInstanceFromRatings:
    def test_thresholding(self):
        ratings = np.asarray([[1.0, 5.0], [4.0, 2.0]])
        inst = instance_from_ratings(ratings, threshold=3.0)
        assert inst.prefs.tolist() == [[0, 1], [1, 0]]

    def test_missing_zero(self):
        ratings = np.asarray([[np.nan, 5.0]])
        inst = instance_from_ratings(ratings, 3.0, missing="zero")
        assert inst.prefs.tolist() == [[0, 1]]

    def test_missing_one(self):
        ratings = np.asarray([[np.nan, 1.0]])
        inst = instance_from_ratings(ratings, 3.0, missing="one")
        assert inst.prefs.tolist() == [[1, 0]]

    def test_missing_majority(self):
        ratings = np.asarray([[5.0], [5.0], [1.0], [np.nan]])
        inst = instance_from_ratings(ratings, 3.0, missing="majority")
        assert inst.prefs[3, 0] == 1

    def test_custom_marker(self):
        ratings = np.asarray([[-1.0, 5.0]])
        inst = instance_from_ratings(ratings, 3.0, missing="one", missing_marker=-1.0)
        assert inst.prefs.tolist() == [[1, 1]]

    def test_validation(self):
        with pytest.raises(ValueError):
            instance_from_ratings(np.zeros((0, 2)), 1.0)
        with pytest.raises(ValueError):
            instance_from_ratings(np.zeros(3), 1.0)
        with pytest.raises(ValueError):
            instance_from_ratings(np.zeros((2, 2)), 1.0, missing="weird")

    def test_discovery_attached(self):
        base = planted_instance(60, 40, 0.5, 2, rng=0)
        ratings = np.where(base.prefs == 1, 5.0, 1.0)
        inst = instance_from_ratings(ratings, 3.0, discover=True, discover_radius=2)
        assert inst.communities
        assert inst.main_community().size >= 30


class TestDiscoverCommunities:
    def test_recovers_planted_community(self):
        base = planted_instance(80, 60, 0.5, 4, rng=1)
        found = discover_communities(base.prefs, radius=4, min_frequency=0.3)
        assert found
        planted = set(base.main_community().members.tolist())
        best = max(found, key=lambda c: len(planted & set(c.members.tolist())))
        overlap = len(planted & set(best.members.tolist())) / len(planted)
        assert overlap >= 0.8

    def test_all_distinct_yields_nothing(self):
        gen = np.random.default_rng(2)
        prefs = gen.integers(0, 2, (30, 64), dtype=np.int8)
        assert discover_communities(prefs, radius=1, min_frequency=0.3) == []

    def test_diameter_bounded_by_twice_radius(self):
        base = planted_instance(60, 60, 0.5, 4, rng=3)
        for c in discover_communities(base.prefs, radius=4, min_frequency=0.2):
            assert c.diameter <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            discover_communities(np.zeros((4, 4), dtype=np.int8), -1)
        with pytest.raises(ValueError):
            discover_communities(np.zeros((4, 4), dtype=np.int8), 2, min_frequency=0)


class TestPackedReroute:
    """Satellite pins: the packed binarizer is bit-equal to the old dense
    path, and discovery runs off the blocked packed Hamming kernel."""

    def test_bit_equality_all_missing_policies(self):
        from repro.workloads.ratings import _binarize_dense_reference

        gen = np.random.default_rng(17)
        for n, m in ((13, 9), (32, 64), (57, 41)):
            ratings = gen.uniform(0.0, 5.0, size=(n, m))
            ratings[gen.random((n, m)) < 0.3] = np.nan
            for missing in ("zero", "one", "majority"):
                inst = instance_from_ratings(ratings, 2.5, missing=missing)
                ref = _binarize_dense_reference(
                    ratings, 2.5, missing=missing, missing_marker=np.nan
                )
                np.testing.assert_array_equal(
                    inst.prefs, ref, err_msg=f"missing={missing} n={n} m={m}"
                )

    def test_sentinel_marker_equality(self):
        from repro.workloads.ratings import _binarize_dense_reference

        gen = np.random.default_rng(23)
        ratings = gen.integers(0, 6, size=(20, 15)).astype(np.float64)
        for missing in ("zero", "one", "majority"):
            inst = instance_from_ratings(ratings, 2.5, missing=missing, missing_marker=0.0)
            ref = _binarize_dense_reference(
                ratings, 2.5, missing=missing, missing_marker=0.0
            )
            np.testing.assert_array_equal(inst.prefs, ref, err_msg=f"missing={missing}")

    def test_discover_accepts_bitmatrix(self):
        from repro.metrics.bitpack import BitMatrix

        base = planted_instance(80, 60, 0.5, 4, rng=1)
        dense_result = discover_communities(base.prefs, radius=4, min_frequency=0.3)
        packed_result = discover_communities(BitMatrix(base.prefs), radius=4, min_frequency=0.3)
        assert len(dense_result) == len(packed_result)
        for a, b in zip(dense_result, packed_result):
            np.testing.assert_array_equal(a.members, b.members)
            assert a.diameter == b.diameter
            np.testing.assert_array_equal(a.center, b.center)
