"""The post log's pinned contract: epoch-stamped serializable reads.

The append-only shared-memory log (:mod:`repro.billboard.postlog`) is
the spine the sharded runtime's billboard replication rests on, so its
guarantees are pinned directly:

* a record is either invisible or complete — the committed watermark is
  the only publication point, and torn bytes past it are never read
  (crash-mid-append recovery);
* reads between two syncs observe one epoch, and every shard's view is
  a prefix of the same serial order (the log order) — checked as a
  hypothesis property over arbitrary interleavings;
* posts never silently drop: an overflowing append raises;
* barrier and exhaustion markers ride the log after a shard's posts,
  so marker visibility implies post visibility.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.board import Billboard
from repro.billboard.postlog import (
    KIND_BARRIER,
    KIND_DENSE,
    KIND_EXHAUSTED,
    KIND_PACKED,
    PostLog,
    SharedBillboard,
    default_log_capacity,
)

N, M = 8, 12


@pytest.fixture
def log():
    log = PostLog.create(1 << 16)
    yield log
    log.close()


def _boards(log: PostLog, n_shards: int) -> list[SharedBillboard]:
    return [
        SharedBillboard(N, M, log=log, shard=shard, n_shards=n_shards)
        for shard in range(n_shards)
    ]


class TestPostLog:
    def test_append_read_roundtrip(self, log):
        payload = np.arange(2 * M, dtype=np.int16).tobytes()
        log.append(KIND_DENSE, 0, "chan/a", 1, payload, rows=2, m=M)
        log.append(KIND_BARRIER, 1, "phase0/merge", 0)
        epoch, records = log.read(0)
        assert epoch == log.committed
        assert [r.kind for r in records] == [KIND_DENSE, KIND_BARRIER]
        assert records[0].channel == "chan/a"
        assert records[0].shard == 0
        assert records[0].payload == payload
        assert records[1].channel == "phase0/merge"

    def test_incremental_read_returns_new_records_only(self, log):
        log.append(KIND_EXHAUSTED, 0, "", 0)
        epoch, first = log.read(0)
        assert len(first) == 1
        log.append(KIND_BARRIER, 0, "tag", 0)
        epoch2, second = log.read(epoch)
        assert len(second) == 1
        assert second[0].kind == KIND_BARRIER
        assert epoch2 > epoch

    def test_committed_watermark_is_monotonic(self, log):
        marks = [log.committed]
        for i in range(4):
            log.append(KIND_BARRIER, 0, f"tag{i}", 0)
            marks.append(log.committed)
        assert marks == sorted(marks)
        assert len(set(marks)) == len(marks)

    def test_overflow_raises_instead_of_dropping(self):
        log = PostLog.create(64)
        try:
            with pytest.raises(RuntimeError, match="post log full"):
                for i in range(16):
                    log.append(KIND_BARRIER, 0, f"tag{i}", 0)
        finally:
            log.close()

    def test_torn_bytes_past_watermark_are_invisible(self, log):
        """A writer killed mid-append leaves garbage the epoch hides."""
        log.append(KIND_BARRIER, 0, "committed", 0)
        epoch = log.committed
        # Simulate a torn append: a half-written record body past the
        # watermark, never published.
        torn = struct.pack("<IHHIIQI4x", 4096, KIND_DENSE, 9, 99, 99, 7, 3)
        offset = 32 + epoch  # header size + committed bytes
        log._shm.buf[offset : offset + len(torn)] = torn
        assert log.committed == epoch
        _, records = log.read(0)
        assert [r.channel for r in records] == ["committed"]
        # The next real append overwrites the torn bytes wholesale.
        log.append(KIND_BARRIER, 1, "recovered", 0)
        _, records = log.read(0)
        assert [r.channel for r in records] == ["committed", "recovered"]
        assert records[1].shard == 1

    def test_attach_same_process_borrows_creators_mapping(self, log):
        other = PostLog.attach(log.name)
        assert other.committed == log.committed
        log.append(KIND_BARRIER, 0, "tag", 0)
        assert other.committed == log.committed  # same buffer, no copy
        other.close()  # borrowed: must not tear down the creator's mapping
        assert log.read(0)[1][0].channel == "tag"

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            PostLog.attach("repro-no-such-log")

    def test_create_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            PostLog.create(0)

    def test_default_capacity_scales_and_bounds(self):
        small = default_log_capacity(8, 8)
        big = default_log_capacity(2048, 2048)
        assert small >= 1 << 22
        assert big > small


class TestSharedBillboard:
    def test_foreign_posts_visible_after_sync(self, log):
        a, b = _boards(log, 2)
        rows = np.zeros((1, M), dtype=np.int16)
        rows[0, :3] = 1
        a.post_vectors("pref/0", rows)
        assert not b.has_channel("pref/0")
        assert b.sync() == 1
        assert np.array_equal(b.read_vectors("pref/0"), a.read_vectors("pref/0"))

    def test_dense_posts_replicate_bitwise(self, log):
        a, b = _boards(log, 2)
        rows = np.array([[3, -2, 7] + [0] * (M - 3)], dtype=np.int16)
        a.post_vectors("scores/0", rows)
        b.sync()
        assert np.array_equal(b.read_vectors("scores/0"), rows)

    def test_local_posts_not_reinstalled_on_sync(self, log):
        (a,) = _boards(log, 1)
        a.post_vectors("pref/0", np.ones((1, M), dtype=np.int16))
        assert a.sync() == 0  # own record skipped: installed on the write path

    def test_barrier_completes_when_every_shard_posts(self, log):
        a, b = _boards(log, 2)
        a.post_barrier("phase0/split")
        a.sync()
        assert not a.barrier_complete("phase0/split")
        b.post_barrier("phase0/split")
        a.sync()
        b.sync()
        assert a.barrier_complete("phase0/split")
        assert b.barrier_complete("phase0/split")

    def test_barrier_marker_is_idempotent(self, log):
        (a,) = _boards(log, 1)
        a.post_barrier("tag")
        epoch = log.committed
        a.post_barrier("tag")  # no second record
        assert log.committed == epoch

    def test_marker_visibility_implies_post_visibility(self, log):
        """Posts precede the poster's marker in the log, so any reader
        that sees the marker has already installed the posts."""
        a, b = _boards(log, 2)
        a.post_vectors("pref/0", np.ones((1, M), dtype=np.int16))
        a.post_barrier("phase0/merge")
        b.post_barrier("phase0/merge")
        b.sync()
        assert b.barrier_complete("phase0/merge")
        assert b.has_channel("pref/0")

    def test_exhaustion_marker_propagates(self, log):
        a, b = _boards(log, 2)
        assert not b.exhausted_seen
        a.post_exhausted()
        b.sync()
        assert b.exhausted_seen


# One post: (shard, channel suffix, first cell value).  Channels are
# single-writer (the name embeds the shard), matching production use.
_POSTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1),
    ),
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(posts=_POSTS, sync_after=st.integers(min_value=0, max_value=12))
def test_interleaved_posts_serialize_in_log_order(posts, sync_after):
    """Property: any interleaving of single-writer posts reads back as
    one serial order — the log order — on every shard, and a reader
    that syncs mid-stream observes exactly a prefix of that order."""
    log = PostLog.create(1 << 16)
    try:
        boards = _boards(log, 3)
        reference = Billboard(N, M)  # applies the log order directly
        prefix = Billboard(N, M)
        for i, (shard, chan, value) in enumerate(posts):
            rows = np.full((1, M), value, dtype=np.int16)
            rows[0, 0] = (i + value) % 2  # vary content across reposts
            name = f"pref/{shard}/{chan}"
            boards[shard].post_vectors(name, rows)
            reference.post_vectors(name, rows)
            if i < sync_after:
                prefix.post_vectors(name, rows)
        _, records = log.read(0)
        assert len(records) == len(posts)
        assert all(r.kind == KIND_PACKED for r in records)  # 0/1 rows pack
        for board in boards:
            board.sync()
        for name in reference.channels():
            expected = reference.read_vectors(name)
            for board in boards:
                assert np.array_equal(board.read_vectors(name), expected)
        # Prefix consistency: a reader that stops after the first
        # `sync_after` records sees exactly the state of that prefix of
        # the serial order — never a reordering, never a partial post.
        mid_board = SharedBillboard(N, M, log=log, shard=2, n_shards=3)
        for rec in records[:sync_after]:
            mid_board._install(rec)
        assert sorted(mid_board.channels()) == sorted(prefix.channels())
        for name in prefix.channels():
            assert np.array_equal(
                mid_board.read_vectors(name), prefix.read_vectors(name)
            )
    finally:
        log.close()
