"""Tests for repro.metrics.hamming (unit + property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.bitpack import BitMatrix
from repro.metrics.hamming import (
    diameter,
    hamming,
    hamming_many,
    hamming_to_each,
    pairwise_hamming,
)

binary_matrix = arrays(
    np.int8,
    st.tuples(st.integers(1, 12), st.integers(1, 24)),
    elements=st.integers(0, 1),
)
binary_pair = st.integers(1, 64).flatmap(
    lambda L: st.tuples(
        arrays(np.int8, L, elements=st.integers(0, 1)),
        arrays(np.int8, L, elements=st.integers(0, 1)),
    )
)


class TestHamming:
    def test_identical(self):
        v = np.asarray([0, 1, 1, 0])
        assert hamming(v, v) == 0

    def test_all_differ(self):
        assert hamming(np.asarray([0, 0]), np.asarray([1, 1])) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming(np.asarray([0]), np.asarray([0, 1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            hamming(np.zeros((2, 2)), np.zeros((2, 2)))

    @given(binary_pair)
    def test_symmetry(self, pair):
        x, y = pair
        assert hamming(x, y) == hamming(y, x)

    @given(binary_pair)
    def test_range(self, pair):
        x, y = pair
        assert 0 <= hamming(x, y) <= x.size

    @given(st.integers(1, 64).flatmap(
        lambda L: st.tuples(*[arrays(np.int8, L, elements=st.integers(0, 1))] * 3)
    ))
    def test_triangle_inequality(self, triple):
        x, y, z = triple
        assert hamming(x, z) <= hamming(x, y) + hamming(y, z)


class TestHammingMany:
    def test_rowwise(self):
        xs = np.asarray([[0, 0], [1, 1]])
        ys = np.asarray([[0, 1], [1, 1]])
        assert hamming_many(xs, ys).tolist() == [1, 0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_many(np.zeros((2, 3)), np.zeros((3, 2)))


class TestHammingToEach:
    def test_basic(self):
        v = np.asarray([0, 1])
        m = np.asarray([[0, 1], [1, 0], [0, 0]])
        assert hamming_to_each(v, m).tolist() == [0, 2, 1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_to_each(np.asarray([0, 1, 0]), np.zeros((2, 2)))

    @given(binary_matrix)
    def test_matches_scalar(self, m):
        v = m[0]
        expected = [hamming(v, row) for row in m]
        assert hamming_to_each(v, m).tolist() == expected


class TestPairwise:
    def test_small_exact(self):
        m = np.asarray([[0, 0, 1], [1, 0, 1], [1, 1, 0]])
        d = pairwise_hamming(m)
        assert d[0, 1] == 1
        assert d[0, 2] == 3
        assert d[1, 2] == 2

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_symmetric_zero_diag(self, m):
        d = pairwise_hamming(m)
        assert np.array_equal(d, d.T)
        assert (np.diag(d) == 0).all()

    @given(binary_matrix)
    @settings(max_examples=40)
    def test_matches_bruteforce(self, m):
        d = pairwise_hamming(m)
        n = m.shape[0]
        for i in range(n):
            for j in range(n):
                assert d[i, j] == hamming(m[i], m[j])


class TestDiameter:
    def test_empty_and_single(self):
        assert diameter(np.empty((0, 5))) == 0
        assert diameter(np.asarray([[0, 1, 0]])) == 0

    def test_identical_rows(self):
        assert diameter(np.tile(np.asarray([0, 1], dtype=np.int8), (5, 1))) == 0

    def test_known(self):
        m = np.asarray([[0, 0, 0], [1, 1, 1], [0, 1, 0]])
        assert diameter(m) == 3

    @given(binary_matrix)
    @settings(max_examples=30)
    def test_equals_pairwise_max(self, m):
        assert diameter(m) == int(pairwise_hamming(m).max(initial=0))

    def test_packed_path_agrees(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(50, 70), dtype=np.int8)
        assert BitMatrix(m).diameter() == int(pairwise_hamming(m).max())

    def test_large_input_uses_packed_path(self):
        rng = np.random.default_rng(1)
        m = rng.integers(0, 2, size=(1030, 16), dtype=np.int8)
        # Just exercises the packed branch (n > 1024) for consistency.
        d = diameter(m)
        assert 0 < d <= 16
