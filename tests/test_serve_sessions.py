"""Unit tests for the session layer: ``Session``, ``advance``, ``SessionStore``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.engine.actions import Post, Probe, Wait
from repro.serve.sessions import (
    ADVANCE_DONE,
    ADVANCE_PROBE,
    ADVANCE_WAIT,
    Session,
    SessionStore,
    advance,
)


def _board(n=4, m=4):
    return Billboard(n, m)


def probe_then_return(grades):
    """Program probing objects 0..k-1, recording grades, returning them."""

    def program():
        seen = []
        for obj in range(len(grades)):
            seen.append((yield Probe(obj)))
        return np.asarray(seen, dtype=np.int8)

    return program()


class TestAdvance:
    def test_probe_suspends_and_deliver_resumes(self):
        session = Session(player=0, program=probe_then_return([1, 0]), status="active")
        board = _board()
        assert advance(session, board) == ADVANCE_PROBE
        assert session.pending_probe == 0
        session.deliver(1)
        assert session.probes_served == 1
        assert advance(session, board) == ADVANCE_PROBE
        assert session.pending_probe == 1
        session.deliver(0)
        assert advance(session, board) == ADVANCE_DONE
        assert session.status == "barrier"
        assert np.array_equal(session.stage_output, np.asarray([1, 0], dtype=np.int8))
        assert session.program is None

    def test_posts_processed_inline_and_counted(self):
        def program():
            yield Post("me/result", np.asarray([1, -1, 0, 1], dtype=np.int8))
            yield Wait()
            return np.zeros(4, dtype=np.int8)

        session = Session(player=1, program=program(), status="active")
        board = _board()
        # The post is free: advance runs through it to the Wait.
        assert advance(session, board) == ADVANCE_WAIT
        assert session.posts_served == 1
        assert board.has_channel("me/result")
        assert advance(session, board) == ADVANCE_DONE

    def test_deliver_without_pending_probe_raises(self):
        session = Session(player=0, program=probe_then_return([1]), status="active")
        with pytest.raises(RuntimeError, match="no pending probe"):
            session.deliver(1)

    def test_advance_with_undelivered_probe_raises(self):
        session = Session(player=0, program=probe_then_return([1]), status="active")
        advance(session, _board())
        with pytest.raises(RuntimeError, match="awaits a probe grade"):
            advance(session, _board())

    def test_advance_without_program_raises(self):
        with pytest.raises(RuntimeError, match="no live program"):
            advance(Session(player=0), _board())

    def test_unknown_action_raises(self):
        def program():
            yield "not an action"
            return np.zeros(4, dtype=np.int8)

        session = Session(player=0, program=program(), status="active")
        with pytest.raises(TypeError, match="unknown action"):
            advance(session, _board())


class TestSessionStore:
    def test_population_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SessionStore(0)

    def test_iteration_in_player_order(self):
        store = SessionStore(5)
        assert [s.player for s in store] == [0, 1, 2, 3, 4]
        assert len(store) == 5
        assert store[3].player == 3

    def test_load_stage_activates(self):
        store = SessionStore(3)
        assert store.count("barrier") == 3
        store.load_stage({p: probe_then_return([1]) for p in range(3)})
        assert store.count("active") == 3
        assert store.active_players() == [0, 1, 2]

    def test_load_stage_resets_session_state(self):
        store = SessionStore(2)
        store.load_stage({0: probe_then_return([1])})
        advance(store[0], _board())
        assert store[0].pending_probe is not None
        store.load_stage({0: probe_then_return([0])})
        assert store[0].pending_probe is None
        assert store[0].stage_output is None
        assert store[0].status == "active"

    @pytest.mark.parametrize("status", ["complete", "drained"])
    def test_freeze_closes_programs(self, status):
        store = SessionStore(2)
        store.load_stage({p: probe_then_return([1]) for p in range(2)})
        store.freeze(status)
        assert store.count(status) == 2
        assert all(s.program is None for s in store)
        assert store.active_players() == []

    def test_freeze_rejects_other_statuses(self):
        with pytest.raises(ValueError, match="freeze status"):
            SessionStore(1).freeze("active")
