"""Tests for the load generator: determinism, report shape, arrival modes.

Wall-clock figures (throughput, latency percentiles) vary run to run, so
the tests pin what is deterministic — served bits, probe totals, request
accounting — and only sanity-check the timing fields.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import LoadgenConfig, run_loadgen
from repro.serve.loadgen import dump_report_json

QUICK = dict(sessions=48, D=2, seed=9, max_phases=1, d_max=1, window=16, probes_per_request=8)


class TestDeterminism:
    def test_same_config_serves_same_bits(self):
        a = run_loadgen(LoadgenConfig(**QUICK))
        b = run_loadgen(LoadgenConfig(**QUICK))
        assert a.outputs_sha == b.outputs_sha
        assert a.probes_total == b.probes_total
        assert a.requests == b.requests

    def test_open_loop_serves_same_bits_as_closed(self):
        """Arrival schedule changes latency, never the served answer."""
        closed = run_loadgen(LoadgenConfig(**QUICK))
        open_loop = run_loadgen(LoadgenConfig(mode="open", rate=24.0, **QUICK))
        assert open_loop.outputs_sha == closed.outputs_sha
        assert open_loop.probes_total == closed.probes_total

    def test_sequential_probes_serve_same_bits(self):
        micro = run_loadgen(LoadgenConfig(**QUICK))
        sequential = run_loadgen(LoadgenConfig(micro_batch=False, **QUICK))
        assert sequential.outputs_sha == micro.outputs_sha
        assert sequential.probes_total == micro.probes_total


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_loadgen(LoadgenConfig(**QUICK))

    def test_accounting(self, report):
        assert report.requests > 0
        assert report.probes_total > 0
        assert report.flushes > 0
        assert report.probes_per_request == pytest.approx(
            report.probes_total / report.requests
        )
        assert 0 < report.mean_occupancy <= QUICK["window"]
        assert report.sessions_complete == QUICK["sessions"]
        assert report.sessions_drained == 0
        assert report.phases_completed == 1

    def test_latency_percentiles_ordered(self, report):
        assert len(report.latencies_ms) == report.requests
        assert 0 <= report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.throughput_rps > 0

    def test_render_mentions_the_headline_figures(self, report):
        text = report.render()
        assert "req/s" in text
        assert "p50" in text and "p99" in text
        assert report.outputs_sha[:16] in text

    def test_to_json_is_serialisable_and_drops_samples(self, report):
        payload = report.to_json()
        assert "latencies_ms" not in payload
        assert payload["config"]["sessions"] == QUICK["sessions"]
        json.dumps(payload)  # must not raise

    def test_dump_report_json(self, report, tmp_path):
        path = tmp_path / "report.json"
        dump_report_json(str(path), report)
        loaded = json.loads(path.read_text())
        assert loaded["outputs_sha"] == report.outputs_sha
        assert loaded["requests"] == report.requests


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            LoadgenConfig(mode="sideways")

    def test_bad_sessions_rejected(self):
        with pytest.raises(ValueError, match="sessions"):
            LoadgenConfig(sessions=0)

    def test_bad_open_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            LoadgenConfig(mode="open", rate=0.0)

    def test_max_requests_caps_the_run(self):
        report = run_loadgen(LoadgenConfig(max_requests=32, **QUICK))
        assert report.requests <= 32 + QUICK["window"]
        assert report.sessions_complete < QUICK["sessions"]


class TestBudgetedLoad:
    def test_budgeted_run_drains_gracefully(self):
        report = run_loadgen(LoadgenConfig(budget=40, **QUICK))
        assert report.sessions_drained == QUICK["sessions"]
        assert report.sessions_complete == 0
        assert report.phases_completed == 0
