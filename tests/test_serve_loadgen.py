"""Tests for the load generator: determinism, report shape, arrival modes.

Wall-clock figures (throughput, latency percentiles) vary run to run, so
the tests pin what is deterministic — served bits, probe totals, request
accounting — and only sanity-check the timing fields.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Histogram, MetricRegistry
from repro.obs.schema import load_jsonl
from repro.serve import LoadgenConfig, run_loadgen
from repro.serve.loadgen import dump_report_json

QUICK = dict(sessions=48, D=2, seed=9, max_phases=1, d_max=1, window=16, probes_per_request=8)


class TestDeterminism:
    def test_same_config_serves_same_bits(self):
        a = run_loadgen(LoadgenConfig(**QUICK))
        b = run_loadgen(LoadgenConfig(**QUICK))
        assert a.outputs_sha == b.outputs_sha
        assert a.probes_total == b.probes_total
        assert a.requests == b.requests

    def test_open_loop_serves_same_bits_as_closed(self):
        """Arrival schedule changes latency, never the served answer."""
        closed = run_loadgen(LoadgenConfig(**QUICK))
        open_loop = run_loadgen(LoadgenConfig(mode="open", rate=24.0, **QUICK))
        assert open_loop.outputs_sha == closed.outputs_sha
        assert open_loop.probes_total == closed.probes_total

    def test_sequential_probes_serve_same_bits(self):
        micro = run_loadgen(LoadgenConfig(**QUICK))
        sequential = run_loadgen(LoadgenConfig(micro_batch=False, **QUICK))
        assert sequential.outputs_sha == micro.outputs_sha
        assert sequential.probes_total == micro.probes_total


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return run_loadgen(LoadgenConfig(**QUICK))

    def test_accounting(self, report):
        assert report.requests > 0
        assert report.probes_total > 0
        assert report.flushes > 0
        assert report.probes_per_request == pytest.approx(
            report.probes_total / report.requests
        )
        assert 0 < report.mean_occupancy <= QUICK["window"]
        assert report.sessions_complete == QUICK["sessions"]
        assert report.sessions_drained == 0
        assert report.phases_completed == 1

    def test_latency_percentiles_ordered(self, report):
        assert len(report.latencies_ms) == report.requests
        assert 0 <= report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.throughput_rps > 0

    def test_render_mentions_the_headline_figures(self, report):
        text = report.render()
        assert "req/s" in text
        assert "p50" in text and "p99" in text
        assert report.outputs_sha[:16] in text

    def test_to_json_is_serialisable_and_drops_samples(self, report):
        payload = report.to_json()
        assert "latencies_ms" not in payload
        assert payload["config"]["sessions"] == QUICK["sessions"]
        json.dumps(payload)  # must not raise

    def test_dump_report_json(self, report, tmp_path):
        path = tmp_path / "report.json"
        dump_report_json(str(path), report)
        loaded = json.loads(path.read_text())
        assert loaded["outputs_sha"] == report.outputs_sha
        assert loaded["requests"] == report.requests


class TestConfigValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            LoadgenConfig(mode="sideways")

    def test_bad_sessions_rejected(self):
        with pytest.raises(ValueError, match="sessions"):
            LoadgenConfig(sessions=0)

    def test_bad_open_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            LoadgenConfig(mode="open", rate=0.0)

    def test_max_requests_caps_the_run(self):
        report = run_loadgen(LoadgenConfig(max_requests=32, **QUICK))
        assert report.requests <= 32 + QUICK["window"]
        assert report.sessions_complete < QUICK["sessions"]


class TestBudgetedLoad:
    def test_budgeted_run_drains_gracefully(self):
        report = run_loadgen(LoadgenConfig(budget=40, **QUICK))
        assert report.sessions_drained == QUICK["sessions"]
        assert report.sessions_complete == 0
        assert report.phases_completed == 0


class TestWarmup:
    def test_bad_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            LoadgenConfig(warmup=-1)
        with pytest.raises(ValueError, match="metrics_interval_s"):
            LoadgenConfig(metrics_interval_s=-0.5)

    def test_warmup_excludes_early_requests_from_steady_figures(self):
        report = run_loadgen(LoadgenConfig(warmup=16, **QUICK))
        assert report.steady_requests == report.requests - 16
        assert 0 <= report.steady_p50_ms <= report.steady_p95_ms <= report.steady_p99_ms
        assert "steady" in report.render()

    def test_zero_warmup_steady_equals_overall(self):
        report = run_loadgen(LoadgenConfig(**QUICK))
        assert report.steady_requests == report.requests
        assert (report.steady_p50_ms, report.steady_p95_ms, report.steady_p99_ms) == (
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
        )
        assert "steady" not in report.render()


class TestMetricsIntegration:
    """The ISSUE acceptance: loadgen with metrics on emits snapshots whose
    histogram-derived percentiles match the report's, and serves the same
    bits as a metrics-off run."""

    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("metrics") / "metrics.jsonl"
        report = run_loadgen(
            LoadgenConfig(metrics_path=str(path), metrics_interval_s=0.0, **QUICK)
        )
        return report, load_jsonl(path)

    def test_metrics_on_serves_identical_bits(self, run):
        report, _ = run
        baseline = run_loadgen(LoadgenConfig(**QUICK))
        assert report.outputs_sha == baseline.outputs_sha
        assert report.probes_total == baseline.probes_total
        assert report.requests == baseline.requests

    def test_snapshot_percentiles_match_report_exactly(self, run):
        """Same fixed buckets on both sides, so the snapshot-derived
        p50/p95/p99 equal the report's to the bit, not approximately."""
        report, telemetry = run
        final = telemetry.metrics[-1]
        hist = Histogram.from_snapshot(
            "serve.request_latency_seconds",
            final["histograms"]["serve.request_latency_seconds"],
        )
        assert hist.count == report.requests
        assert hist.quantile(0.50) * 1000.0 == report.p50_ms
        assert hist.quantile(0.95) * 1000.0 == report.p95_ms
        assert hist.quantile(0.99) * 1000.0 == report.p99_ms

    def test_snapshots_carry_the_serving_lifecycle(self, run):
        report, telemetry = run
        assert telemetry.metrics, "no metrics lines written"
        assert [m["seq"] for m in telemetry.metrics] == list(range(len(telemetry.metrics)))
        counters = telemetry.metrics[-1]["counters"]
        assert counters["serve.requests_total"] == report.requests
        assert counters["serve.probes_total"] == report.probes_total
        assert counters["serve.flushes_total"] == report.flushes
        assert counters["serve.phases_completed_total"] == report.phases_completed
        assert counters["board.vector_posts_total"] > 0
        histograms = telemetry.metrics[-1]["histograms"]
        assert histograms["serve.flush_occupancy"]["count"] == report.flushes
        assert histograms["serve.wavefront_size"]["count"] > 0

    def test_final_registry_exports_prometheus_text(self, run):
        _, telemetry = run
        text = MetricRegistry.from_snapshot(telemetry.metrics[-1]).expose_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'repro_serve_request_latency_seconds_bucket{le="+Inf"}' in text
