"""RPL008 violation: experiment entry point still takes `seed`."""

__all__ = ["run"]


def run(quick: bool = True, seed: int = 0) -> None:  # RPL008
    del quick, seed
