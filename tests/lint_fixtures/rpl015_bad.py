"""RPL015 violation: posts appended after the phase's marker append."""

__all__ = ["finish_stage", "flush"]


def finish_stage(board: object, vectors: object) -> None:
    board.post_barrier("stage-3")
    board.post_vectors("late", vectors)  # RPL015: marker no longer covers it


def flush(log: object, payload: bytes, done: bool) -> None:
    if done:
        log.append(KIND_BARRIER, 0, "stage", 0)
    log.append(KIND_PACKED, 0, "results", 1, payload)  # RPL015: post on a marker path
