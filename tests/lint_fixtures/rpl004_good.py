"""RPL004 clean: row dedup via repro.utils.rowset (1-D unique stays fine)."""

import numpy as np

from repro.utils.rowset import unique_rows

__all__ = ["dedup"]


def dedup(rows: np.ndarray, labels: np.ndarray) -> np.ndarray:
    uniq, counts = unique_rows(rows, return_counts=True)
    flat = np.unique(labels)  # axis-less unique is not the hot spot
    return uniq[counts > 1][: flat.size]
