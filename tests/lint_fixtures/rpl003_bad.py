"""RPL003 violation: RunResult.meta keys outside the closed vocabulary."""

from repro.core.result import RunResult

__all__ = ["build"]


def build(outputs: object, stats: object) -> RunResult:
    result = RunResult(
        outputs=outputs,
        stats=stats,
        algorithm="zero_radius",
        meta={"typo_branch": "zero"},  # RPL003: not in META_KEYS
    )
    result.meta["ad_hoc_note"] = "x"  # RPL003: assignment of unknown key
    return result
