"""RPL017 violation: raw compiled-extension imports outside the kernel package."""

import cffi  # RPL017: hard native dependency at this call site
from Cython.Build import cythonize  # RPL017: cython machinery outside kernels
from repro.metrics.kernels import _ckernels  # RPL017: generated module by name
from repro.metrics.kernels._ckernels import lib  # RPL017: reaching into the extension

__all__ = ["fast_extract"]


def fast_extract(packed: object, rows: object, cols: object) -> object:
    ffi = cffi.FFI()
    cythonize("nothing.pyx")
    _ckernels.lib.repro_extract_bits
    return lib, ffi
