"""RPL007 clean: None sentinel instead of a shared mutable default."""

__all__ = ["accumulate"]


def accumulate(item: int, bucket: list[int] | None = None) -> list[int]:
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
