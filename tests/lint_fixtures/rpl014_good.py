"""RPL014 clean: full-population draws; owner loops only index results."""

__all__ = ["route"]


def route(service: object, gen: object, n: int) -> list:
    # Every shard performs the identical full-population draw, keeping
    # the master generators in lockstep ...
    rngs = spawn_many(spawn(gen), n)
    # ... and the owner-filtered loop only *indexes* pre-drawn values.
    return [rngs[player] for player in service._local_players()]
