"""RPL003 clean: only vocabulary keys touch RunResult.meta."""

from repro.core.result import RunResult

__all__ = ["build"]


def build(outputs: object, stats: object) -> RunResult:
    result = RunResult(
        outputs=outputs,
        stats=stats,
        algorithm="zero_radius",
        meta={"branch": "zero", "alpha": 0.25},
    )
    result.meta["D"] = 4
    return result
