"""RPL013 clean: shared views are read-only outside the commit protocol."""

from repro.parallel.shared import SharedInstanceHandle

__all__ = ["publish", "tally"]


def tally(handle: SharedInstanceHandle) -> int:
    matrix = handle.bitmatrix()
    total = 0
    for row in matrix:  # reads through shared views are fine
        total += int(row.sum())
    return total


def publish(log: object, payload: bytes) -> None:
    # Mutation goes through the commit protocol's own API, never
    # through the buffer directly.
    log.append(1, 0, "results", 1, payload)
