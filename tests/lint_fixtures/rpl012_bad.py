"""RPL012 violation: wiring a deployment by hand instead of serve()."""

__all__ = ["handmade"]


def handmade(instance: object) -> object:
    service = ServeService(instance)  # RPL012: pins the one-process topology
    router = MicroBatchRouter(service)  # RPL012: same — bypasses serve()
    return router
