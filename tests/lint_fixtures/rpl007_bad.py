"""RPL007 violation: mutable default arguments."""

__all__ = ["accumulate", "tag"]


def accumulate(item: int, bucket: list = []) -> list:  # RPL007
    bucket.append(item)
    return bucket


def tag(name: str, labels: dict = {}) -> dict:  # RPL007
    labels[name] = True
    return labels
