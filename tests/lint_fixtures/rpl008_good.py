"""RPL008 clean: experiment entry point follows the uniform rng contract."""

import numpy as np

__all__ = ["run"]


def run(quick: bool = True, rng: int | np.random.Generator | None = 0) -> None:
    del quick, rng
