"""RPL002 violation: reading hidden preferences outside billboard/model."""

__all__ = ["peek"]


def peek(instance: object, oracle: object) -> int:
    direct = instance.prefs[0, 1]  # RPL002: bypasses the probe oracle
    private = oracle._prefs  # RPL002: private matrix attribute
    return int(direct) + len(private)
