"""RPL009 clean: serving code learns grades only through the oracle."""

import numpy as np

__all__ = ["wavefront"]


def wavefront(oracle: object, players: list, objects: list) -> np.ndarray:
    values = oracle.probe_many(  # metered — the only grade source for serve/
        np.asarray(players, dtype=np.intp), np.asarray(objects, dtype=np.intp)
    )
    return np.asarray(values, dtype=np.int8)
