"""RPL009 violation: serving code peeking at the preference matrix."""

__all__ = ["shortcut"]


def shortcut(service: object) -> int:
    matrix = service.instance.prefs  # RPL009: serve code sees hidden state
    again = service.oracle.billboard.prefs  # RPL009: even via the substrate
    return len(matrix) + len(again)
