"""RPL015 clean: posts land first, the phase marker last."""

__all__ = ["finish_stage", "flush"]


def finish_stage(board: object, vectors: object) -> None:
    board.post_vectors("results", vectors)
    board.post_barrier("stage-3")  # the marker trails every post it covers


def flush(log: object, payload: bytes, done: bool) -> None:
    log.append(KIND_PACKED, 0, "results", 1, payload)
    if done:
        log.append(KIND_BARRIER, 0, "stage", 0)
