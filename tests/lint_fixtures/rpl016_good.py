"""RPL016 clean: cross-process channels come from the parallel substrate."""

from repro.parallel.shared import SharedInstance

__all__ = ["publish"]


def publish(instance: object) -> object:
    # The substrate owns locks, pipes, and segment lifecycle; callers
    # only ever see its audited handles.
    return SharedInstance.publish(instance)
