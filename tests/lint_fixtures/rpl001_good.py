"""RPL001 clean: randomness flows through repro.utils.rng."""

import numpy as np

from repro.utils.rng import as_generator, spawn

__all__ = ["draw"]


def draw(rng: int | np.random.Generator | None = 0) -> float:
    gen = as_generator(rng)
    child = spawn(gen)
    return float(child.random())
