"""RPL001 violation: raw RNG construction outside repro/utils/rng.py."""

import numpy as np
from numpy.random import default_rng

__all__ = ["draw"]


def draw() -> float:
    gen = np.random.default_rng(42)  # RPL001: raw default_rng in library code
    legacy = np.random.RandomState(7)  # RPL001: legacy RandomState
    np.random.seed(0)  # RPL001: global seeding
    other = default_rng()  # imported name is flagged at the import site
    return float(gen.random() + legacy.rand() + other.random())
