"""RPL014 violation: rng draws hidden inside shard-conditional control flow."""

__all__ = ["route"]


def route(service: object, gen: object, shard: int, n: int) -> list:
    picks = []
    if shard == 0:
        coins = gen.integers(0, 2, size=n)  # RPL014: only shard 0 draws
        picks.append(coins)
    for player in service._local_players():
        picks.append(spawn(gen))  # RPL014: draw count depends on ownership
    return picks
