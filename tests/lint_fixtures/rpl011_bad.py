"""RPL011 violations: labels built eagerly at telemetry call sites."""

from repro import obs
from repro.obs import metrics

__all__ = ["serve_one"]


def serve_one(phase: int, kind: str, latency_s: float) -> None:
    with obs.span(f"serve/flush/{phase}"):  # RPL011: f-string label
        pass
    obs.incr("serve.requests.%s" % kind)  # RPL011: %-format label
    metrics.incr("serve.{}.requests".format(kind))  # RPL011: .format() label
    obs.event("serve.flush", attrs={"phase": phase})  # RPL011: dict literal
    metrics.observe("serve.request_latency_seconds", latency_s)  # clean
