"""RPL013 violation: mutating shared memory outside the commit protocol."""

from repro.parallel.shared import SharedInstanceHandle

__all__ = ["poke", "scribble"]


def scribble(view: object) -> None:
    view[0] = 1  # looks innocent: the shared handle escaped into here


def poke(handle: SharedInstanceHandle) -> None:
    matrix = handle.bitmatrix()
    matrix[0, 3] = 1  # RPL013: direct write through a shared view
    scribble(handle.bitmatrix())  # RPL013: write via the helper (escape)
