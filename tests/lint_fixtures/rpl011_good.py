"""RPL011 clean: literal names on the hot path, dynamic work guarded."""

from repro import obs
from repro.obs import metrics

__all__ = ["serve_one"]


def serve_one(phase: int, latency_s: float) -> None:
    obs.incr("serve.requests")
    metrics.incr("serve.requests_total")
    metrics.observe("serve.request_latency_seconds", latency_s)
    registry = metrics.get_registry()
    if registry is not None:
        # Behind the explicit guard the cost is only paid when metrics
        # are on; registry methods are not module-level hot helpers.
        registry.incr("serve.phase_%d.flushes" % phase)
