"""RPL006 violation: no __all__ — and the dishonest variant lives below.

The module-level docstring aside, this file is a normal library module
that simply forgot to declare its public surface.
"""


def helper() -> int:
    return 1
