"""RPL010 clean: unpacking only via the sanctioned bitpack shims."""

import numpy as np

from repro.metrics.bitpack import unpack_rows

__all__ = ["densify"]


def densify(packed: np.ndarray, m: int) -> np.ndarray:
    return unpack_rows(packed, m, dtype=np.int16)
