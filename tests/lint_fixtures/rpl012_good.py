"""RPL012 clean: deployments go through the topology-agnostic serve()."""

from repro.api import serve
from repro.serve import ServeConfig, ServeService

__all__ = ["deploy", "restore"]


def deploy(instance: object, workers: int) -> object:
    return serve(instance, ServeConfig(workers=workers))


def restore(checkpoint: object) -> object:
    # Classmethod constructors are fine — restore paths name the class
    # without choosing a topology for new deployments.
    return ServeService.from_checkpoint(checkpoint)
