"""RPL005 clean: phases and spans are context-managed."""

from repro import obs

__all__ = ["tidy"]


def tidy(oracle: object) -> None:
    with oracle.phase("setup"):
        pass
    with obs.span("compute") as sp:
        sp.set(items=0)
