"""RPL004 violation: np.unique(axis=...) on the hot dedup path."""

import numpy as np

__all__ = ["dedup"]


def dedup(rows: np.ndarray) -> np.ndarray:
    uniq, counts = np.unique(rows, axis=0, return_counts=True)  # RPL004
    return uniq[counts > 1]
