"""RPL010 violation: dense materialisation outside the bitpack boundary."""

import numpy as np
from numpy import unpackbits  # RPL010: smuggling the name in

__all__ = ["densify", "unpackbits"]


def densify(packed: np.ndarray, m: int) -> np.ndarray:
    dense = np.unpackbits(packed, axis=1, count=m)  # RPL010: mid-pipeline unpack
    return dense.astype(np.int8)
