"""RPL017 clean: kernels reached through the backend-agnostic namespace."""

from repro.metrics import kernels
from repro.metrics.kernels import kernel_backend, numpy_kernels

__all__ = ["extract", "reference_extract"]


def extract(packed: object, rows: object, cols: object) -> object:
    # The dispatch namespace picks compiled vs NumPy once at import
    # time; callers never name the extension.
    return kernels.extract_bits(packed, rows, cols)


def reference_extract(packed: object, rows: object, cols: object) -> object:
    # A/B against the reference goes through the sanctioned toggle.
    assert kernel_backend() in ("numpy", "compiled")
    with numpy_kernels():
        return kernels.extract_bits(packed, rows, cols)
