"""RPL006 clean: literal, honest __all__."""

__all__ = ["helper", "CONST"]

CONST = 7


def helper() -> int:
    return CONST
