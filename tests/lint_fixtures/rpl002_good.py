"""RPL002 clean: preferences observed only through the probe oracle."""

__all__ = ["peek"]


def peek(oracle: object) -> int:
    value = oracle.probe(0, 1)  # metered access — the only legal read
    shape = oracle.prefs_shape  # shape metadata is not a preference read
    return int(value) + shape[0]
