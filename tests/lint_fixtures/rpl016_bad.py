"""RPL016 violation: ad-hoc multiprocessing outside the parallel substrate."""

import multiprocessing
from multiprocessing import shared_memory

__all__ = ["side_channel"]


def side_channel(nbytes: int) -> tuple:
    lock = multiprocessing.Lock()  # an unaudited cross-process channel
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    return lock, segment
