"""RPL006 violation: __all__ names something the module never binds."""

__all__ = ["helper", "ghost"]  # RPL006: "ghost" is not defined here


def helper() -> int:
    return 1
