"""RPL005 violation: leaky manual phase calls and a discarded span."""

from repro import obs

__all__ = ["leaky"]


def leaky(oracle: object) -> None:
    oracle.start_phase("setup")  # RPL005: manual begin, leaks on raise
    do_work = 1 + 1
    oracle.finish_phase()  # RPL005: manual end
    obs.span("compute")  # RPL005: span created and discarded — never closes
    del do_work
